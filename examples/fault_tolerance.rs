//! Fault tolerance walk-through: fail a partial replica mid-run, watch the
//! failure be detected at a replication fence, keep serving transactions
//! (recovery Case 1), then bring the node back and verify that every replica
//! converges again.
//!
//! ```bash
//! cargo run --release -p star --example fault_tolerance
//! ```

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let config = ClusterConfig::builder()
        .nodes(4)
        .partitions(8)
        .workers_per_node(2)
        .iteration(Duration::from_millis(5))
        .build()
        .expect("fault-tolerance config is valid");

    let workload = Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: config.partitions,
        rows_per_partition: 2_000,
        cross_partition_fraction: 0.2,
        ..Default::default()
    }));
    let mut engine = StarEngine::new(config, workload).unwrap();

    println!("phase 1: healthy cluster");
    let report = engine.run_for(Duration::from_millis(200));
    println!("  committed {} txns at {:.0} txns/sec", report.counters.committed, report.throughput);
    println!("  failure case: {:?}", engine.failure_case().unwrap());

    println!("\nphase 2: node 2 (a partial replica) crashes");
    engine.inject_failure(2);
    engine.run_iteration(); // the next replication fence detects the failure
    println!("  detected failed nodes: {:?}", engine.failed_nodes());
    println!("  failure case: {:?} (paper Case 1)", engine.failure_case().unwrap());
    let report = engine.run_for(Duration::from_millis(200));
    println!(
        "  still committing: {} txns at {:.0} txns/sec with node 2 down",
        report.counters.committed, report.throughput
    );

    println!("\nphase 3: node 2 recovers by copying data from healthy replicas");
    let copied = engine.recover_node(2).expect("recovery failed");
    println!("  copied {copied} records while catching up");
    println!("  failed nodes now: {:?}", engine.failed_nodes());

    let report = engine.run_for(Duration::from_millis(200));
    println!("  committed {} more txns after recovery", report.counters.committed);
    engine.verify_replica_consistency().expect("replicas diverged after recovery");
    println!("\nall replicas are consistent again ✔");
}
