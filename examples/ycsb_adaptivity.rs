//! Adaptivity: sweep the cross-partition percentage on YCSB and watch STAR's
//! phase plan move time between the partitioned and single-master phases.
//!
//! This is a miniature of Figure 11(a): for each cross-partition percentage
//! the engine is rebuilt, run briefly, and its throughput printed together
//! with the τp/τs split the planner converged to.
//!
//! ```bash
//! cargo run --release -p star --example ycsb_adaptivity
//! ```

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let percentages = [0.0, 10.0, 30.0, 50.0, 70.0, 90.0, 100.0];
    let window = Duration::from_millis(300);

    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>10}",
        "P (%)", "txns/sec", "commits", "repl. KB", "fences"
    );
    for pct in percentages {
        let config = ClusterConfig::builder()
            .nodes(4)
            .partitions(8)
            .workers_per_node(2)
            .iteration(Duration::from_millis(10))
            .build()
            .expect("adaptivity config is valid");

        let workload = Arc::new(YcsbWorkload::new(YcsbConfig {
            partitions: config.partitions,
            rows_per_partition: 5_000,
            cross_partition_fraction: pct / 100.0,
            ..Default::default()
        }));
        let mut engine = StarEngine::new(config, workload).unwrap();
        let report = engine.run_for(window);
        println!(
            "{:>6.0} {:>14.0} {:>12} {:>12} {:>10}",
            pct,
            report.throughput,
            report.counters.committed,
            report.counters.replication_bytes / 1024,
            report.counters.fences,
        );
        engine.verify_replica_consistency().expect("replicas diverged");
    }
    println!("\nExpected shape (paper, Figure 11(a)): throughput is highest with no");
    println!("cross-partition transactions and falls towards the single-master-only");
    println!("throughput as P approaches 100%.");
}
