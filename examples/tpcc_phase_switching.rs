//! TPC-C on STAR vs the conventional designs.
//!
//! Runs the TPC-C NewOrder/Payment mix on the STAR engine and on the three
//! conventional baselines at the paper's default cross-partition percentage,
//! printing a small comparison table (the single data point of Figure 11(b)
//! at 10-15% cross-partition transactions).
//!
//! ```bash
//! cargo run --release -p star --example tpcc_phase_switching
//! ```

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn cluster() -> ClusterConfig {
    let mut config = ClusterConfig::with_nodes(4);
    config.partitions = 4;
    config.workers_per_node = 2;
    config.iteration = Duration::from_millis(10);
    config.network_latency = Duration::from_micros(100);
    config
}

fn workload() -> Arc<TpccWorkload> {
    Arc::new(TpccWorkload::new(TpccConfig {
        warehouses: 4,
        cross_partition_fraction: 0.125,
        ..Default::default()
    }))
}

fn main() {
    let window = Duration::from_millis(500);
    let mut results: Vec<RunReport> = Vec::new();

    println!("running STAR...");
    let mut star = StarEngine::new(cluster(), workload()).unwrap();
    results.push(star.run_for(window));
    star.verify_replica_consistency().expect("replicas diverged");

    println!("running PB. OCC...");
    let mut pb = PbOcc::new(BaselineConfig::new(cluster()), workload()).unwrap();
    results.push(pb.run_for(window));

    println!("running Dist. OCC...");
    let mut docc = DistOcc::new(BaselineConfig::new(cluster()), workload()).unwrap();
    results.push(docc.run_for(window));

    println!("running Dist. S2PL...");
    let mut s2pl = DistS2pl::new(BaselineConfig::new(cluster()), workload()).unwrap();
    results.push(s2pl.run_for(window));

    println!("\nTPC-C (NewOrder + Payment), {}% cross-partition:", 12.5);
    println!("{:<14} {:>14} {:>12} {:>12} {:>14}", "engine", "txns/sec", "p50", "p99", "repl. KB");
    for report in &results {
        println!(
            "{:<14} {:>14.0} {:>12?} {:>12?} {:>14}",
            report.engine,
            report.throughput,
            report.latency.p50(),
            report.latency.p99(),
            report.counters.replication_bytes / 1024,
        );
    }
    println!("\nExpected shape (paper, Figure 11(b)): STAR well above both partitioning-based");
    println!("baselines at this cross-partition percentage, and above PB. OCC because the");
    println!("partitioned phase uses every node.");
}
