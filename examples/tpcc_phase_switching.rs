//! TPC-C on STAR vs the conventional designs.
//!
//! Runs the TPC-C NewOrder/Payment mix on the STAR engine and on the three
//! conventional baselines at the paper's default cross-partition percentage,
//! printing a small comparison table (the single data point of Figure 11(b)
//! at 10-15% cross-partition transactions).
//!
//! ```bash
//! cargo run --release -p star --example tpcc_phase_switching
//! ```

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn cluster() -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(4)
        .partitions(4)
        .workers_per_node(2)
        .iteration(Duration::from_millis(10))
        .network_latency(Duration::from_micros(100))
        .build()
        .expect("tpcc example config is valid")
}

fn workload() -> Arc<TpccWorkload> {
    Arc::new(TpccWorkload::new(TpccConfig {
        warehouses: 4,
        cross_partition_fraction: 0.125,
        ..Default::default()
    }))
}

fn main() {
    let window = Duration::from_millis(500);

    // STAR runs concretely so the example can also verify replica
    // consistency — an engine-specific check the `Engine` trait leaves out.
    println!("running STAR...");
    let mut star = StarEngine::new(cluster(), workload()).unwrap();
    let mut results: Vec<RunReport> = vec![star.run_for(window)];
    star.verify_replica_consistency().expect("replicas diverged");

    // The baselines are all driven through the shared `Engine` trait: one
    // loop, no per-engine glue, `RunReport` as the common result type.
    let mut baselines: Vec<Box<dyn Engine>> = vec![
        Box::new(PbOcc::new(BaselineConfig::new(cluster()), workload()).unwrap()),
        Box::new(DistOcc::new(BaselineConfig::new(cluster()), workload()).unwrap()),
        Box::new(DistS2pl::new(BaselineConfig::new(cluster()), workload()).unwrap()),
    ];
    for engine in &mut baselines {
        println!("running {}...", engine.name());
        results.push(engine.run_for(window));
    }

    println!("\nTPC-C (NewOrder + Payment), {}% cross-partition:", 12.5);
    println!("{:<14} {:>14} {:>12} {:>12} {:>14}", "engine", "txns/sec", "p50", "p99", "repl. KB");
    for report in &results {
        println!(
            "{:<14} {:>14.0} {:>12?} {:>12?} {:>14}",
            report.engine,
            report.throughput,
            report.latency.p50(),
            report.latency.p99(),
            report.counters.replication_bytes / 1024,
        );
    }
    println!("\nExpected shape (paper, Figure 11(b)): STAR well above both partitioning-based");
    println!("baselines at this cross-partition percentage, and above PB. OCC because the");
    println!("partitioned phase uses every node.");
}
