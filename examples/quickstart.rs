//! Quickstart: build a 4-node STAR cluster, run YCSB for a second, print the
//! throughput, latency and replication traffic.
//!
//! ```bash
//! cargo run --release -p star --example quickstart
//! ```

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 4 nodes: node 0 holds a full replica, nodes 1-3 hold partial replicas.
    let config = ClusterConfig::builder()
        .nodes(4)
        .partitions(8)
        .workers_per_node(2)
        .iteration(Duration::from_millis(10))
        .replication_strategy(ReplicationStrategy::Hybrid)
        .build()
        .expect("quickstart config is valid");

    // YCSB, 10% cross-partition transactions (the paper's default).
    let workload = Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: config.partitions,
        rows_per_partition: 10_000,
        cross_partition_fraction: 0.10,
        ..Default::default()
    }));

    println!("loading {} partitions on {} replicas...", config.partitions, config.num_nodes);
    let mut engine = StarEngine::new(config, workload).expect("cluster construction failed");

    println!("running the phase-switching engine for 1 second...");
    let report = engine.run_for(Duration::from_secs(1));

    println!();
    println!("engine:              {}", report.engine);
    println!(
        "workload:            {} ({}% cross-partition)",
        report.workload, report.cross_partition_pct
    );
    println!("committed:           {}", report.counters.committed);
    println!("throughput:          {:.0} txns/sec", report.throughput);
    println!("aborts (cc):         {}", report.counters.aborted);
    println!("replication traffic: {} KB", report.counters.replication_bytes / 1024);
    println!("replication fences:  {}", report.counters.fences);
    println!("latency p50:         {:?}", report.latency.p50());
    println!("latency p99:         {:?}", report.latency.p99());
    println!("epochs completed:    {}", engine.epoch() - 1);

    engine.verify_replica_consistency().expect("replicas diverged");
    println!("\nall replicas are consistent ✔");
}
