# Mirrors the justfile for environments without `just`.

SEED ?= 42

.PHONY: build test lint star-lint star-lint-baseline lock-witness bench bench-baseline bench-smoke bench-contention profile chaos chaos-synth chaos-guided chaos-corpus chaos-nightly chaos-smoke server-smoke wire-chaos figures ci

build:
	cargo build --release

test:
	cargo test -q

lint:
	cargo fmt --check
	cargo clippy --workspace --all-targets -- -D warnings

# Full-scale exploration run; writes into target/bench, never the committed
# quick-scale baselines (the two scales are not comparable).
bench:
	mkdir -p target/bench
	cargo run --release -p star-bench --bin star-bench -- --seed $(SEED) --out-dir target/bench

# Refresh the committed BENCH_*.json baselines with CI's exact configuration.
bench-baseline:
	cargo run --release -p star-bench --bin star-bench -- --quick --seed $(SEED) --threads-sweep --zipf-sweep

bench-smoke:
	cargo run --release -p star-bench --bin star-bench -- --quick --seed $(SEED) --check --threads-sweep --zipf-sweep

bench-contention:
	cargo run --release -p star-bench --bin star-bench -- --contention-only

# Per-engine latency-source profile (five-slice table, µs per committed txn).
profile:
	cargo run --release -p star-bench --bin star-bench -- --quick --seed $(SEED) --profile

# Deterministic chaos sweep: 100 seeded fault-injection scenarios, each
# checked for serializability against a sequential oracle. Reproduce a red
# seed with `cargo run --release -p star-chaos --bin star-chaos -- --seed N`.
chaos:
	cargo run --release -p star-chaos --bin star-chaos -- --seeds 100

# Generative chaos: 1000 synthesized multi-fault schedules; red seeds are
# shrunk to a minimal failing schedule. Nightly CI sweeps 5000.
chaos-synth:
	cargo run --release -p star-chaos --bin star-chaos -- --synth

# Coverage-guided chaos: bias the walk toward uncovered op bigrams /
# injection points; reproduce one seed with `--synth-guided --seed N`.
chaos-guided:
	cargo run --release -p star-chaos --bin star-chaos -- --synth-guided

# Replay the committed regression corpus (tests/chaos_corpus).
chaos-corpus:
	cargo run --release -p star-chaos --bin star-chaos -- --replay-corpus

chaos-nightly:
	cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seeds 5000 --json CHAOS_nightly.json --corpus-out chaos_corpus_candidates

chaos-smoke:
	cargo run --release -p star-chaos --bin star-chaos -- --seeds 100 --fail-fast --json CHAOS_report.json
	cargo run --release -p star-chaos --bin star-chaos -- --synth --seeds 120 --skip-engines --fail-fast --json CHAOS_synth_smoke.json
	cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seeds 120 --skip-engines --fail-fast --json CHAOS_guided_smoke.json

# Static analysis gated by the committed ratchet baseline; exit 1 means new
# findings or a stale baseline (refresh with `make star-lint-baseline`).
star-lint:
	cargo run --release -p star-analysis --bin star-lint -- --root . --json STAR_LINT_report.json

star-lint-baseline:
	cargo run --release -p star-analysis --bin star-lint -- --root . --write-baseline

# Dynamic lock-order witness fixtures with the instrumented parking_lot stub.
lock-witness:
	cargo test -q -p star-chaos --features lock-witness --test lock_witness
	cargo test -q -p parking_lot --features lock-witness

# Boot a 3-node localhost cluster, drive the YCSB client over TCP, and run
# the transport-parity suite (wire == simulation, byte for byte).
server-smoke:
	./scripts/server_smoke.sh

# Chaos over the wire: corpus replay + seeded socket-fault sweep +
# SIGKILL/restart/recover cycle against real TCP clusters behind the
# fault-injecting proxy mesh, byte-compared to the simulation twin.
wire-chaos:
	cargo build --release -p star-serverd
	cargo run --release -p star-wire-chaos --bin star-wire-chaos -- --replay-corpus --sweep --seeds 4 --kill-recover --serverd target/release/star-serverd

figures:
	cargo run --release -p star-bench --bin figures -- --quick all

ci: lint star-lint build test lock-witness bench-smoke chaos-smoke chaos-corpus server-smoke wire-chaos
