# Developer task runner (mirrored by the Makefile for environments without
# `just`). `just bench` regenerates the committed BENCH_*.json baselines.

# Default: list available recipes.
default:
    @just --list

# Build the workspace in release mode.
build:
    cargo build --release

# Run the full test suite.
test:
    cargo test -q

# Format + clippy, exactly as CI runs them.
lint:
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings

# Full-scale benchmark sweep for local exploration. Writes into target/bench
# so it can never poison the committed quick-scale baselines (full and quick
# runs use different data sizes and windows and are not comparable).
bench seed="42":
    mkdir -p target/bench
    cargo run --release -p star-bench --bin star-bench -- --seed {{seed}} --out-dir target/bench

# Refresh the committed BENCH_*.json baselines with the exact configuration
# CI's bench-smoke job measures (--quick --seed 42). Run a few times and keep
# the lowest numbers if the machine is noisy.
bench-baseline seed="42":
    cargo run --release -p star-bench --bin star-bench -- --quick --seed {{seed}} --threads-sweep --zipf-sweep

# The quick CI smoke variant, including the regression gate against the
# committed baselines (throughput plus the per-slice latency-source gate)
# and the STAR thread-scaling lane (BENCH_threads.json).
bench-smoke seed="42":
    cargo run --release -p star-bench --bin star-bench -- --quick --seed {{seed}} --check --threads-sweep --zipf-sweep

# Index-contention microbenchmark only (sharded vs pre-shard index).
bench-contention:
    cargo run --release -p star-bench --bin star-bench -- --contention-only

# Per-engine latency-source profile: one run of all five engines, printed as
# a five-slice table (execution / fence wait / replication flush / WAL fsync
# / lock-or-validate) in µs per committed transaction.
profile seed="42":
    cargo run --release -p star-bench --bin star-bench -- --quick --seed {{seed}} --profile

# Deterministic chaos sweep: 100 seeded fault-injection scenarios, each
# checked for serializability against a sequential oracle.
chaos seeds="100":
    cargo run --release -p star-chaos --bin star-chaos -- --seeds {{seeds}}

# Reproduce a single failing chaos seed exactly (schedule, history, verdict).
chaos-seed seed:
    cargo run --release -p star-chaos --bin star-chaos -- --seed {{seed}} --verbose

# Generative chaos: sweep synthesized multi-fault schedules (red seeds are
# shrunk to a minimal failing schedule in the report).
chaos-synth seeds="1000":
    cargo run --release -p star-chaos --bin star-chaos -- --synth --seeds {{seeds}}

# Reproduce one synthesized seed (and its shrunk schedule, if red).
chaos-synth-seed seed:
    cargo run --release -p star-chaos --bin star-chaos -- --synth --seed {{seed}} --verbose

# Coverage-guided chaos: each walk seed is chosen among candidate variants
# to maximize new op-bigram / injection-point coverage.
chaos-guided seeds="1000":
    cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seeds {{seeds}}

# Reproduce one coverage-guided seed (replays the selection, no re-sweep).
chaos-guided-seed seed:
    cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seed {{seed}} --verbose

# Replay the committed regression corpus (tests/chaos_corpus): every entry
# once exposed a real bug and must stay green.
chaos-corpus:
    cargo run --release -p star-chaos --bin star-chaos -- --replay-corpus

# The nightly CI deep sweep, locally: 5000 coverage-guided seeds, no
# fail-fast; shrunk counterexamples land in chaos_corpus_candidates/.
chaos-nightly:
    cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seeds 5000 --json CHAOS_nightly.json --corpus-out chaos_corpus_candidates

# The CI chaos job, locally: fail fast and write the machine-readable report.
chaos-smoke:
    cargo run --release -p star-chaos --bin star-chaos -- --seeds 100 --fail-fast --json CHAOS_report.json
    cargo run --release -p star-chaos --bin star-chaos -- --synth --seeds 120 --skip-engines --fail-fast --json CHAOS_synth_smoke.json
    cargo run --release -p star-chaos --bin star-chaos -- --synth-guided --seeds 120 --skip-engines --fail-fast --json CHAOS_guided_smoke.json

# Static analysis: determinism / panic-freedom / lock-order lints, gated by
# the committed ratchet baseline (star-lint.baseline.json). Exit 1 means new
# findings (fix them) or a stale baseline (run `just star-lint-baseline`).
star-lint:
    cargo run --release -p star-analysis --bin star-lint -- --root . --json STAR_LINT_report.json

# Rewrite the ratchet baseline after paying down (or consciously accepting)
# lint debt. The ratchet only ever moves down: review the diff before committing.
star-lint-baseline:
    cargo run --release -p star-analysis --bin star-lint -- --root . --write-baseline

# Dynamic lock-order witness: run the inversion/clean fixtures with the
# instrumented parking_lot stub (records per-thread acquisition chains and
# reports potential-deadlock cycles even on runs that never hung).
lock-witness:
    cargo test -q -p star-chaos --features lock-witness --test lock_witness
    cargo test -q -p parking_lot --features lock-witness

# Boot a real 3-node localhost cluster, drive the seeded YCSB client over
# TCP, inspect it with star-admin, and run the transport-parity suite
# (wire == simulation, byte for byte). Server logs land in the log dir.
server-smoke logdir="target/server-smoke":
    ./scripts/server_smoke.sh {{logdir}}

# Chaos over the wire: replay the committed regression corpus, the seeded
# socket-level fault sweep, and the SIGKILL/restart/recover cycle against
# real TCP clusters behind fault-injecting proxies, comparing histories,
# election logs and replica digests byte-for-byte to the simulation twin.
wire-chaos seeds="4":
    cargo build --release -p star-serverd
    cargo run --release -p star-wire-chaos --bin star-wire-chaos -- --replay-corpus --sweep --seeds {{seeds}} --kill-recover --serverd target/release/star-serverd

# Regenerate the paper's figures (quick scale).
figures:
    cargo run --release -p star-bench --bin figures -- --quick all

# Everything CI checks, locally.
ci: lint star-lint build test lock-witness bench-smoke chaos-smoke chaos-corpus server-smoke wire-chaos
