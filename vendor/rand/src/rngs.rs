//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable generator (xoshiro256++). API-compatible with
/// `rand::rngs::StdRng` for the uses in this workspace; the stream differs
/// from upstream `StdRng`, which is fine because nothing depends on the
/// exact stream — only on per-seed determinism.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
