//! Minimal offline stand-in for the `rand` crate, exposing the 0.8-style
//! surface this workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits and [`rngs::StdRng`] (implemented as xoshiro256++ seeded through
//! SplitMix64). Determinism per seed is all the workloads rely on; the
//! statistical quality of xoshiro256++ is more than adequate for benchmark
//! key generation.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a caller-supplied range.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample empty range {lo}..{}{hi}", if inclusive { "=" } else { "" });
                // Modulo bias is < span / 2^64 — negligible for workload spans.
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty float range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            match rng.gen_range(0..=1u64) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
