//! Minimal offline stand-in for `crossbeam`: only the [`channel`] module,
//! providing unbounded MPMC channels over `Mutex` + `Condvar`. Slower than
//! the real lock-free implementation but semantically equivalent for the
//! per-link FIFO queues of the simulated network.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnection. The queue mutex must be held across the
                // notify, or a receiver that has checked `senders` but not
                // yet parked would miss the wakeup and block forever.
                let guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.ready.notify_all();
                drop(guard);
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            for i in 0..5 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_elapses_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            assert!(start.elapsed() >= Duration::from_millis(10));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_is_observed_by_blocked_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        }
    }
}
