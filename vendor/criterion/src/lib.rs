//! Minimal offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher::iter`)
//! with a simple measurement loop: one warm-up batch, then timed batches
//! until ~`measurement_time` elapses, reporting the mean ns/iter. No
//! statistics, plots or baselines — run the real criterion for those.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of a parameterised benchmark (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Builds an id from a parameter value only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted, not reported by this stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Calls `f` repeatedly, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size calibration.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / first.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.iterations = iters;
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Configuration shared by every benchmark in a run.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(100) }
    }
}

impl Criterion {
    /// Sets how long each benchmark is measured.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; command-line args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.measurement_time, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (this stub is not sample-based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets how long each benchmark in the group is measured.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.criterion.measurement_time, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measurement_time: Duration, mut f: F) {
    let mut bencher = Bencher { measurement_time, mean_ns: 0.0, iterations: 0 };
    f(&mut bencher);
    println!(
        "bench: {name:<48} {:>12.0} ns/iter ({} iterations)",
        bencher.mean_ns, bencher.iterations
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &v| b.iter(|| v * 2));
        group.finish();
    }
}
