//! Minimal offline stand-in for the `bytes` crate: [`Bytes`] (cheaply
//! cloneable immutable buffer), [`BytesMut`] (growable buffer), and the
//! [`Buf`] / [`BufMut`] cursor traits with big-endian integer accessors,
//! matching the upstream wire behaviour for the codec in `star-replication`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a contiguous buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out of the buffer, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable, immutable byte buffer with an internal read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Builds a buffer from a static byte slice. (This stub copies; upstream
    /// borrows for `'static`.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes)
    }

    /// A new `Bytes` over the sub-range `range` of the unconsumed bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off the first `at` bytes into a new `Bytes`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to past end");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer implementing both [`Buf`] and [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap), read: 0 }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.read..]
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Splits off the entire filled buffer, leaving `self` empty. (Upstream
    /// `split()` splits at the write cursor; this stub has no spare
    /// capacity region, so the whole buffer is the filled part.)
    pub fn split(&mut self) -> BytesMut {
        std::mem::take(self)
    }

    /// Freezes the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", self.as_slice())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.read += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        assert_eq!(buf.as_slice()[1..5], 0xDEAD_BEEFu32.to_be_bytes());
        let mut frozen = buf.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 42);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s = &data[..];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        let mut rest = [0u8; 3];
        s.copy_to_slice(&mut rest);
        assert_eq!(rest, [2, 3, 4]);
    }

    #[test]
    fn bytes_clone_is_cheap_and_independent() {
        let mut a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn bytesmut_read_then_freeze_keeps_tail() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u32(2);
        assert_eq!(buf.get_u32(), 1);
        let frozen = buf.freeze();
        assert_eq!(frozen.as_slice(), 2u32.to_be_bytes());
    }

    #[test]
    fn split_to_partitions_buffer() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
    }
}
