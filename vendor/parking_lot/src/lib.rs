//! Minimal offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with
//! the guard-returning (non-poisoning) lock API, implemented over the
//! `std::sync` primitives. Poison is swallowed by taking the inner value,
//! matching `parking_lot`'s behaviour of not propagating panics.
//!
//! With the `lock-witness` feature enabled, every acquisition additionally
//! feeds a Goodlock-style lock-order [`witness`]: guards carry a token that
//! tracks the per-thread acquisition chain, and a global lock graph collects
//! `held -> acquiring` edges so tests can detect *potential* deadlocks
//! (inverted acquisition orders) even on runs that never actually hung.
//! The feature is off by default and adds zero overhead when disabled.

use std::fmt;
use std::sync::{self, PoisonError};

#[cfg(feature = "lock-witness")]
pub mod witness;

/// Guard returned by [`Mutex::lock`].
#[cfg(not(feature = "lock-witness"))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
#[cfg(not(feature = "lock-witness"))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
#[cfg(not(feature = "lock-witness"))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Guard returned by [`Mutex::lock`], carrying a witness token that marks
/// the lock released (for acquisition-chain tracking) when dropped.
#[cfg(feature = "lock-witness")]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    _held: witness::Held,
}

/// Guard returned by [`RwLock::read`] under the `lock-witness` feature.
#[cfg(feature = "lock-witness")]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _held: witness::Held,
}

/// Guard returned by [`RwLock::write`] under the `lock-witness` feature.
#[cfg(feature = "lock-witness")]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _held: witness::Held,
}

#[cfg(feature = "lock-witness")]
mod witness_guards {
    use super::*;
    use std::ops::{Deref, DerefMut};

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&**self, f)
        }
    }
}

/// A mutex whose `lock` returns the guard directly (no poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    #[cfg(not(feature = "lock-witness"))]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the mutex, blocking until it is available. Records the
    /// acquisition edge *before* blocking so deadlocked runs still witness
    /// the inverted ordering.
    #[cfg(feature = "lock-witness")]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = witness::addr_of(self);
        witness::before_block(addr);
        let inner = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner, _held: witness::acquired(addr) }
    }

    /// Attempts to acquire the mutex without blocking.
    #[cfg(not(feature = "lock-witness"))]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Attempts to acquire the mutex without blocking. Cannot deadlock, so
    /// the acquisition edge is recorded only on success.
    #[cfg(feature = "lock-witness")]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.0.try_lock().ok()?;
        Some(MutexGuard { inner, _held: witness::try_acquired(witness::addr_of(self)) })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[cfg(not(feature = "lock-witness"))]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires a shared read guard, recording the acquisition edge before
    /// blocking. The witness tracks lock identity, not read/write mode.
    #[cfg(feature = "lock-witness")]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let addr = witness::addr_of(self);
        witness::before_block(addr);
        let inner = self.0.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard { inner, _held: witness::acquired(addr) }
    }

    /// Acquires an exclusive write guard.
    #[cfg(not(feature = "lock-witness"))]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recording the acquisition edge
    /// before blocking.
    #[cfg(feature = "lock-witness")]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let addr = witness::addr_of(self);
        witness::before_block(addr);
        let inner = self.0.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard { inner, _held: witness::acquired(addr) }
    }

    /// Attempts to acquire a read guard without blocking.
    #[cfg(not(feature = "lock-witness"))]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Attempts to acquire a read guard without blocking; the acquisition
    /// edge is recorded only on success.
    #[cfg(feature = "lock-witness")]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = self.0.try_read().ok()?;
        Some(RwLockReadGuard { inner, _held: witness::try_acquired(witness::addr_of(self)) })
    }

    /// Attempts to acquire a write guard without blocking.
    #[cfg(not(feature = "lock-witness"))]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Attempts to acquire a write guard without blocking; the acquisition
    /// edge is recorded only on success.
    #[cfg(feature = "lock-witness")]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = self.0.try_write().ok()?;
        Some(RwLockWriteGuard { inner, _held: witness::try_acquired(witness::addr_of(self)) })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_conflicts() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
