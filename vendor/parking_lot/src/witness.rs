//! Goodlock-style lock-order witness, enabled by the `lock-witness` feature.
//!
//! Every acquisition records, for each lock the acquiring thread already
//! holds, a directed edge `held -> acquiring` in a process-global lock
//! graph. A cycle in that graph is a *potential* deadlock: two threads that
//! each observed one half of the inverted ordering could block each other
//! on an unlucky interleaving, even if no run ever actually hung. Tests
//! call [`potential_deadlocks`] (or [`format_report`]) at shutdown to turn
//! lucky-scheduling passes into deterministic failures.
//!
//! Blocking acquisitions record their edges *before* blocking, so a run
//! that does deadlock still leaves the inversion in the graph of whichever
//! threads got that far. `try_*` acquisitions cannot block and record their
//! edges only on success.
//!
//! Locks are identified by the address of the `Mutex`/`RwLock` wrapper.
//! [`set_name`] attaches a human-readable name for reports; unnamed locks
//! render as `lock@0x...`.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

/// Process-global acquisition-order graph.
struct Graph {
    /// `edges[a]` holds every lock acquired while `a` was held.
    edges: BTreeMap<usize, BTreeSet<usize>>,
    names: BTreeMap<usize, String>,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph { edges: BTreeMap::new(), names: BTreeMap::new() }))
}

thread_local! {
    /// Stack of lock addresses this thread currently holds, in acquisition
    /// order. Guards can drop out of order, so release removes the *last*
    /// occurrence rather than popping blindly.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Stable identity of a lock: the address of its wrapper struct.
pub(crate) fn addr_of<T: ?Sized>(lock: &T) -> usize {
    lock as *const T as *const () as usize
}

/// Witness token carried by every guard; dropping it marks the release.
pub struct Held {
    addr: usize,
}

impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&a| a == self.addr) {
                h.remove(pos);
            }
        });
    }
}

/// Records `held -> addr` edges for everything this thread currently holds.
/// A self-edge (re-acquiring a lock already held) is recorded too: with the
/// underlying `std::sync` primitives that is an immediate deadlock hazard.
fn record_edges(addr: usize) {
    let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    for h in held {
        g.edges.entry(h).or_default().insert(addr);
    }
}

/// Called by blocking acquisitions *before* the potentially-blocking call,
/// so a run that deadlocks still records the ordering that caused it.
pub(crate) fn before_block(addr: usize) {
    record_edges(addr);
}

/// Called once a blocking acquisition succeeds (edges already recorded).
pub(crate) fn acquired(addr: usize) -> Held {
    HELD.with(|h| h.borrow_mut().push(addr));
    Held { addr }
}

/// Called when a `try_*` acquisition succeeds: records edges and holds.
pub(crate) fn try_acquired(addr: usize) -> Held {
    record_edges(addr);
    acquired(addr)
}

/// Attaches a human-readable name to a lock for reports. Pass the
/// `Mutex`/`RwLock` itself (not a guard).
pub fn set_name<T: ?Sized>(lock: &T, name: &str) {
    let addr = addr_of(lock);
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    g.names.insert(addr, name.to_string());
}

/// Clears the global graph and name registry. Call between independent
/// fixtures; held-stacks of live threads are untouched, so only call this
/// while no instrumented lock is held.
pub fn reset() {
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    g.edges.clear();
    g.names.clear();
}

/// Number of distinct ordered pairs observed so far (diagnostic).
pub fn edge_count() -> usize {
    let g = graph().lock().unwrap_or_else(|e| e.into_inner());
    g.edges.values().map(BTreeSet::len).sum()
}

fn name_of(g: &Graph, addr: usize) -> String {
    g.names.get(&addr).cloned().unwrap_or_else(|| format!("lock@{addr:#x}"))
}

/// Returns every lock-order cycle observed, one sorted name list per
/// strongly connected component of the graph that contains a cycle (two or
/// more mutually reachable locks, or a lock re-acquired while held).
pub fn potential_deadlocks() -> Vec<Vec<String>> {
    let g = graph().lock().unwrap_or_else(|e| e.into_inner());
    let mut nodes: BTreeSet<usize> = g.edges.keys().copied().collect();
    for targets in g.edges.values() {
        nodes.extend(targets.iter().copied());
    }
    let sccs = tarjan(&nodes, &g.edges);
    let mut cycles = Vec::new();
    for scc in sccs {
        let cyclic = scc.len() > 1 || g.edges.get(&scc[0]).is_some_and(|t| t.contains(&scc[0]));
        if cyclic {
            let mut names: Vec<String> = scc.iter().map(|&a| name_of(&g, a)).collect();
            names.sort();
            cycles.push(names);
        }
    }
    cycles.sort();
    cycles
}

/// Human-readable summary of [`potential_deadlocks`] for test shutdown.
pub fn format_report() -> String {
    let cycles = potential_deadlocks();
    if cycles.is_empty() {
        return "lock-witness: no lock-order cycles detected\n".to_string();
    }
    let mut out = format!("lock-witness: {} potential deadlock cycle(s)\n", cycles.len());
    for cycle in cycles {
        out.push_str("  potential deadlock: ");
        out.push_str(&cycle.join(" <-> "));
        out.push('\n');
    }
    out
}

/// Iterative Tarjan SCC over the observed graph. Returns each component as
/// a sorted address list.
fn tarjan(nodes: &BTreeSet<usize>, edges: &BTreeMap<usize, BTreeSet<usize>>) -> Vec<Vec<usize>> {
    struct State {
        index: BTreeMap<usize, usize>,
        lowlink: BTreeMap<usize, usize>,
        on_stack: BTreeSet<usize>,
        stack: Vec<usize>,
        next_index: usize,
        sccs: Vec<Vec<usize>>,
    }

    let empty = BTreeSet::new();
    let mut st = State {
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next_index: 0,
        sccs: Vec::new(),
    };

    // Explicit DFS stack of (node, neighbour iterator position) to avoid
    // recursion depth limits on long chains.
    for &root in nodes {
        if st.index.contains_key(&root) {
            continue;
        }
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let neigh =
            |n: usize| -> Vec<usize> { edges.get(&n).unwrap_or(&empty).iter().copied().collect() };
        st.index.insert(root, st.next_index);
        st.lowlink.insert(root, st.next_index);
        st.next_index += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        dfs.push((root, neigh(root), 0));
        while let Some((v, ns, mut i)) = dfs.pop() {
            let mut descended = false;
            while i < ns.len() {
                let w = ns[i];
                i += 1;
                if !st.index.contains_key(&w) {
                    st.index.insert(w, st.next_index);
                    st.lowlink.insert(w, st.next_index);
                    st.next_index += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    dfs.push((v, ns, i));
                    dfs.push((w, neigh(w), 0));
                    descended = true;
                    break;
                } else if st.on_stack.contains(&w) {
                    let lw = st.index[&w].min(st.lowlink[&v]);
                    st.lowlink.insert(v, lw);
                }
            }
            if descended {
                continue;
            }
            if st.lowlink[&v] == st.index[&v] {
                let mut scc = Vec::new();
                while let Some(w) = st.stack.pop() {
                    st.on_stack.remove(&w);
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                scc.sort();
                st.sccs.push(scc);
            }
            // Propagate this node's lowlink to its DFS parent.
            if let Some((p, _, _)) = dfs.last() {
                let lp = st.lowlink[p].min(st.lowlink[&v]);
                st.lowlink.insert(*p, lp);
            }
        }
    }
    st.sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_of(edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut map: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let mut nodes = BTreeSet::new();
        for &(a, b) in edges {
            map.entry(a).or_default().insert(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        tarjan(&nodes, &map)
    }

    #[test]
    fn tarjan_finds_two_cycle() {
        let sccs = scc_of(&[(1, 2), (2, 1), (2, 3)]);
        assert!(sccs.contains(&vec![1, 2]));
        assert!(sccs.contains(&vec![3]));
    }

    #[test]
    fn tarjan_acyclic_chain_is_all_singletons() {
        let sccs = scc_of(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn tarjan_three_cycle_through_shared_node() {
        let sccs = scc_of(&[(1, 2), (2, 3), (3, 1), (3, 4), (4, 4)]);
        assert!(sccs.contains(&vec![1, 2, 3]));
        assert!(sccs.contains(&vec![4]));
    }

    #[test]
    fn tarjan_long_chain_does_not_overflow() {
        let edges: Vec<(usize, usize)> = (0..10_000).map(|i| (i, i + 1)).collect();
        let sccs = scc_of(&edges);
        assert_eq!(sccs.len(), 10_001);
    }
}
