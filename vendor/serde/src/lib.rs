//! Minimal offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this stub
//! serializes through an owned [`Value`] tree (the `serde_json::Value`
//! model), which is all the workspace needs: `#[derive(Serialize)]` +
//! `serde_json::to_string_pretty` for benchmark data points.
//! `Deserialize` is a marker trait so existing derives compile; nothing in
//! the workspace parses serialized data back.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialized data model.
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`. Deserialization is not
/// implemented by this stub (nothing in the workspace uses it).
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches upstream serde's {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
        assert_eq!(Some(3u64).to_value(), Value::U64(3));
    }

    #[test]
    fn containers_recurse() {
        let v = vec![1u64, 2];
        assert_eq!(v.to_value(), Value::Array(vec![Value::U64(1), Value::U64(2)]));
        let d = std::time::Duration::new(2, 5);
        match d.to_value() {
            Value::Object(fields) => {
                assert_eq!(fields[0], ("secs".to_string(), Value::U64(2)));
                assert_eq!(fields[1], ("nanos".to_string(), Value::U64(5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
