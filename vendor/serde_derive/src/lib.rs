//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! mini-serde.
//!
//! Implemented with hand-rolled token parsing (`syn`/`quote` are not
//! available offline). Supports the shapes this workspace derives on:
//! non-generic structs with named fields (honouring `#[serde(skip)]`),
//! unit structs, tuple structs, and enums with unit / tuple / struct
//! variants. Anything fancier fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` by emitting a `to_value` that walks the
/// fields / variants.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Item::TupleStruct { arity, .. } => {
            if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![({v:?}.to_string(), {inner})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![({v:?}.to_string(), ::serde::Value::Object(vec![{pairs}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            pairs = pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde_derive generated invalid Rust")
}

/// Derives the `serde::Deserialize` marker (this stub does not implement
/// deserialization).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}\n", item_name(&item))
        .parse()
        .expect("serde_derive generated invalid Rust")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("mini serde_derive does not support generic types (deriving on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_top_level_items(g.stream()) }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("mini serde_derive supports structs and enums only, found `{other}`"),
    }
}

/// Skips `#[...]` attribute groups, returning whether any of them was a
/// `#[serde(...)]` attribute containing the `skip` flag.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attribute_is_serde_skip(g.stream());
                *i += 1;
            }
            other => panic!("malformed attribute: {other:?}"),
        }
    }
    skip
}

fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Consumes tokens until a top-level `,` (tracking `<...>` nesting, since
/// other bracket kinds arrive pre-grouped). Leaves `i` past the comma.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts top-level comma-separated items (tuple-struct / tuple-variant
/// field count). A trailing comma does not add an item.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        count += 1;
        skip_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Consume the trailing comma (and any explicit discriminant).
        skip_until_comma(&tokens, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}
