//! Minimal offline stand-in for `serde_json`: serializes the mini-serde
//! [`Value`] model to JSON text, matching upstream's formatting (compact and
//! 2-space pretty printing, `{:?}`-style float rendering), and parses JSON
//! text back into [`Value`] trees (`from_str::<Value>`), which is what the
//! benchmark-regression checker uses to read committed baselines.

use serde::Serialize;
pub use serde::Value;
use std::fmt;

/// Serialization error. The mini data model is currently infallible (like
/// upstream, non-finite floats serialize as `null` rather than failing);
/// the `Result` return keeps the upstream signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Types this stub can deserialize. Upstream bounds `from_str` on
/// `DeserializeOwned`; here only the self-describing [`Value`] tree is
/// supported, which keeps `serde_json::from_str::<serde_json::Value>(..)`
/// call sites source-compatible with the real crate.
pub trait FromJson: Sized {
    /// Builds `Self` from a parsed [`Value`].
    fn from_json_value(value: Value) -> Result<Self>;
}

impl FromJson for Value {
    fn from_json_value(value: Value) -> Result<Self> {
        Ok(value)
    }
}

/// Parses a JSON document.
pub fn from_str<T: FromJson>(input: &str) -> Result<T> {
    let mut parser = Parser { input, bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_json_value(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not needed for benchmark
                            // baselines; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` is always on a char boundary here: it only ever
                    // advances past full ASCII tokens or full scalars.
                    let c = self.input[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number: {text}")))
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                // Upstream serde_json serializes non-finite floats as null.
                out.push_str("null");
            } else {
                // `{:?}` keeps a trailing `.0` for integral floats, like
                // upstream.
                out.push_str(&format!("{v:?}"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (idx, (key, item)) in fields.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_matches_upstream_shape() {
        let v = Value::Object(vec![("figure".to_string(), Value::String("fig3".into()))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"figure\": \"fig3\"\n}");
    }

    #[test]
    fn floats_keep_fractional_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn parse_roundtrips_serialized_values() {
        let v = Value::Object(vec![
            ("engine".to_string(), Value::String("Dist. OCC".into())),
            ("throughput".to_string(), Value::F64(12345.5)),
            ("p50".to_string(), Value::U64(42)),
            ("neg".to_string(), Value::I64(-7)),
            ("flag".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
            ("xs".to_string(), Value::Array(vec![Value::U64(1), Value::U64(2)])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed: Value = from_str(&text).unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let parsed: Value = from_str(" { \"a\\n\\\"b\" : [ 1.5e3 , -2 ] } ").unwrap();
        assert_eq!(
            parsed,
            Value::Object(vec![(
                "a\n\"b".to_string(),
                Value::Array(vec![Value::F64(1500.0), Value::I64(-2)])
            )])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("true false").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
    }
}
