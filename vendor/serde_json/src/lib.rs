//! Minimal offline stand-in for `serde_json`: serializes the mini-serde
//! [`Value`] model to JSON text, matching upstream's formatting (compact and
//! 2-space pretty printing, `{:?}`-style float rendering).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The mini data model is currently infallible (like
/// upstream, non-finite floats serialize as `null` rather than failing);
/// the `Result` return keeps the upstream signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                // Upstream serde_json serializes non-finite floats as null.
                out.push_str("null");
            } else {
                // `{:?}` keeps a trailing `.0` for integral floats, like
                // upstream.
                out.push_str(&format!("{v:?}"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (idx, (key, item)) in fields.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_matches_upstream_shape() {
        let v = Value::Object(vec![("figure".to_string(), Value::String("fig3".into()))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"figure\": \"fig3\"\n}");
    }

    #[test]
    fn floats_keep_fractional_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
    }
}
