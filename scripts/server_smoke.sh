#!/usr/bin/env bash
# Boots a real 3-node localhost star-serverd cluster, drives the seeded YCSB
# client end-to-end, inspects it with star-admin, shuts it down cleanly, and
# then runs the transport-parity suite (wire == simulation, byte for byte).
#
# Usage: scripts/server_smoke.sh [log-dir]
#
# Logs land in the log dir (default target/server-smoke) and are left in
# place on failure so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

LOG_DIR="${1:-target/server-smoke}"
BOOTSTRAP="$LOG_DIR/cluster.toml"

mkdir -p "$LOG_DIR"
rm -f "$LOG_DIR"/node-*.log

echo "== server-smoke: building binaries"
cargo build --release -p star-serverd -p star-client

SERVERD=target/release/star-serverd
CLIENT=target/release/star-client
ADMIN=target/release/star-admin

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

# Ask the kernel for three genuinely free ports (bind :0, read back the
# assignment) instead of deriving them from the PID — PID arithmetic
# collides with whatever else is listening on the machine. The bind is
# released before serverd reuses the port, so a racing process can still
# steal it; boot_cluster detects that (the node exits instead of logging
# its "serving on" line) and retries with fresh ports.
reserve_ports() {
    if command -v python3 > /dev/null 2>&1; then
        python3 - <<'PYEOF'
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
PYEOF
    else
        # Fallback: random ports in the dynamic range (still retried on
        # collision by boot_cluster).
        echo "$((32768 + RANDOM % 16384)) $((32768 + RANDOM % 16384)) $((32768 + RANDOM % 16384))"
    fi
}

write_bootstrap() {
    local p0=$1 p1=$2 p2=$3
    cat > "$BOOTSTRAP" <<EOF
[cluster]
nodes = ["127.0.0.1:$p0", "127.0.0.1:$p1", "127.0.0.1:$p2"]
full_replicas = 1
workers_per_node = 1
partitions = 6
seed = 42

[workload]
rows_per_partition = 100
ops_per_transaction = 4
read_pct = 80.0
cross_partition_pct = 10.0
EOF
}

# Boots all three nodes and waits until each logs its "serving on" line.
# Returns non-zero if any node died first (port stolen between reservation
# and bind) so the caller can retry with a different port set.
boot_cluster() {
    PIDS=()
    for node in 0 1 2; do
        "$SERVERD" --bootstrap "$BOOTSTRAP" --node "$node" > "$LOG_DIR/node-$node.log" 2>&1 &
        PIDS+=($!)
    done
    for node in 0 1 2; do
        local deadline=$((SECONDS + 10))
        until grep -q "serving on" "$LOG_DIR/node-$node.log" 2>/dev/null; do
            if ! kill -0 "${PIDS[$node]}" 2>/dev/null; then
                echo "== server-smoke: node $node exited during boot (port collision?)"
                cleanup
                wait 2>/dev/null || true
                PIDS=()
                return 1
            fi
            if ((SECONDS >= deadline)); then
                # The node bound its port but never came up — not a port
                # race, so retrying won't help. Logs stay in place.
                echo "== server-smoke: node $node never reported 'serving on'" >&2
                exit 1
            fi
            sleep 0.1
        done
    done
}

booted=false
for attempt in 1 2 3 4 5; do
    read -r P0 P1 P2 <<< "$(reserve_ports)"
    # A duplicate draw (possible in the RANDOM fallback) is rejected by the
    # bootstrap parser; just redraw.
    if [[ "$P0" == "$P1" || "$P1" == "$P2" || "$P0" == "$P2" ]]; then
        continue
    fi
    write_bootstrap "$P0" "$P1" "$P2"
    echo "== server-smoke: booting 3 nodes (attempt $attempt, ports $P0 $P1 $P2, logs in $LOG_DIR)"
    if boot_cluster; then
        booted=true
        break
    fi
done
if [[ "$booted" != true ]]; then
    echo "== server-smoke: FAILED to boot the cluster after 5 attempts" >&2
    exit 1
fi

echo "== server-smoke: driving seeded YCSB through the wire"
"$CLIENT" --bootstrap "$BOOTSTRAP" --iterations 3 --partitioned-txns 50 --single-master-txns 20

echo "== server-smoke: inspecting the live cluster"
"$ADMIN" --bootstrap "$BOOTSTRAP" status
"$ADMIN" --bootstrap "$BOOTSTRAP" elections
"$ADMIN" --bootstrap "$BOOTSTRAP" digest

echo "== server-smoke: shutting the cluster down"
"$ADMIN" --bootstrap "$BOOTSTRAP" shutdown
for pid in "${PIDS[@]}"; do
    wait "$pid"
done
PIDS=()

echo "== server-smoke: transport-parity suite (wire == simulation)"
cargo test --release -p star-serverd --test parity

echo "== server-smoke: OK"
