#!/usr/bin/env bash
# Boots a real 3-node localhost star-serverd cluster, drives the seeded YCSB
# client end-to-end, inspects it with star-admin, shuts it down cleanly, and
# then runs the transport-parity suite (wire == simulation, byte for byte).
#
# Usage: scripts/server_smoke.sh [log-dir]
#
# Logs land in the log dir (default target/server-smoke) and are left in
# place on failure so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

LOG_DIR="${1:-target/server-smoke}"
# Derive a port base from the PID so parallel runs on one machine don't
# collide; three consecutive ports are used.
PORT_BASE=$((20000 + $$ % 20000))
BOOTSTRAP="$LOG_DIR/cluster.toml"

mkdir -p "$LOG_DIR"
rm -f "$LOG_DIR"/node-*.log

cat > "$BOOTSTRAP" <<EOF
[cluster]
nodes = ["127.0.0.1:$PORT_BASE", "127.0.0.1:$((PORT_BASE + 1))", "127.0.0.1:$((PORT_BASE + 2))"]
full_replicas = 1
workers_per_node = 1
partitions = 6
seed = 42

[workload]
rows_per_partition = 100
ops_per_transaction = 4
read_pct = 80.0
cross_partition_pct = 10.0
EOF

echo "== server-smoke: building binaries"
cargo build --release -p star-serverd -p star-client

SERVERD=target/release/star-serverd
CLIENT=target/release/star-client
ADMIN=target/release/star-admin

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

echo "== server-smoke: booting 3 nodes (ports $PORT_BASE-$((PORT_BASE + 2)), logs in $LOG_DIR)"
for node in 0 1 2; do
    "$SERVERD" --bootstrap "$BOOTSTRAP" --node "$node" > "$LOG_DIR/node-$node.log" 2>&1 &
    PIDS+=($!)
done

echo "== server-smoke: driving seeded YCSB through the wire"
"$CLIENT" --bootstrap "$BOOTSTRAP" --iterations 3 --partitioned-txns 50 --single-master-txns 20

echo "== server-smoke: inspecting the live cluster"
"$ADMIN" --bootstrap "$BOOTSTRAP" status
"$ADMIN" --bootstrap "$BOOTSTRAP" elections
"$ADMIN" --bootstrap "$BOOTSTRAP" digest

echo "== server-smoke: shutting the cluster down"
"$ADMIN" --bootstrap "$BOOTSTRAP" shutdown
for pid in "${PIDS[@]}"; do
    wait "$pid"
done
PIDS=()

echo "== server-smoke: transport-parity suite (wire == simulation)"
cargo test --release -p star-serverd --test parity

echo "== server-smoke: OK"
