//! Recovery replay: checkpoint + WAL → consistent replica state.
//!
//! This is the Case-4 recovery path of Section 4.5.3 (every replica lost):
//! each node loads its most recent checkpoint and replays the per-worker logs
//! written since the checkpoint's epoch. Because every log entry carries the
//! full record value and a TID, the logs from different workers can be
//! replayed **in any order** under the Thomas write rule. The same replay
//! routine doubles as the catch-up path for a single recovering node (Cases
//! 1–3), driven by the engine in `star-core`.

use crate::checkpoint::Checkpoint;
use crate::entry::LogEntry;
use star_common::{Epoch, Result};
use star_storage::Database;

/// Summary of a recovery replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Records restored from the checkpoint.
    pub checkpoint_records: usize,
    /// Log entries replayed.
    pub log_entries_replayed: usize,
    /// Log entries skipped because they predate the checkpoint epoch.
    pub log_entries_skipped: usize,
}

/// Rebuilds a replica from a checkpoint and a set of per-worker logs.
///
/// `logs` are the decoded per-worker WAL streams; entries older than the
/// checkpoint's epoch are skipped (they are subsumed by the checkpoint and
/// may legitimately still be present in log files that have not been garbage
/// collected yet).
pub fn recover_from_checkpoint_and_logs(
    db: &Database,
    checkpoint: &Checkpoint,
    logs: &[Vec<LogEntry>],
) -> Result<RecoveryStats> {
    let checkpoint_records = checkpoint.restore(db)?;
    let mut replayed = 0;
    let mut skipped = 0;
    for log in logs {
        for entry in log {
            if entry.tid.epoch() < checkpoint.epoch {
                skipped += 1;
                continue;
            }
            entry.apply(db)?;
            replayed += 1;
        }
    }
    Ok(RecoveryStats {
        checkpoint_records,
        log_entries_replayed: replayed,
        log_entries_skipped: skipped,
    })
}

/// Replays a set of logs (no checkpoint) onto a replica, applying only
/// entries with epoch at most `up_to_epoch`. Used to bring a recovering node
/// up to the cluster's last committed epoch while ignoring in-flight writes.
pub fn replay_logs_up_to_epoch(
    db: &Database,
    logs: &[Vec<LogEntry>],
    up_to_epoch: Epoch,
) -> Result<usize> {
    let mut replayed = 0;
    for log in logs {
        for entry in log {
            if entry.tid.epoch() > up_to_epoch {
                continue;
            }
            entry.apply(db)?;
            replayed += 1;
        }
    }
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Payload;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_storage::{DatabaseBuilder, TableSpec};

    fn db() -> Database {
        DatabaseBuilder::new(1).table(TableSpec::new("t")).build()
    }

    fn value_entry(key: u64, epoch: u32, seq: u64, v: u64) -> LogEntry {
        LogEntry {
            table: 0,
            partition: 0,
            key,
            tid: Tid::new(epoch, seq),
            payload: Payload::Value(row([FieldValue::U64(v)])),
        }
    }

    #[test]
    fn recovery_applies_checkpoint_then_logs() {
        // Build the "before failure" database.
        let live = db();
        for k in 0..5u64 {
            live.insert(0, 0, k, row([FieldValue::U64(k)])).unwrap();
        }
        let cp = Checkpoint::capture(&live, 1);
        // Writes after the checkpoint, spread over two worker logs.
        let logs = vec![
            vec![value_entry(0, 1, 10, 100), value_entry(1, 2, 3, 111)],
            vec![value_entry(2, 2, 5, 222), value_entry(0, 2, 9, 1000)],
        ];
        let recovered = db();
        let stats = recover_from_checkpoint_and_logs(&recovered, &cp, &logs).unwrap();
        assert_eq!(stats.checkpoint_records, 5);
        assert_eq!(stats.log_entries_replayed, 4);
        assert_eq!(stats.log_entries_skipped, 0);
        assert_eq!(
            recovered.get(0, 0, 0).unwrap().read().row,
            row([FieldValue::U64(1000)]),
            "latest write wins regardless of replay order"
        );
        assert_eq!(recovered.get(0, 0, 1).unwrap().read().row, row([FieldValue::U64(111)]));
        assert_eq!(recovered.get(0, 0, 3).unwrap().read().row, row([FieldValue::U64(3)]));
    }

    #[test]
    fn entries_older_than_checkpoint_are_skipped() {
        let live = db();
        live.apply_value_write(0, 0, 0, row([FieldValue::U64(7)]), Tid::new(3, 1)).unwrap();
        let cp = Checkpoint::capture(&live, 3);
        let logs = vec![vec![value_entry(0, 1, 1, 1), value_entry(0, 3, 2, 70)]];
        let recovered = db();
        let stats = recover_from_checkpoint_and_logs(&recovered, &cp, &logs).unwrap();
        assert_eq!(stats.log_entries_skipped, 1);
        assert_eq!(stats.log_entries_replayed, 1);
        assert_eq!(recovered.get(0, 0, 0).unwrap().read().row, row([FieldValue::U64(70)]));
    }

    #[test]
    fn replay_order_does_not_matter() {
        let logs_a = vec![
            vec![value_entry(0, 1, 1, 1), value_entry(0, 1, 3, 3)],
            vec![value_entry(0, 1, 2, 2)],
        ];
        let logs_b = vec![
            vec![value_entry(0, 1, 2, 2)],
            vec![value_entry(0, 1, 3, 3), value_entry(0, 1, 1, 1)],
        ];
        let db_a = db();
        let db_b = db();
        let cp = Checkpoint { epoch: 0, entries: Vec::new() };
        recover_from_checkpoint_and_logs(&db_a, &cp, &logs_a).unwrap();
        recover_from_checkpoint_and_logs(&db_b, &cp, &logs_b).unwrap();
        assert_eq!(db_a.get(0, 0, 0).unwrap().read().row, db_b.get(0, 0, 0).unwrap().read().row);
        assert_eq!(db_a.get(0, 0, 0).unwrap().tid(), Tid::new(1, 3));
    }

    #[test]
    fn replay_up_to_epoch_ignores_in_flight_writes() {
        let logs = vec![vec![
            value_entry(0, 1, 1, 10),
            value_entry(0, 2, 1, 20),
            value_entry(0, 3, 1, 30), // epoch 3 was in flight when the failure hit
        ]];
        let recovered = db();
        let replayed = replay_logs_up_to_epoch(&recovered, &logs, 2).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(recovered.get(0, 0, 0).unwrap().read().row, row([FieldValue::U64(20)]));
    }
}
