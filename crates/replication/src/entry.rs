//! Replication / recovery log entries and their binary codec.
//!
//! The same entry type flows through three paths:
//!
//! * shipped over the simulated network from a primary to its replicas;
//! * appended to the write-ahead log for durability;
//! * replayed during recovery.
//!
//! The codec is a small hand-rolled binary format on top of the `bytes`
//! crate: length-prefixed fields, little-endian integers. It exists so that
//! the WAL is an actual byte stream (its size is measured in Figure 15(b))
//! rather than a vector of in-memory structs.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use star_common::{Error, FieldValue, Key, Operation, PartitionId, Result, Row, TableId, Tid};
use star_storage::Database;
use std::sync::Arc;

/// What a log entry carries for the written record.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// The full row (value replication; always used in the WAL).
    Value(Row),
    /// The operation that produced the new row (operation replication).
    Operation(Operation),
}

impl Payload {
    /// Approximate on-wire size of the payload.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Value(row) => row.wire_size(),
            Payload::Operation(op) => op.wire_size(),
        }
    }
}

/// A single replicated / logged write of one record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Table of the written record.
    pub table: TableId,
    /// Partition of the written record.
    pub partition: PartitionId,
    /// Primary key of the written record.
    pub key: Key,
    /// TID of the transaction that produced the write (embeds the epoch).
    pub tid: Tid,
    /// Row value or operation.
    pub payload: Payload,
}

impl LogEntry {
    /// Approximate on-wire size of the whole entry (header + payload).
    pub fn wire_size(&self) -> usize {
        // table(4) + partition(4) + key(8) + tid(8) + tag(1)
        25 + self.payload.wire_size()
    }

    /// Applies this entry to a replica database.
    ///
    /// * Value payloads go through the Thomas write rule (and upsert missing
    ///   keys), so they may be applied in any order.
    /// * Operation payloads are applied to the current row **in stream
    ///   order**; the produced full row is then installed under the entry's
    ///   TID. Returns the materialised full row so that the caller can log it
    ///   (the WAL always stores whole records, Section 5).
    pub fn apply(&self, db: &Database) -> Result<Row> {
        match &self.payload {
            Payload::Value(row) => {
                db.apply_value_write(self.table, self.partition, self.key, row.clone(), self.tid)?;
                Ok(row.clone())
            }
            Payload::Operation(op) => {
                let current = match db.try_get(self.table, self.partition, self.key)? {
                    Some(rec) => rec.read().row,
                    None => Row::empty(),
                };
                let mut new_row = current;
                op.apply(&mut new_row)?;
                db.apply_value_write(
                    self.table,
                    self.partition,
                    self.key,
                    new_row.clone(),
                    self.tid,
                )?;
                Ok(new_row)
            }
        }
    }

    /// Encodes the entry onto a buffer.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.table);
        buf.put_u32_le(self.partition as u32);
        buf.put_u64_le(self.key);
        buf.put_u64_le(self.tid.raw());
        match &self.payload {
            Payload::Value(row) => {
                buf.put_u8(0);
                encode_row(row, buf);
            }
            Payload::Operation(op) => {
                buf.put_u8(1);
                encode_operation(op, buf);
            }
        }
    }

    /// Encodes the entry into a standalone byte buffer.
    pub fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes one entry from the front of `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<LogEntry> {
        if buf.remaining() < 25 {
            return Err(Error::Durability("truncated log entry header".into()));
        }
        let table = buf.get_u32_le();
        let partition = buf.get_u32_le() as PartitionId;
        let key = buf.get_u64_le();
        let tid = Tid::from_raw(buf.get_u64_le());
        let tag = buf.get_u8();
        let payload = match tag {
            0 => Payload::Value(decode_row(buf)?),
            1 => Payload::Operation(decode_operation(buf)?),
            other => return Err(Error::Durability(format!("unknown payload tag {other}"))),
        };
        Ok(LogEntry { table, partition, key, tid, payload })
    }
}

/// A log entry in its canonical encoded form, shared by reference count.
///
/// Replication fan-out used to deep-clone `LogEntry` rows once per target
/// (a `Row` is a vector of field values, several of which own heap buffers,
/// so one YCSB write cost ~a dozen allocations per replica). The encoded
/// form is produced once at commit time; every further hop — the per-target
/// batch, the fence drain, the deferred commit-queue apply, the TCP frame —
/// is a refcount bump on the same buffer. The partition and TID are mirrored
/// out of the 25-byte header so routing, `holds()` filtering and fence
/// next-phase decisions never decode the payload.
///
/// The decoded form rides along behind the same refcount: the committing
/// worker already holds the `LogEntry`, and the wire receive path decodes
/// once anyway to validate entry boundaries, so every subsequent apply — the
/// fence's synchronous pass and each replica's deferred drain — is
/// allocation-free instead of re-parsing the payload per replica. The bytes
/// stay the entry's identity (equality, corruption, the wire) and the cache
/// is rebuilt whenever the bytes change.
#[derive(Debug, Clone)]
pub struct EncodedEntry {
    partition: PartitionId,
    tid: Tid,
    bytes: Bytes,
    decoded: Arc<LogEntry>,
}

impl PartialEq for EncodedEntry {
    fn eq(&self, other: &Self) -> bool {
        // The encoded bytes are the entry's identity; the decoded cache is
        // derived from them.
        self.partition == other.partition && self.tid == other.tid && self.bytes == other.bytes
    }
}

impl EncodedEntry {
    /// Encodes `entry` once into its shareable form.
    pub fn from_entry(entry: &LogEntry) -> Self {
        Self::from_owned(entry.clone())
    }

    /// Encodes an owned `entry`: the entry moves behind the decoded-payload
    /// cache, so no row payload is cloned.
    pub fn from_owned(entry: LogEntry) -> Self {
        let bytes = entry.encode_to_bytes();
        EncodedEntry { partition: entry.partition, tid: entry.tid, bytes, decoded: Arc::new(entry) }
    }

    /// Encodes a freshly committed write set's entries in stream order,
    /// consuming them — the commit path hands its write set over instead of
    /// paying one payload clone per written row.
    pub fn encode_all(entries: Vec<LogEntry>) -> Vec<EncodedEntry> {
        entries.into_iter().map(Self::from_owned).collect()
    }

    /// Partition of the written record (mirrored from the header).
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// TID of the transaction that produced the write (mirrored from the
    /// header; embeds the epoch).
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The encoded entry bytes (header + payload).
    pub fn as_bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// On-wire size of the entry: exactly the encoded length.
    pub fn wire_size(&self) -> usize {
        self.bytes.len()
    }

    /// The decoded [`LogEntry`], straight from the refcounted cache.
    pub fn decode(&self) -> Result<LogEntry> {
        Ok((*self.decoded).clone())
    }

    /// Applies the entry to a replica database — no decoding, no allocation
    /// beyond what [`LogEntry::apply`] itself does.
    pub fn apply(&self, db: &Database) -> Result<Row> {
        self.decoded.apply(db)
    }

    /// Byzantine corruption: deterministically bit-flips the entry's payload
    /// (decode → same mutation the decoded form used → re-encode), leaving
    /// the addressing header intact. Returns whether anything changed.
    pub fn corrupt_payload(&mut self, salt: u64) -> bool {
        let mut entry = (*self.decoded).clone();
        let changed = match &mut entry.payload {
            Payload::Value(row) => row.corrupt(salt),
            Payload::Operation(op) => op.corrupt(salt),
        };
        if changed {
            self.bytes = entry.encode_to_bytes();
            self.decoded = Arc::new(entry);
        }
        changed
    }
}

/// Serializes a batch of already-encoded entries as the canonical
/// count-prefixed block (the same layout `star-proto` ships on the wire):
/// `u32le` entry count followed by each entry's encoded bytes. One copy into
/// the contiguous block is the only byte-level work fan-out ever performs.
pub fn encode_entry_block(entries: &[EncodedEntry]) -> Bytes {
    let total = 4 + entries.iter().map(EncodedEntry::wire_size).sum::<usize>();
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32_le(entries.len() as u32);
    for entry in entries {
        buf.put_slice(entry.as_bytes());
    }
    buf.freeze()
}

/// Splits a count-prefixed entry block back into per-entry [`EncodedEntry`]
/// values without copying payload bytes: each entry is a sub-slice of the
/// received block, validated (and its header mirrored) by one decode pass.
pub fn split_entry_block(block: &Bytes) -> Result<Vec<EncodedEntry>> {
    let mut cur: &[u8] = block;
    if cur.remaining() < 4 {
        return Err(Error::Durability("truncated entry block".into()));
    }
    let count = cur.get_u32_le() as usize;
    // Each entry's header alone is 25 bytes; a larger count is truncation.
    if count > cur.remaining() / 25 + 1 {
        return Err(Error::Durability("truncated entry block".into()));
    }
    let mut offset = 4usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let before = cur.remaining();
        let entry = LogEntry::decode(&mut cur)?;
        let consumed = before - cur.remaining();
        entries.push(EncodedEntry {
            partition: entry.partition,
            tid: entry.tid,
            bytes: block.slice(offset..offset + consumed),
            // The boundary-validation decode doubles as the apply-time cache.
            decoded: Arc::new(entry),
        });
        offset += consumed;
    }
    if cur.remaining() != 0 {
        return Err(Error::Durability("trailing bytes after entry block".into()));
    }
    Ok(entries)
}

/// Encodes one field value (tag byte + payload, little-endian). Part of the
/// shared binary vocabulary also used by the `star-proto` wire protocol.
pub fn encode_field(field: &FieldValue, buf: &mut BytesMut) {
    match field {
        FieldValue::U64(v) => {
            buf.put_u8(0);
            buf.put_u64_le(*v);
        }
        FieldValue::I64(v) => {
            buf.put_u8(1);
            buf.put_i64_le(*v);
        }
        FieldValue::F64(v) => {
            buf.put_u8(2);
            buf.put_f64_le(*v);
        }
        FieldValue::Str(s) => {
            buf.put_u8(3);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        FieldValue::Bytes(b) => {
            buf.put_u8(4);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

/// Decodes one field value from the front of `buf`. Every read is bounds
/// checked; malformed input yields a typed error, never a panic.
pub fn decode_field(buf: &mut impl Buf) -> Result<FieldValue> {
    if buf.remaining() < 1 {
        return Err(Error::Durability("truncated field".into()));
    }
    let tag = buf.get_u8();
    let need = |buf: &mut dyn Buf, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(Error::Durability("truncated field payload".into()))
        } else {
            Ok(())
        }
    };
    match tag {
        0 => {
            need(buf, 8)?;
            Ok(FieldValue::U64(buf.get_u64_le()))
        }
        1 => {
            need(buf, 8)?;
            Ok(FieldValue::I64(buf.get_i64_le()))
        }
        2 => {
            need(buf, 8)?;
            Ok(FieldValue::F64(buf.get_f64_le()))
        }
        3 => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            String::from_utf8(raw)
                .map(FieldValue::Str)
                .map_err(|_| Error::Durability("invalid utf-8 in string field".into()))
        }
        4 => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            Ok(FieldValue::Bytes(raw))
        }
        other => Err(Error::Durability(format!("unknown field tag {other}"))),
    }
}

/// Encodes a row as a field count followed by its fields.
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u32_le(row.len() as u32);
    for field in row.iter() {
        encode_field(field, buf);
    }
}

/// Decodes a row from the front of `buf`. Bounds checked like
/// [`decode_field`].
pub fn decode_row(buf: &mut impl Buf) -> Result<Row> {
    if buf.remaining() < 4 {
        return Err(Error::Durability("truncated row".into()));
    }
    let n = buf.get_u32_le() as usize;
    // Every field occupies at least one byte, so a count beyond the
    // remaining input is certainly truncated — reject it before trusting it
    // as an allocation hint.
    if n > buf.remaining() {
        return Err(Error::Durability("truncated row".into()));
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        fields.push(decode_field(buf)?);
    }
    Ok(Row::new(fields))
}

/// Encodes an operation (tag byte + operands; recursive for `Multi`).
pub fn encode_operation(op: &Operation, buf: &mut BytesMut) {
    match op {
        Operation::SetField { field, value } => {
            buf.put_u8(0);
            buf.put_u32_le(*field as u32);
            encode_field(value, buf);
        }
        Operation::AddI64 { field, delta } => {
            buf.put_u8(1);
            buf.put_u32_le(*field as u32);
            buf.put_i64_le(*delta);
        }
        Operation::AddF64 { field, delta } => {
            buf.put_u8(2);
            buf.put_u32_le(*field as u32);
            buf.put_f64_le(*delta);
        }
        Operation::ConcatStr { field, prefix, max_len } => {
            buf.put_u8(3);
            buf.put_u32_le(*field as u32);
            buf.put_u32_le(*max_len as u32);
            buf.put_u32_le(prefix.len() as u32);
            buf.put_slice(prefix.as_bytes());
        }
        Operation::SetRow { row } => {
            buf.put_u8(4);
            encode_row(row, buf);
        }
        Operation::Multi { ops } => {
            buf.put_u8(5);
            buf.put_u32_le(ops.len() as u32);
            for op in ops {
                encode_operation(op, buf);
            }
        }
    }
}

/// Decodes an operation from the front of `buf`. Bounds checked like
/// [`decode_field`].
pub fn decode_operation(buf: &mut impl Buf) -> Result<Operation> {
    if buf.remaining() < 1 {
        return Err(Error::Durability("truncated operation".into()));
    }
    let truncated = || Error::Durability("truncated operation".into());
    let tag = buf.get_u8();
    match tag {
        0 => {
            if buf.remaining() < 4 {
                return Err(truncated());
            }
            let field = buf.get_u32_le() as usize;
            let value = decode_field(buf)?;
            Ok(Operation::SetField { field, value })
        }
        1 => {
            if buf.remaining() < 12 {
                return Err(truncated());
            }
            let field = buf.get_u32_le() as usize;
            let delta = buf.get_i64_le();
            Ok(Operation::AddI64 { field, delta })
        }
        2 => {
            if buf.remaining() < 12 {
                return Err(truncated());
            }
            let field = buf.get_u32_le() as usize;
            let delta = buf.get_f64_le();
            Ok(Operation::AddF64 { field, delta })
        }
        3 => {
            if buf.remaining() < 12 {
                return Err(truncated());
            }
            let field = buf.get_u32_le() as usize;
            let max_len = buf.get_u32_le() as usize;
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(Error::Durability("truncated concat prefix".into()));
            }
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            let prefix = String::from_utf8(raw)
                .map_err(|_| Error::Durability("invalid utf-8 in concat prefix".into()))?;
            Ok(Operation::ConcatStr { field, prefix, max_len })
        }
        4 => Ok(Operation::SetRow { row: decode_row(buf)? }),
        5 => {
            if buf.remaining() < 4 {
                return Err(Error::Durability("truncated multi operation".into()));
            }
            let count = buf.get_u32_le() as usize;
            // Each nested operation is at least one byte; see decode_row.
            if count > buf.remaining() {
                return Err(truncated());
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(decode_operation(buf)?);
            }
            Ok(Operation::Multi { ops })
        }
        other => Err(Error::Durability(format!("unknown operation tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_storage::{DatabaseBuilder, TableSpec};

    fn sample_row() -> Row {
        row([
            FieldValue::U64(1),
            FieldValue::I64(-2),
            FieldValue::F64(0.5),
            FieldValue::Str("abc".into()),
            FieldValue::Bytes(vec![9, 9]),
        ])
    }

    fn db() -> Database {
        let d = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
        d.insert(0, 0, 1, sample_row()).unwrap();
        d
    }

    #[test]
    fn value_entry_roundtrips_through_codec() {
        let entry = LogEntry {
            table: 3,
            partition: 1,
            key: 42,
            tid: Tid::new(2, 7),
            payload: Payload::Value(sample_row()),
        };
        let bytes = entry.encode_to_bytes();
        let mut buf = bytes.clone();
        let decoded = LogEntry::decode(&mut buf).unwrap();
        assert_eq!(decoded, entry);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn operation_entries_roundtrip_through_codec() {
        let ops = vec![
            Operation::SetField { field: 2, value: FieldValue::F64(1.25) },
            Operation::AddI64 { field: 1, delta: -5 },
            Operation::AddF64 { field: 2, delta: 2.5 },
            Operation::ConcatStr { field: 3, prefix: "hi|".into(), max_len: 500 },
            Operation::SetRow { row: sample_row() },
            Operation::Multi {
                ops: vec![
                    Operation::AddI64 { field: 1, delta: 2 },
                    Operation::ConcatStr { field: 3, prefix: "p".into(), max_len: 10 },
                ],
            },
        ];
        for op in ops {
            let entry = LogEntry {
                table: 0,
                partition: 0,
                key: 1,
                tid: Tid::new(1, 1),
                payload: Payload::Operation(op.clone()),
            };
            let mut buf = entry.encode_to_bytes();
            assert_eq!(LogEntry::decode(&mut buf).unwrap().payload, Payload::Operation(op));
        }
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(sample_row()),
        };
        let bytes = entry.encode_to_bytes();
        for cut in [0usize, 10, 24, bytes.len() - 1] {
            let mut truncated = bytes.slice(0..cut);
            assert!(LogEntry::decode(&mut truncated).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn apply_value_respects_thomas_rule() {
        let d = db();
        let newer = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 10),
            payload: Payload::Value(row([FieldValue::U64(100)])),
        };
        let older = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 5),
            payload: Payload::Value(row([FieldValue::U64(50)])),
        };
        newer.apply(&d).unwrap();
        older.apply(&d).unwrap();
        assert_eq!(d.get(0, 0, 1).unwrap().read().row, row([FieldValue::U64(100)]));
    }

    #[test]
    fn apply_value_inserts_missing_keys() {
        let d = db();
        let entry = LogEntry {
            table: 0,
            partition: 1,
            key: 500,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(5)])),
        };
        entry.apply(&d).unwrap();
        assert_eq!(d.get(0, 1, 500).unwrap().tid(), Tid::new(1, 1));
    }

    #[test]
    fn apply_operation_materialises_full_row() {
        let d = db();
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 3),
            payload: Payload::Operation(Operation::ConcatStr {
                field: 3,
                prefix: "x|".into(),
                max_len: 100,
            }),
        };
        let full = entry.apply(&d).unwrap();
        assert_eq!(full.field(3).unwrap().as_str(), Some("x|abc"));
        assert_eq!(d.get(0, 0, 1).unwrap().read().row.field(3).unwrap().as_str(), Some("x|abc"));
        // The materialised row is what the WAL must log, and it contains
        // every field, not just the updated one.
        assert_eq!(full.len(), 5);
    }

    #[test]
    fn apply_operation_on_missing_key_uses_set_row() {
        let d = db();
        let entry = LogEntry {
            table: 0,
            partition: 1,
            key: 777,
            tid: Tid::new(1, 1),
            payload: Payload::Operation(Operation::SetRow { row: sample_row() }),
        };
        entry.apply(&d).unwrap();
        assert_eq!(d.get(0, 1, 777).unwrap().read().row, sample_row());
    }

    #[test]
    fn encoded_entry_mirrors_header_and_round_trips() {
        let entry = LogEntry {
            table: 3,
            partition: 1,
            key: 42,
            tid: Tid::new(2, 7),
            payload: Payload::Value(sample_row()),
        };
        let encoded = EncodedEntry::from_entry(&entry);
        assert_eq!(encoded.partition(), 1);
        assert_eq!(encoded.tid(), Tid::new(2, 7));
        assert_eq!(encoded.wire_size(), entry.encode_to_bytes().len());
        assert_eq!(encoded.decode().unwrap(), entry);
    }

    #[test]
    fn encoded_entry_apply_matches_decoded_apply() {
        let a = db();
        let b = db();
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 9),
            payload: Payload::Operation(Operation::AddI64 { field: 1, delta: 4 }),
        };
        let direct = entry.apply(&a).unwrap();
        let via_encoded = EncodedEntry::from_entry(&entry).apply(&b).unwrap();
        assert_eq!(direct, via_encoded);
        assert_eq!(a.get(0, 0, 1).unwrap().read().row, b.get(0, 0, 1).unwrap().read().row);
    }

    #[test]
    fn corrupt_payload_is_deterministic_and_keeps_addressing() {
        let entry = LogEntry {
            table: 0,
            partition: 2,
            key: 5,
            tid: Tid::new(1, 3),
            payload: Payload::Value(sample_row()),
        };
        let pristine = EncodedEntry::from_entry(&entry);
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        assert!(a.corrupt_payload(0xBEEF));
        assert!(b.corrupt_payload(0xBEEF));
        assert_eq!(a, b, "same salt must flip the same bit");
        assert_ne!(a.decode().unwrap().payload, entry.payload);
        let decoded = a.decode().unwrap();
        assert_eq!(
            (decoded.table, decoded.partition, decoded.key, decoded.tid),
            (entry.table, entry.partition, entry.key, entry.tid)
        );
    }

    #[test]
    fn entry_block_splits_back_into_zero_copy_slices() {
        let entries: Vec<LogEntry> = (0..4)
            .map(|i| LogEntry {
                table: 0,
                partition: i as PartitionId,
                key: i,
                tid: Tid::new(1, i),
                payload: Payload::Value(sample_row()),
            })
            .collect();
        let encoded = EncodedEntry::encode_all(entries.clone());
        let block = encode_entry_block(&encoded);
        let split = split_entry_block(&block).unwrap();
        assert_eq!(split, encoded);
        for (s, original) in split.iter().zip(&entries) {
            assert_eq!(&s.decode().unwrap(), original);
        }
        assert!(split_entry_block(&Bytes::new()).is_err());
        assert!(split_entry_block(&block.slice(0..block.len() - 1)).is_err());
    }

    #[test]
    fn wire_size_tracks_payload_size() {
        let value_entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::Str("y".repeat(500))])),
        };
        let op_entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Operation(Operation::ConcatStr {
                field: 0,
                prefix: "abc".into(),
                max_len: 500,
            }),
        };
        assert!(op_entry.wire_size() * 10 < value_entry.wire_size());
        // Encoded size should be in the same ballpark as wire_size.
        assert!(value_entry.encode_to_bytes().len() as i64 - value_entry.wire_size() as i64 <= 8);
    }
}
