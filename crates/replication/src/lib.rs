//! Replication, durability and recovery for the STAR reproduction.
//!
//! Section 5 of the paper describes two replication schemes and a hybrid of
//! them:
//!
//! * **value replication** ships the full row of every written record. It is
//!   the only correct option when a partition can be updated by multiple
//!   threads (the single-master phase), because entries may be applied out of
//!   order and the Thomas write rule needs complete rows to be lossless.
//! * **operation replication** ships only the operation (e.g. "concatenate
//!   this short string onto `C_DATA`"). It is correct when the per-partition
//!   stream is produced by a single thread and applied in order — the
//!   partitioned phase — and can cut replication bandwidth by an order of
//!   magnitude on TPC-C.
//! * the **hybrid strategy** uses value replication in the single-master
//!   phase and operation replication in the partitioned phase.
//!
//! The same crate implements durability: a per-worker write-ahead log of
//! committed writes ([`wal`]), a fuzzy checkpointer ([`checkpoint`]) and the
//! recovery replay that reconstructs a replica from checkpoint + log with the
//! Thomas write rule ([`recovery`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod commit_queue;
pub mod entry;
pub mod recovery;
pub mod strategy;
pub mod wal;

pub use commit_queue::{CommitQueue, DrainMode, EpochDrain};
pub use entry::{
    decode_field, decode_operation, decode_row, encode_entry_block, encode_field, encode_operation,
    encode_row, split_entry_block, EncodedEntry, LogEntry, Payload,
};
pub use strategy::{build_log_entries, ExecutionPhase};
pub use wal::{truncate_wal_tail, WalReader, WalWriter};
