//! Fuzzy checkpoints of a replica.
//!
//! A checkpoint records every record the replica holds, together with its
//! TID, and the epoch at which the scan started (Section 4.5.1). It does
//! **not** need to be a transactionally consistent snapshot: recovery loads
//! the checkpoint and then replays the WAL since the checkpoint's epoch with
//! the Thomas write rule, which repairs any inconsistency introduced by
//! concurrent writers during the scan.

use crate::entry::{LogEntry, Payload};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use star_common::{Epoch, Error, Result};
use star_storage::Database;
use std::io::{Read, Write};
use std::path::Path;

/// A serialised checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Epoch current when the checkpoint scan started. WAL entries from
    /// epochs `>= epoch` must be replayed on top of the checkpoint.
    pub epoch: Epoch,
    /// Every record captured by the scan, encoded as value log entries.
    pub entries: Vec<LogEntry>,
}

impl Checkpoint {
    /// Scans a replica and captures a checkpoint. The scan is fuzzy: it does
    /// not block concurrent writers — the underlying walk visits one index
    /// shard at a time, so even on a large partition writers only ever wait
    /// for the single shard currently being copied.
    pub fn capture(db: &Database, epoch: Epoch) -> Self {
        let mut entries = Vec::with_capacity(db.len());
        db.for_each_record(|table, partition, key, rec| {
            let read = rec.read();
            entries.push(LogEntry {
                table,
                partition,
                key,
                tid: read.tid,
                payload: Payload::Value(read.row),
            });
        });
        Checkpoint { epoch, entries }
    }

    /// Restores the checkpoint into an (empty or partially loaded) replica.
    /// Existing newer versions survive because the load goes through the
    /// Thomas write rule.
    pub fn restore(&self, db: &Database) -> Result<usize> {
        let mut applied = 0;
        for entry in &self.entries {
            entry.apply(db)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Serialises the checkpoint to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.epoch);
        buf.put_u64_le(self.entries.len() as u64);
        for entry in &self.entries {
            entry.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Deserialises a checkpoint.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 12 {
            return Err(Error::Durability("truncated checkpoint header".into()));
        }
        let epoch = data.get_u32_le();
        let count = data.get_u64_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(LogEntry::decode(&mut data)?);
        }
        Ok(Checkpoint { epoch, entries })
    }

    /// Writes the checkpoint to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| Error::Durability(format!("cannot create checkpoint: {e}")))?;
        file.write_all(&self.encode())
            .map_err(|e| Error::Durability(format!("cannot write checkpoint: {e}")))
    }

    /// Reads a checkpoint from a file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| Error::Durability(format!("cannot open checkpoint: {e}")))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)
            .map_err(|e| Error::Durability(format!("cannot read checkpoint: {e}")))?;
        Self::decode(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_storage::{DatabaseBuilder, TableSpec};

    fn populated_db() -> Database {
        let d =
            DatabaseBuilder::new(2).table(TableSpec::new("t")).table(TableSpec::new("u")).build();
        for k in 0..20u64 {
            d.insert(0, (k % 2) as usize, k, row([FieldValue::U64(k)])).unwrap();
        }
        d.apply_value_write(1, 0, 100, row([FieldValue::Str("hello".into())]), Tid::new(2, 3))
            .unwrap();
        d
    }

    fn empty_db() -> Database {
        DatabaseBuilder::new(2).table(TableSpec::new("t")).table(TableSpec::new("u")).build()
    }

    #[test]
    fn capture_restore_roundtrip() {
        let src = populated_db();
        let cp = Checkpoint::capture(&src, 3);
        assert_eq!(cp.epoch, 3);
        assert_eq!(cp.entries.len(), 21);

        let dst = empty_db();
        let applied = cp.restore(&dst).unwrap();
        assert_eq!(applied, 21);
        assert_eq!(dst.get(0, 1, 3).unwrap().read().row, row([FieldValue::U64(3)]));
        assert_eq!(dst.get(1, 0, 100).unwrap().tid(), Tid::new(2, 3));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let src = populated_db();
        let cp = Checkpoint::capture(&src, 7);
        let decoded = Checkpoint::decode(cp.encode()).unwrap();
        assert_eq!(decoded.epoch, 7);
        assert_eq!(decoded.entries.len(), cp.entries.len());
    }

    #[test]
    fn restore_does_not_clobber_newer_versions() {
        let src = populated_db();
        let cp = Checkpoint::capture(&src, 1);
        let dst = empty_db();
        // The destination already replayed a newer write for key 0.
        dst.apply_value_write(0, 0, 0, row([FieldValue::U64(999)]), Tid::new(5, 1)).unwrap();
        cp.restore(&dst).unwrap();
        assert_eq!(dst.get(0, 0, 0).unwrap().read().row, row([FieldValue::U64(999)]));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("star-cp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.bin");
        let src = populated_db();
        Checkpoint::capture(&src, 2).write_to(&path).unwrap();
        let loaded = Checkpoint::read_from(&path).unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.entries.len(), 21);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Checkpoint::decode(Bytes::from_static(b"xx")).is_err());
    }
}
