//! Per-worker write-ahead logging.
//!
//! Each worker thread owns a [`WalWriter`]: the writes of committed
//! transactions (always materialised as full rows, Section 5) are buffered in
//! memory and periodically flushed. The sink is pluggable — a real file for
//! the durability experiments and examples, or an in-memory sink for unit
//! tests and benchmarks that only need byte accounting.

use crate::entry::{LogEntry, Payload};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use star_common::{Error, Result, Row};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Default buffer capacity before an automatic flush, in bytes.
const DEFAULT_FLUSH_THRESHOLD: usize = 64 * 1024;

/// A write-ahead log writer.
pub struct WalWriter {
    buffer: BytesMut,
    sink: Box<dyn Write + Send>,
    flush_threshold: usize,
    bytes_written: u64,
    entries_written: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("buffered", &self.buffer.len())
            .field("bytes_written", &self.bytes_written)
            .field("entries_written", &self.entries_written)
            .finish()
    }
}

/// An in-memory sink shared with the test/benchmark that wants to inspect the
/// bytes a [`WalWriter`] produced.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.lock().is_empty()
    }
}

impl Write for MemorySink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.data.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl WalWriter {
    /// Creates a writer over an arbitrary sink.
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        WalWriter {
            buffer: BytesMut::with_capacity(DEFAULT_FLUSH_THRESHOLD),
            sink,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            bytes_written: 0,
            entries_written: 0,
        }
    }

    /// Creates a writer backed by an in-memory sink; returns the sink handle
    /// as well so its contents can be inspected.
    pub fn in_memory() -> (Self, MemorySink) {
        let sink = MemorySink::new();
        (Self::new(Box::new(sink.clone())), sink)
    }

    /// Creates a writer appending to a file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Durability(format!("cannot open WAL: {e}")))?;
        Ok(Self::new(Box::new(file)))
    }

    /// Overrides the automatic flush threshold (tests).
    pub fn set_flush_threshold(&mut self, bytes: usize) {
        self.flush_threshold = bytes;
    }

    /// Appends one committed write. The entry is normalised to a value
    /// payload (`full_row`) before logging — operation entries from the
    /// replication stream must be materialised by the caller via
    /// [`LogEntry::apply`], which returns the full row.
    pub fn append(&mut self, entry: &LogEntry, full_row: &Row) -> Result<()> {
        let normalised = LogEntry {
            table: entry.table,
            partition: entry.partition,
            key: entry.key,
            tid: entry.tid,
            payload: Payload::Value(full_row.clone()),
        };
        normalised.encode(&mut self.buffer);
        self.entries_written += 1;
        if self.buffer.len() >= self.flush_threshold {
            self.flush()?;
        }
        Ok(())
    }

    /// Appends an entry that already carries a value payload.
    pub fn append_value(&mut self, entry: &LogEntry) -> Result<()> {
        match &entry.payload {
            Payload::Value(row) => {
                let row = row.clone();
                self.append(entry, &row)
            }
            Payload::Operation(_) => Err(Error::Durability(
                "operation entries must be materialised before logging".into(),
            )),
        }
    }

    /// Flushes the buffer to the sink.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let chunk: Bytes = self.buffer.split().freeze();
        self.sink
            .write_all(&chunk)
            .and_then(|_| self.sink.flush())
            .map_err(|e| Error::Durability(format!("WAL flush failed: {e}")))?;
        self.bytes_written += chunk.len() as u64;
        Ok(())
    }

    /// Bytes flushed to the sink so far (excludes the current buffer).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Entries appended so far (flushed or buffered).
    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }
}

/// Byzantine fault injection: truncates the tail of an on-disk WAL by
/// `bytes`, tearing the final record. This models a disk that lied about a
/// flush (or a torn sector write) — the kind of silent corruption the
/// recovery path **must** detect rather than replay garbage. Returns the
/// number of bytes actually removed (the whole file, if shorter).
///
/// A WAL entry is at least 25 bytes of header, so any cut of `1..25` bytes
/// is guaranteed to land mid-record and make [`WalReader::entries`] fail
/// with a truncation error — which is exactly the detection the chaos
/// harness asserts on.
pub fn truncate_wal_tail(path: impl AsRef<Path>, bytes: u64) -> Result<u64> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| Error::Durability(format!("cannot open WAL for truncation: {e}")))?;
    let len =
        file.metadata().map_err(|e| Error::Durability(format!("cannot stat WAL: {e}")))?.len();
    let removed = bytes.min(len);
    file.set_len(len - removed)
        .map_err(|e| Error::Durability(format!("cannot truncate WAL: {e}")))?;
    Ok(removed)
}

/// Reads back a write-ahead log produced by [`WalWriter`].
#[derive(Debug)]
pub struct WalReader {
    data: Bytes,
}

impl WalReader {
    /// Creates a reader over raw WAL bytes.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        WalReader { data: data.into() }
    }

    /// Reads a WAL file from disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| Error::Durability(format!("cannot open WAL for read: {e}")))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)
            .map_err(|e| Error::Durability(format!("cannot read WAL: {e}")))?;
        Ok(Self::from_bytes(data))
    }

    /// Decodes every entry in the log, in append order.
    pub fn entries(&self) -> Result<Vec<LogEntry>> {
        let mut buf = self.data.clone();
        let mut out = Vec::new();
        while buf.has_remaining() {
            out.push(LogEntry::decode(&mut buf)?);
        }
        Ok(out)
    }
}

use bytes::Buf;

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Operation, Tid};

    fn value_entry(key: u64, seq: u64, v: u64) -> LogEntry {
        LogEntry {
            table: 0,
            partition: 0,
            key,
            tid: Tid::new(1, seq),
            payload: Payload::Value(row([FieldValue::U64(v)])),
        }
    }

    #[test]
    fn append_flush_and_read_back() {
        let (mut wal, sink) = WalWriter::in_memory();
        for i in 0..10u64 {
            wal.append_value(&value_entry(i, i + 1, i * 10)).unwrap();
        }
        assert_eq!(wal.entries_written(), 10);
        wal.flush().unwrap();
        assert!(wal.bytes_written() > 0);
        assert_eq!(wal.bytes_written() as usize, sink.len());

        let reader = WalReader::from_bytes(sink.contents());
        let entries = reader.entries().unwrap();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[3], value_entry(3, 4, 30));
    }

    #[test]
    fn auto_flush_when_threshold_reached() {
        let (mut wal, sink) = WalWriter::in_memory();
        wal.set_flush_threshold(64);
        for i in 0..20u64 {
            wal.append_value(&value_entry(i, i + 1, i)).unwrap();
        }
        // With a 64-byte threshold several flushes must have happened without
        // an explicit call.
        assert!(!sink.is_empty());
    }

    #[test]
    fn operation_entries_are_rejected_unless_materialised() {
        let (mut wal, _sink) = WalWriter::in_memory();
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Operation(Operation::AddI64 { field: 0, delta: 1 }),
        };
        assert!(wal.append_value(&entry).is_err());
        // Materialised form is accepted and normalised to a value payload.
        wal.append(&entry, &row([FieldValue::I64(5)])).unwrap();
        wal.flush().unwrap();
    }

    #[test]
    fn file_backed_wal_roundtrip() {
        let dir = std::env::temp_dir().join(format!("star-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker-0.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append_value(&value_entry(1, 1, 100)).unwrap();
            wal.append_value(&value_entry(2, 2, 200)).unwrap();
            wal.flush().unwrap();
        }
        let reader = WalReader::open(&path).unwrap();
        let entries = reader.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].key, 2);
        // Remove the whole directory, not just the file — leaving the empty
        // per-pid directory behind leaks one temp dir per test run.
        std::fs::remove_dir_all(&dir).ok();
        assert!(!dir.exists());
    }

    #[test]
    fn torn_final_record_is_detected_on_read_back() {
        // The byzantine WAL fault: a torn final record must make the read
        // fail loudly, never silently replay a prefix of committed data.
        let dir = std::env::temp_dir().join(format!("star-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WalWriter::open(&path).unwrap();
            for i in 0..4u64 {
                wal.append_value(&value_entry(i, i + 1, i)).unwrap();
            }
            wal.flush().unwrap();
        }
        assert_eq!(WalReader::open(&path).unwrap().entries().unwrap().len(), 4);
        let removed = truncate_wal_tail(&path, 3).unwrap();
        assert_eq!(removed, 3);
        let result = WalReader::open(&path).unwrap().entries();
        assert!(result.is_err(), "a torn record must fail decoding, got {result:?}");
        // Cutting more than the file holds empties it (clean, zero entries).
        truncate_wal_tail(&path, u64::MAX).unwrap();
        assert!(WalReader::open(&path).unwrap().entries().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let (mut wal, sink) = WalWriter::in_memory();
        wal.flush().unwrap();
        assert_eq!(sink.len(), 0);
        assert_eq!(wal.bytes_written(), 0);
    }
}
