//! Choosing between value and operation replication (the hybrid strategy).

use crate::entry::{LogEntry, Payload};
use star_common::{ReplicationStrategy, Tid};
use star_occ::WriteSet;

/// Which phase the committing transaction ran in. The hybrid strategy keys
/// off this: value replication in the single-master phase, operation
/// replication in the partitioned phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPhase {
    /// Partitioned phase: each partition is written by exactly one thread and
    /// the replication stream is applied in order.
    Partitioned,
    /// Single-master phase: partitions may be written by multiple threads and
    /// entries may be applied out of order (Thomas write rule).
    SingleMaster,
}

/// Builds the replication log entries for a committed write set.
///
/// `strategy` is the configured replication strategy; `phase` is the phase
/// the transaction executed in. Operation payloads are only emitted when both
/// the strategy and the phase allow them *and* the stored procedure
/// registered an operation for the write; otherwise the full row is shipped.
pub fn build_log_entries(
    write_set: &WriteSet,
    tid: Tid,
    strategy: ReplicationStrategy,
    phase: ExecutionPhase,
) -> Vec<LogEntry> {
    let allow_operations = match strategy {
        ReplicationStrategy::Value => false,
        ReplicationStrategy::Operation => true,
        ReplicationStrategy::Hybrid => phase == ExecutionPhase::Partitioned,
    };
    write_set
        .iter()
        .map(|w| {
            let payload = match (&w.operation, allow_operations) {
                (Some(op), true) => Payload::Operation(op.clone()),
                _ => Payload::Value(w.row.clone()),
            };
            LogEntry { table: w.table, partition: w.partition, key: w.key, tid, payload }
        })
        .collect()
}

/// Total wire size of a batch of entries — the replication bandwidth cost.
pub fn batch_wire_size(entries: &[LogEntry]) -> usize {
    entries.iter().map(LogEntry::wire_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Operation};
    use star_occ::WriteEntry;

    fn write_set() -> WriteSet {
        vec![
            WriteEntry {
                table: 0,
                partition: 0,
                key: 1,
                row: row([FieldValue::Str("x".repeat(500))]),
                operation: Some(Operation::ConcatStr {
                    field: 0,
                    prefix: "p|".into(),
                    max_len: 500,
                }),
                insert: false,
            },
            WriteEntry {
                table: 0,
                partition: 0,
                key: 2,
                row: row([FieldValue::U64(9)]),
                operation: None,
                insert: false,
            },
        ]
    }

    #[test]
    fn value_strategy_always_ships_rows() {
        let entries = build_log_entries(
            &write_set(),
            Tid::new(1, 1),
            ReplicationStrategy::Value,
            ExecutionPhase::Partitioned,
        );
        assert!(entries.iter().all(|e| matches!(e.payload, Payload::Value(_))));
    }

    #[test]
    fn hybrid_uses_operations_only_in_partitioned_phase() {
        let partitioned = build_log_entries(
            &write_set(),
            Tid::new(1, 1),
            ReplicationStrategy::Hybrid,
            ExecutionPhase::Partitioned,
        );
        assert!(matches!(partitioned[0].payload, Payload::Operation(_)));
        // The write without a registered operation still ships the row.
        assert!(matches!(partitioned[1].payload, Payload::Value(_)));

        let single_master = build_log_entries(
            &write_set(),
            Tid::new(1, 1),
            ReplicationStrategy::Hybrid,
            ExecutionPhase::SingleMaster,
        );
        assert!(single_master.iter().all(|e| matches!(e.payload, Payload::Value(_))));
    }

    #[test]
    fn operation_strategy_reduces_bandwidth() {
        let ops = build_log_entries(
            &write_set(),
            Tid::new(1, 1),
            ReplicationStrategy::Operation,
            ExecutionPhase::Partitioned,
        );
        let values = build_log_entries(
            &write_set(),
            Tid::new(1, 1),
            ReplicationStrategy::Value,
            ExecutionPhase::Partitioned,
        );
        assert!(batch_wire_size(&ops) * 5 < batch_wire_size(&values));
    }

    #[test]
    fn entries_carry_tid_and_location() {
        let entries = build_log_entries(
            &write_set(),
            Tid::new(3, 9),
            ReplicationStrategy::Value,
            ExecutionPhase::SingleMaster,
        );
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.tid == Tid::new(3, 9)));
        assert_eq!(entries[0].key, 1);
        assert_eq!(entries[1].key, 2);
    }
}
