//! Completion-tracked drain queue for pipelined group commit.
//!
//! At a replication fence the engine *decides* an epoch's fate synchronously
//! (failure detection, revert, election, history finalization stay on the
//! critical path), but the mechanical tail of the group commit — applying
//! replication batches to replica copies the next phase does not read, and
//! flushing the write-ahead log — is packaged into an [`EpochDrain`] and
//! handed to a [`CommitQueue`]. While epoch `N+1` executes, epoch `N` drains
//! behind the fence.
//!
//! A submitted drain is decomposed into independent jobs: one apply job per
//! replica (replicas are disjoint databases, so their applies commute) plus
//! one WAL-flush job. In [`DrainMode::Background`] a small worker pool runs
//! those jobs concurrently, so one slow replica no longer serializes the
//! whole epoch's tail behind the next fence's `wait_for`. Completion is
//! still tracked per *epoch*: an epoch counts as drained only when every one
//! of its jobs has finished and every earlier epoch has drained too.
//!
//! Three modes cover the three callers:
//!
//! * [`DrainMode::Background`] — the worker pool drains jobs as they are
//!   submitted; the timed benchmark path uses this to overlap the drain with
//!   the next phase's execution.
//! * [`DrainMode::Deferred`] — jobs queue until the caller pumps them, in
//!   FIFO order on the calling thread. The stepped drivers and the chaos
//!   harness use this: the drain of epoch `N` deterministically completes at
//!   the *next* fence (or at a quiesce), so replays are bit-identical while
//!   still exercising the pipelined ordering.
//! * [`DrainMode::Immediate`] — submit executes inline; the pre-pipelining
//!   behaviour, kept for A/B comparison.
//!
//! The queue uses `std::sync` primitives because the drain workers must
//! sleep on a condition variable, which the vendored `parking_lot` stub does
//! not offer.

use crate::entry::EncodedEntry;
use crate::wal::WalWriter;
use star_common::stats::RunCounters;
use star_common::Epoch;
use star_storage::Database;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a [`CommitQueue`] executes submitted drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Run each drain inline at submission (no pipelining).
    Immediate,
    /// Queue drains; the caller pumps them at deterministic points.
    Deferred,
    /// A pool of background worker threads drains jobs as they arrive.
    Background,
}

/// Upper bound on background worker threads, matching the per-epoch fan-out
/// (one apply job per replica plus the WAL flush).
const DRAIN_WORKERS_MAX: usize = 4;

/// Background worker threads: the per-epoch fan-out, clamped to the host's
/// actual parallelism. Draining is pure CPU work, so workers beyond the core
/// count only add context switches — on a single-core host they time-slice
/// against the phase workers whose epoch they are trying to retire.
fn drain_workers() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    DRAIN_WORKERS_MAX.min(cores.max(1))
}

/// The deferred tail of one epoch's group commit.
pub struct EpochDrain {
    /// The epoch this drain belongs to.
    pub epoch: Epoch,
    /// Replication batches to apply: for each `(replica, entries)` pair,
    /// every entry whose partition the replica holds is applied (in batch
    /// order, preserving the per-partition stream order operation
    /// replication requires). Entries stay in their encoded zero-copy form
    /// until this apply — the drain worker pays the decode, not the fence.
    pub applies: Vec<(Arc<Database>, Vec<EncodedEntry>)>,
    /// Write-ahead logs to flush.
    pub wal_flushes: Vec<Arc<parking_lot::Mutex<WalWriter>>>,
}

impl EpochDrain {
    /// An empty drain for `epoch` (still tracked for completion ordering).
    pub fn empty(epoch: Epoch) -> Self {
        EpochDrain { epoch, applies: Vec::new(), wal_flushes: Vec::new() }
    }

    /// Whether the drain carries no work.
    pub fn is_empty(&self) -> bool {
        self.applies.iter().all(|(_, entries)| entries.is_empty()) && self.wal_flushes.is_empty()
    }

    /// Decomposes the drain into independently runnable jobs.
    fn into_jobs(self) -> Vec<DrainJob> {
        let epoch = self.epoch;
        let mut jobs: Vec<DrainJob> = self
            .applies
            .into_iter()
            .filter(|(_, entries)| !entries.is_empty())
            .map(|(db, entries)| DrainJob::Apply { epoch, db, entries })
            .collect();
        if !self.wal_flushes.is_empty() {
            jobs.push(DrainJob::WalFlush { epoch, wals: self.wal_flushes });
        }
        jobs
    }
}

/// One independently runnable slice of an epoch's drain.
enum DrainJob {
    /// Apply one replica's deferred entries.
    Apply { epoch: Epoch, db: Arc<Database>, entries: Vec<EncodedEntry> },
    /// Flush the epoch's write-ahead logs.
    WalFlush { epoch: Epoch, wals: Vec<Arc<parking_lot::Mutex<WalWriter>>> },
}

impl DrainJob {
    fn epoch(&self) -> Epoch {
        match self {
            DrainJob::Apply { epoch, .. } | DrainJob::WalFlush { epoch, .. } => *epoch,
        }
    }

    /// Executes the job, attributing apply time to the replication-flush
    /// slice and WAL time to the fsync slice of `counters`.
    fn run(self, counters: &RunCounters) {
        match self {
            DrainJob::Apply { db, entries, .. } => {
                let apply_start = Instant::now();
                for entry in &entries {
                    if db.holds(entry.partition()) {
                        // Apply errors mirror the synchronous fence: a
                        // replica refusing an entry for a partition it holds
                        // would be a layout bug; `holds` was just checked, so
                        // apply cannot reject on partition grounds.
                        let _ = entry.apply(&db);
                    }
                }
                counters.add_replication_flush(apply_start.elapsed());
            }
            DrainJob::WalFlush { wals, .. } => {
                let wal_start = Instant::now();
                for wal in &wals {
                    let _ = wal.lock().flush();
                }
                counters.add_wal_fsync(wal_start.elapsed());
            }
        }
    }
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<DrainJob>,
    /// Unfinished job count per epoch, in epoch order. An epoch leaves the
    /// map (and raises `completed`) only once its count hits zero *and*
    /// every earlier epoch has left — jobs of different epochs may finish
    /// out of order on the pool.
    remaining: BTreeMap<Epoch, usize>,
    /// Highest epoch whose drain has fully completed.
    completed: Epoch,
    /// Highest epoch submitted so far.
    submitted: Epoch,
    shutdown: bool,
}

impl QueueState {
    /// Records one finished job of `epoch` and advances the completion
    /// watermark past every leading fully-drained epoch.
    fn finish_job(&mut self, epoch: Epoch) {
        if let Some(count) = self.remaining.get_mut(&epoch) {
            *count = count.saturating_sub(1);
        }
        self.advance_watermark();
    }

    fn advance_watermark(&mut self) {
        while let Some((&epoch, &count)) = self.remaining.iter().next() {
            if count > 0 {
                break;
            }
            self.remaining.remove(&epoch);
            self.completed = self.completed.max(epoch);
        }
    }
}

struct QueueShared {
    state: Mutex<QueueState>,
    /// Signalled both when work arrives (workers wake) and when a drain
    /// completes (waiters wake).
    cond: Condvar,
}

/// A completion-tracked queue of [`EpochDrain`] jobs.
pub struct CommitQueue {
    shared: Arc<QueueShared>,
    counters: Arc<RunCounters>,
    mode: DrainMode,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for CommitQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("commit queue poisoned");
        f.debug_struct("CommitQueue")
            .field("mode", &self.mode)
            .field("pending", &state.jobs.len())
            .field("completed", &state.completed)
            .field("submitted", &state.submitted)
            .finish()
    }
}

impl CommitQueue {
    /// Creates a queue in `mode`, attributing drain time to `counters`.
    pub fn new(mode: DrainMode, counters: Arc<RunCounters>) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
        });
        let workers = if mode == DrainMode::Background {
            (0..drain_workers())
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    let counters = Arc::clone(&counters);
                    std::thread::Builder::new()
                        .name(format!("star-commit-drain-{i}"))
                        .spawn(move || Self::worker_loop(&shared, &counters))
                        .expect("spawning a commit-drain worker cannot fail")
                })
                .collect()
        } else {
            Vec::new()
        };
        CommitQueue { shared, counters, mode, workers }
    }

    /// The queue's drain mode.
    pub fn mode(&self) -> DrainMode {
        self.mode
    }

    /// Switches the execution mode. Pending jobs are pumped first so no job
    /// ever straddles two modes.
    pub fn set_mode(&mut self, mode: DrainMode) {
        if self.mode == mode {
            return;
        }
        self.quiesce();
        self.stop_workers();
        *self = CommitQueue::new(mode, Arc::clone(&self.counters));
    }

    fn worker_loop(shared: &QueueShared, counters: &RunCounters) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("commit queue poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.cond.wait(state).expect("commit queue poisoned");
                }
            };
            let epoch = job.epoch();
            job.run(counters);
            let mut state = shared.state.lock().expect("commit queue poisoned");
            state.finish_job(epoch);
            drop(state);
            shared.cond.notify_all();
        }
    }

    /// Submits a drain. In [`DrainMode::Immediate`] it runs before this
    /// returns; otherwise its jobs run on the pool (Background) or at the
    /// next pump (Deferred).
    pub fn submit(&self, drain: EpochDrain) {
        let epoch = drain.epoch;
        let jobs = drain.into_jobs();
        match self.mode {
            DrainMode::Immediate => {
                for job in jobs {
                    job.run(&self.counters);
                }
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                state.submitted = state.submitted.max(epoch);
                state.completed = state.completed.max(epoch);
            }
            DrainMode::Deferred | DrainMode::Background => {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                state.submitted = state.submitted.max(epoch);
                state.remaining.insert(epoch, jobs.len());
                state.jobs.extend(jobs);
                state.advance_watermark();
                drop(state);
                self.shared.cond.notify_all();
            }
        }
    }

    /// Runs every queued drain on the calling thread (Deferred mode). In
    /// Background mode this waits for the pool instead, so the effect is the
    /// same: on return, everything submitted so far has completed.
    pub fn quiesce(&self) {
        match self.mode {
            DrainMode::Immediate => {}
            DrainMode::Deferred => self.pump_all(),
            DrainMode::Background => {
                let submitted = self.shared.state.lock().expect("commit queue poisoned").submitted;
                self.wait_for(submitted);
            }
        }
    }

    /// Ensures the drain of `epoch` (and everything before it) has completed.
    pub fn wait_for(&self, epoch: Epoch) {
        match self.mode {
            DrainMode::Immediate => {}
            DrainMode::Deferred => {
                loop {
                    let job = {
                        let mut state = self.shared.state.lock().expect("commit queue poisoned");
                        if state.completed >= epoch {
                            return;
                        }
                        match state.jobs.pop_front() {
                            Some(job) => job,
                            None => {
                                // Nothing queued can ever raise `completed`;
                                // the epoch was either never submitted or is
                                // already done.
                                return;
                            }
                        }
                    };
                    self.run_one(job);
                }
            }
            DrainMode::Background => {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                while state.completed < epoch.min(state.submitted) {
                    state = self.shared.cond.wait(state).expect("commit queue poisoned");
                }
            }
        }
    }

    fn pump_all(&self) {
        loop {
            let job = {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                match state.jobs.pop_front() {
                    Some(job) => job,
                    None => return,
                }
            };
            self.run_one(job);
        }
    }

    fn run_one(&self, job: DrainJob) {
        let epoch = job.epoch();
        job.run(&self.counters);
        let mut state = self.shared.state.lock().expect("commit queue poisoned");
        state.finish_job(epoch);
        drop(state);
        self.shared.cond.notify_all();
    }

    /// Epochs whose drains are still queued (tests and debugging), deduped
    /// in queue order.
    pub fn pending_epochs(&self) -> Vec<Epoch> {
        let state = self.shared.state.lock().expect("commit queue poisoned");
        let mut epochs: Vec<Epoch> = Vec::new();
        for job in &state.jobs {
            if epochs.last() != Some(&job.epoch()) {
                epochs.push(job.epoch());
            }
        }
        epochs
    }

    fn stop_workers(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut state = self.shared.state.lock().expect("commit queue poisoned");
            state.shutdown = true;
        }
        self.shared.cond.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CommitQueue {
    fn drop(&mut self) {
        // Complete outstanding work before tearing down: a dropped engine
        // must leave its WAL fully flushed.
        self.quiesce();
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{LogEntry, Payload};
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_storage::{DatabaseBuilder, TableSpec};

    fn replica() -> Arc<Database> {
        let db = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
        db.insert(0, 0, 1, row([FieldValue::U64(0)])).unwrap();
        Arc::new(db)
    }

    fn encoded_write(epoch: Epoch, value: u64) -> EncodedEntry {
        EncodedEntry::from_entry(&LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(epoch, 1),
            payload: Payload::Value(row([FieldValue::U64(value)])),
        })
    }

    fn drain_writing(epoch: Epoch, db: &Arc<Database>, value: u64) -> EpochDrain {
        EpochDrain {
            epoch,
            applies: vec![(Arc::clone(db), vec![encoded_write(epoch, value)])],
            wal_flushes: Vec::new(),
        }
    }

    fn value_of(db: &Database) -> u64 {
        db.get(0, 0, 1).unwrap().read().row.field(0).unwrap().as_u64().unwrap()
    }

    #[test]
    fn immediate_mode_runs_at_submit() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Immediate, Arc::clone(&counters));
        let db = replica();
        queue.submit(drain_writing(1, &db, 7));
        assert_eq!(value_of(&db), 7);
        assert!(queue.pending_epochs().is_empty());
    }

    #[test]
    fn deferred_mode_holds_work_until_pumped() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Deferred, Arc::clone(&counters));
        let db = replica();
        queue.submit(drain_writing(1, &db, 7));
        assert_eq!(value_of(&db), 0, "deferred drains must not run at submit");
        assert_eq!(queue.pending_epochs(), vec![1]);
        queue.wait_for(1);
        assert_eq!(value_of(&db), 7);
        assert!(queue.pending_epochs().is_empty());
        // Draining attributes time to the replication-flush slice.
        assert!(counters.snapshot().replication_flush_us < u64::MAX);
    }

    #[test]
    fn deferred_wait_for_later_epoch_drains_earlier_ones_in_order() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Deferred, counters);
        let db = replica();
        queue.submit(drain_writing(1, &db, 1));
        queue.submit(drain_writing(2, &db, 2));
        queue.wait_for(2);
        assert_eq!(value_of(&db), 2);
    }

    #[test]
    fn background_mode_completes_on_wait() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Background, counters);
        let db = replica();
        for epoch in 1..=16 {
            queue.submit(drain_writing(epoch, &db, epoch as u64));
            queue.wait_for(epoch.saturating_sub(1));
        }
        queue.quiesce();
        assert_eq!(value_of(&db), 16);
    }

    #[test]
    fn multi_replica_drains_complete_as_one_epoch() {
        // One epoch fanned across several replicas: the watermark must not
        // advance until every per-replica job has run, whichever worker runs
        // it.
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Background, counters);
        let replicas: Vec<Arc<Database>> = (0..4).map(|_| replica()).collect();
        let drain = EpochDrain {
            epoch: 1,
            applies: replicas
                .iter()
                .map(|db| (Arc::clone(db), vec![encoded_write(1, 42)]))
                .collect(),
            wal_flushes: Vec::new(),
        };
        queue.submit(drain);
        queue.wait_for(1);
        for db in &replicas {
            assert_eq!(value_of(db), 42, "every replica's job must be done at wait_for");
        }
    }

    #[test]
    fn out_of_order_epoch_completion_keeps_watermark_ordered() {
        // Epoch 2's single tiny job could finish before epoch 1's larger
        // fan-out on a pool; `wait_for(2)` must nonetheless imply epoch 1 is
        // fully applied.
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Background, counters);
        let replicas: Vec<Arc<Database>> = (0..6).map(|_| replica()).collect();
        let big = EpochDrain {
            epoch: 1,
            applies: replicas
                .iter()
                .map(|db| (Arc::clone(db), vec![encoded_write(1, 1)]))
                .collect(),
            wal_flushes: Vec::new(),
        };
        queue.submit(big);
        queue.submit(drain_writing(2, &replicas[0], 2));
        queue.wait_for(2);
        assert_eq!(value_of(&replicas[0]), 2);
        for db in &replicas[1..] {
            assert_eq!(value_of(db), 1);
        }
    }

    #[test]
    fn drop_quiesces_outstanding_drains() {
        let counters = Arc::new(RunCounters::new());
        let db = replica();
        {
            let queue = CommitQueue::new(DrainMode::Deferred, counters);
            queue.submit(drain_writing(1, &db, 9));
        }
        assert_eq!(value_of(&db), 9, "drop must complete pending drains");
    }

    #[test]
    fn set_mode_pumps_before_switching() {
        let counters = Arc::new(RunCounters::new());
        let mut queue = CommitQueue::new(DrainMode::Deferred, counters);
        let db = replica();
        queue.submit(drain_writing(1, &db, 5));
        queue.set_mode(DrainMode::Background);
        assert_eq!(value_of(&db), 5);
        assert_eq!(queue.mode(), DrainMode::Background);
    }
}
