//! Completion-tracked drain queue for pipelined group commit.
//!
//! At a replication fence the engine *decides* an epoch's fate synchronously
//! (failure detection, revert, election, history finalization stay on the
//! critical path), but the mechanical tail of the group commit — applying
//! replication batches to replica copies the next phase does not read, and
//! flushing the write-ahead log — is packaged into an [`EpochDrain`] and
//! handed to a [`CommitQueue`]. While epoch `N+1` executes, epoch `N` drains
//! behind the fence.
//!
//! Three modes cover the three callers:
//!
//! * [`DrainMode::Background`] — a dedicated worker thread drains jobs as
//!   they are submitted; the timed benchmark path uses this to overlap the
//!   drain with the next phase's execution.
//! * [`DrainMode::Deferred`] — jobs queue until the caller pumps them. The
//!   stepped drivers and the chaos harness use this: the drain of epoch `N`
//!   deterministically completes at the *next* fence (or at a quiesce), so
//!   replays are bit-identical while still exercising the pipelined
//!   ordering.
//! * [`DrainMode::Immediate`] — submit executes inline; the pre-pipelining
//!   behaviour, kept for A/B comparison.
//!
//! Completion is tracked per epoch: `wait_for(epoch)` blocks (Background) or
//! pumps (Deferred/Immediate) until that epoch's drain has fully run. The
//! queue uses `std::sync` primitives because the drain worker must sleep on a
//! condition variable, which the vendored `parking_lot` stub does not offer.

use crate::entry::LogEntry;
use crate::wal::WalWriter;
use star_common::stats::RunCounters;
use star_common::Epoch;
use star_storage::Database;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a [`CommitQueue`] executes submitted drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Run each drain inline at submission (no pipelining).
    Immediate,
    /// Queue drains; the caller pumps them at deterministic points.
    Deferred,
    /// A background worker thread drains jobs as they arrive.
    Background,
}

/// The deferred tail of one epoch's group commit.
pub struct EpochDrain {
    /// The epoch this drain belongs to.
    pub epoch: Epoch,
    /// Replication batches to apply: for each `(replica, entries)` pair,
    /// every entry whose partition the replica holds is applied (in batch
    /// order, preserving the per-partition stream order operation
    /// replication requires).
    pub applies: Vec<(Arc<Database>, Vec<LogEntry>)>,
    /// Write-ahead logs to flush.
    pub wal_flushes: Vec<Arc<parking_lot::Mutex<WalWriter>>>,
}

impl EpochDrain {
    /// An empty drain for `epoch` (still tracked for completion ordering).
    pub fn empty(epoch: Epoch) -> Self {
        EpochDrain { epoch, applies: Vec::new(), wal_flushes: Vec::new() }
    }

    /// Whether the drain carries no work.
    pub fn is_empty(&self) -> bool {
        self.applies.iter().all(|(_, entries)| entries.is_empty()) && self.wal_flushes.is_empty()
    }

    /// Executes the drain, attributing apply time to the replication-flush
    /// slice and WAL time to the fsync slice of `counters`.
    pub fn run(self, counters: &RunCounters) {
        let apply_start = Instant::now();
        for (db, entries) in &self.applies {
            for entry in entries {
                if db.holds(entry.partition) {
                    // Apply errors mirror the synchronous fence: a replica
                    // refusing an entry for a partition it holds would be a
                    // layout bug; `holds` was just checked, so apply cannot
                    // reject on partition grounds.
                    let _ = entry.apply(db);
                }
            }
        }
        counters.add_replication_flush(apply_start.elapsed());
        if !self.wal_flushes.is_empty() {
            let wal_start = Instant::now();
            for wal in &self.wal_flushes {
                let _ = wal.lock().flush();
            }
            counters.add_wal_fsync(wal_start.elapsed());
        }
    }
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<EpochDrain>,
    /// Highest epoch whose drain has fully completed.
    completed: Epoch,
    /// Highest epoch submitted so far.
    submitted: Epoch,
    shutdown: bool,
}

struct QueueShared {
    state: Mutex<QueueState>,
    /// Signalled both when work arrives (worker wakes) and when a drain
    /// completes (waiters wake).
    cond: Condvar,
}

/// A completion-tracked queue of [`EpochDrain`] jobs.
pub struct CommitQueue {
    shared: Arc<QueueShared>,
    counters: Arc<RunCounters>,
    mode: DrainMode,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for CommitQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("commit queue poisoned");
        f.debug_struct("CommitQueue")
            .field("mode", &self.mode)
            .field("pending", &state.jobs.len())
            .field("completed", &state.completed)
            .field("submitted", &state.submitted)
            .finish()
    }
}

impl CommitQueue {
    /// Creates a queue in `mode`, attributing drain time to `counters`.
    pub fn new(mode: DrainMode, counters: Arc<RunCounters>) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
        });
        let worker = if mode == DrainMode::Background {
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            Some(
                std::thread::Builder::new()
                    .name("star-commit-drain".into())
                    .spawn(move || Self::worker_loop(&shared, &counters))
                    .expect("spawning the commit-drain worker cannot fail"),
            )
        } else {
            None
        };
        CommitQueue { shared, counters, mode, worker }
    }

    /// The queue's drain mode.
    pub fn mode(&self) -> DrainMode {
        self.mode
    }

    /// Switches the execution mode. Pending jobs are pumped first so no job
    /// ever straddles two modes.
    pub fn set_mode(&mut self, mode: DrainMode) {
        if self.mode == mode {
            return;
        }
        self.quiesce();
        self.stop_worker();
        *self = CommitQueue::new(mode, Arc::clone(&self.counters));
    }

    fn worker_loop(shared: &QueueShared, counters: &RunCounters) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("commit queue poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.cond.wait(state).expect("commit queue poisoned");
                }
            };
            let epoch = job.epoch;
            job.run(counters);
            let mut state = shared.state.lock().expect("commit queue poisoned");
            state.completed = state.completed.max(epoch);
            shared.cond.notify_all();
        }
    }

    /// Submits a drain. In [`DrainMode::Immediate`] it runs before this
    /// returns; otherwise it runs on the worker (Background) or at the next
    /// pump (Deferred).
    pub fn submit(&self, drain: EpochDrain) {
        let epoch = drain.epoch;
        match self.mode {
            DrainMode::Immediate => {
                drain.run(&self.counters);
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                state.submitted = state.submitted.max(epoch);
                state.completed = state.completed.max(epoch);
            }
            DrainMode::Deferred | DrainMode::Background => {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                state.submitted = state.submitted.max(epoch);
                state.jobs.push_back(drain);
                drop(state);
                self.shared.cond.notify_all();
            }
        }
    }

    /// Runs every queued drain on the calling thread (Deferred mode). In
    /// Background mode this waits for the worker instead, so the effect is
    /// the same: on return, everything submitted so far has completed.
    pub fn quiesce(&self) {
        match self.mode {
            DrainMode::Immediate => {}
            DrainMode::Deferred => self.pump_all(),
            DrainMode::Background => {
                let submitted = self.shared.state.lock().expect("commit queue poisoned").submitted;
                self.wait_for(submitted);
            }
        }
    }

    /// Ensures the drain of `epoch` (and everything before it) has completed.
    pub fn wait_for(&self, epoch: Epoch) {
        match self.mode {
            DrainMode::Immediate => {}
            DrainMode::Deferred => {
                loop {
                    let job = {
                        let mut state = self.shared.state.lock().expect("commit queue poisoned");
                        if state.completed >= epoch {
                            return;
                        }
                        match state.jobs.pop_front() {
                            Some(job) => job,
                            None => {
                                // Nothing queued can ever raise `completed`;
                                // the epoch was either never submitted or is
                                // already done.
                                return;
                            }
                        }
                    };
                    self.run_one(job);
                }
            }
            DrainMode::Background => {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                while state.completed < epoch.min(state.submitted) {
                    state = self.shared.cond.wait(state).expect("commit queue poisoned");
                }
            }
        }
    }

    fn pump_all(&self) {
        loop {
            let job = {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                match state.jobs.pop_front() {
                    Some(job) => job,
                    None => return,
                }
            };
            self.run_one(job);
        }
    }

    fn run_one(&self, job: EpochDrain) {
        let epoch = job.epoch;
        job.run(&self.counters);
        let mut state = self.shared.state.lock().expect("commit queue poisoned");
        state.completed = state.completed.max(epoch);
        drop(state);
        self.shared.cond.notify_all();
    }

    /// Epochs whose drains are still queued (tests and debugging).
    pub fn pending_epochs(&self) -> Vec<Epoch> {
        let state = self.shared.state.lock().expect("commit queue poisoned");
        state.jobs.iter().map(|j| j.epoch).collect()
    }

    fn stop_worker(&mut self) {
        if let Some(worker) = self.worker.take() {
            {
                let mut state = self.shared.state.lock().expect("commit queue poisoned");
                state.shutdown = true;
            }
            self.shared.cond.notify_all();
            let _ = worker.join();
        }
    }
}

impl Drop for CommitQueue {
    fn drop(&mut self) {
        // Complete outstanding work before tearing down: a dropped engine
        // must leave its WAL fully flushed.
        self.quiesce();
        self.stop_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Payload;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_storage::{DatabaseBuilder, TableSpec};

    fn replica() -> Arc<Database> {
        let db = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
        db.insert(0, 0, 1, row([FieldValue::U64(0)])).unwrap();
        Arc::new(db)
    }

    fn drain_writing(epoch: Epoch, db: &Arc<Database>, value: u64) -> EpochDrain {
        EpochDrain {
            epoch,
            applies: vec![(
                Arc::clone(db),
                vec![LogEntry {
                    table: 0,
                    partition: 0,
                    key: 1,
                    tid: Tid::new(epoch, 1),
                    payload: Payload::Value(row([FieldValue::U64(value)])),
                }],
            )],
            wal_flushes: Vec::new(),
        }
    }

    fn value_of(db: &Database) -> u64 {
        db.get(0, 0, 1).unwrap().read().row.field(0).unwrap().as_u64().unwrap()
    }

    #[test]
    fn immediate_mode_runs_at_submit() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Immediate, Arc::clone(&counters));
        let db = replica();
        queue.submit(drain_writing(1, &db, 7));
        assert_eq!(value_of(&db), 7);
        assert!(queue.pending_epochs().is_empty());
    }

    #[test]
    fn deferred_mode_holds_work_until_pumped() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Deferred, Arc::clone(&counters));
        let db = replica();
        queue.submit(drain_writing(1, &db, 7));
        assert_eq!(value_of(&db), 0, "deferred drains must not run at submit");
        assert_eq!(queue.pending_epochs(), vec![1]);
        queue.wait_for(1);
        assert_eq!(value_of(&db), 7);
        assert!(queue.pending_epochs().is_empty());
        // Draining attributes time to the replication-flush slice.
        assert!(counters.snapshot().replication_flush_us < u64::MAX);
    }

    #[test]
    fn deferred_wait_for_later_epoch_drains_earlier_ones_in_order() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Deferred, counters);
        let db = replica();
        queue.submit(drain_writing(1, &db, 1));
        queue.submit(drain_writing(2, &db, 2));
        queue.wait_for(2);
        assert_eq!(value_of(&db), 2);
    }

    #[test]
    fn background_mode_completes_on_wait() {
        let counters = Arc::new(RunCounters::new());
        let queue = CommitQueue::new(DrainMode::Background, counters);
        let db = replica();
        for epoch in 1..=16 {
            queue.submit(drain_writing(epoch, &db, epoch as u64));
            queue.wait_for(epoch.saturating_sub(1));
        }
        queue.quiesce();
        assert_eq!(value_of(&db), 16);
    }

    #[test]
    fn drop_quiesces_outstanding_drains() {
        let counters = Arc::new(RunCounters::new());
        let db = replica();
        {
            let queue = CommitQueue::new(DrainMode::Deferred, counters);
            queue.submit(drain_writing(1, &db, 9));
        }
        assert_eq!(value_of(&db), 9, "drop must complete pending drains");
    }

    #[test]
    fn set_mode_pumps_before_switching() {
        let counters = Arc::new(RunCounters::new());
        let mut queue = CommitQueue::new(DrainMode::Deferred, counters);
        let db = replica();
        queue.submit(drain_writing(1, &db, 5));
        queue.set_mode(DrainMode::Background);
        assert_eq!(value_of(&db), 5);
        assert_eq!(queue.mode(), DrainMode::Background);
    }
}
