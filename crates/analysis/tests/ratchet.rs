//! Integration tests: star-lint against the real repository.
//!
//! These run the full analysis over the actual workspace sources, so they
//! double as the self-test that the committed baseline is in sync — exactly
//! what the CI static-analysis job enforces — and that the ratchet actually
//! rejects freshly introduced nondeterminism.

use star_analysis::{
    analyze_files, collect_files, parse_manifest, AnalysisConfig, Baseline, SourceFile,
};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn load_config(root: &Path) -> AnalysisConfig {
    let manifest = std::fs::read_to_string(root.join("lock-order.manifest"))
        .expect("lock-order.manifest must exist at the workspace root");
    AnalysisConfig {
        lock_manifest: parse_manifest(&manifest).expect("lock-order.manifest must parse"),
    }
}

fn load_baseline(root: &Path) -> Baseline {
    let text = std::fs::read_to_string(root.join("star-lint.baseline.json"))
        .expect("star-lint.baseline.json must exist at the workspace root");
    Baseline::parse(&text).expect("committed baseline must parse")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let files = collect_files(root).expect("workspace sources must be readable");
    assert!(files.len() > 50, "suspiciously few files scanned: {}", files.len());
    let out = analyze_files(&files, &load_config(root));
    let diff = load_baseline(root).diff(&out.findings);
    assert!(
        diff.regressions.is_empty(),
        "new findings not in the committed baseline — fix them or (for accepted debt) rewrite \
         the baseline with `star-lint --write-baseline`: {:?}",
        diff.regressions
    );
    assert!(
        diff.improvements.is_empty(),
        "debt shrank below the committed baseline — lock it in with \
         `star-lint --write-baseline`: {:?}",
        diff.improvements
    );
}

#[test]
fn ratchet_rejects_new_nondeterminism_in_chaos() {
    let root = workspace_root();
    let mut files = collect_files(root).expect("workspace sources must be readable");
    // A virtual file standing in for a careless future edit: wall-clock time
    // in the deterministic chaos harness.
    files.push(SourceFile {
        path: "crates/chaos/src/injected_for_ratchet_test.rs".to_string(),
        content: "pub fn sample() -> std::time::Instant {\n    std::time::Instant::now()\n}\n"
            .to_string(),
    });
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let out = analyze_files(&files, &load_config(root));
    let diff = load_baseline(root).diff(&out.findings);
    let flagged = diff.regressions.iter().any(|d| {
        d.rule == "determinism::instant-now"
            && d.path == "crates/chaos/src/injected_for_ratchet_test.rs"
            && d.current > d.baseline
    });
    assert!(flagged, "injected Instant::now was not flagged as a regression: {diff:?}");
}

#[test]
fn suppressions_in_live_sources_are_all_well_formed() {
    // `suppression::malformed` findings would show up in the ratchet too,
    // but this spells the invariant out: every allow-comment in the tree
    // names a rule and carries a reason.
    let root = workspace_root();
    let files = collect_files(root).expect("workspace sources must be readable");
    let out = analyze_files(&files, &load_config(root));
    let malformed: Vec<_> =
        out.findings.iter().filter(|f| f.rule == "suppression::malformed").collect();
    assert!(malformed.is_empty(), "malformed star-lint suppressions: {malformed:?}");
}
