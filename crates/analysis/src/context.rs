//! Assigns a context to every token: the innermost enclosing function and
//! whether the token lives in test-only code.
//!
//! Test code is anything under a `#[test]` item or a `#[cfg(test)]` item
//! (the conventional `mod tests`). `#[cfg(not(test))]` is not treated as
//! test code. Tracking is brace-depth based: every `{` pushes a scope and
//! every `}` pops one, with the scope kind decided by what preceded the
//! brace (a pending `fn name` or a pending test attribute).

use crate::lexer::{Token, TokenKind};

/// Per-token context, referencing `FileContexts::fn_names` by index.
#[derive(Debug, Clone, Copy)]
pub struct TokenCtx {
    /// Index into `fn_names` of the innermost enclosing named function.
    pub fn_idx: Option<u32>,
    /// Whether the token is inside test-only code.
    pub in_test: bool,
}

/// Contexts for one file's token stream (parallel to the token vector).
#[derive(Debug, Default)]
pub struct FileContexts {
    pub fn_names: Vec<String>,
    pub ctx: Vec<TokenCtx>,
}

impl FileContexts {
    /// The enclosing function name for token `i`, if any.
    pub fn fn_name(&self, i: usize) -> Option<&str> {
        self.ctx[i].fn_idx.map(|idx| self.fn_names[idx as usize].as_str())
    }
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    fn_idx: Option<u32>,
    test: bool,
}

/// Computes the context of every token in `tokens`.
pub fn token_contexts(tokens: &[Token]) -> FileContexts {
    let mut out = FileContexts::default();
    let mut scopes: Vec<Scope> = Vec::new();
    // Set between `fn name` and the body `{` (cleared by `;` for bodyless
    // trait-method declarations).
    let mut pending_fn: Option<u32> = None;
    let mut awaiting_fn_name = false;
    // Set by `#[test]` / `#[cfg(test)]`, consumed by the next item's `{`.
    let mut pending_test = false;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];

        // Attributes: `#[...]` — scan the balanced bracket group and decide
        // whether it marks the following item as test-only.
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0usize;
            let mut has_test = false;
            let mut has_not = false;
            let mut j = i + 1;
            while j < tokens.len() {
                let a = &tokens[j];
                if a.is_punct('[') {
                    depth += 1;
                } else if a.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("test") {
                    has_test = true;
                } else if a.is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                pending_test = true;
            }
            // Attribute tokens themselves take the current context.
            let ctx = current_ctx(&scopes);
            for _ in i..=j.min(tokens.len() - 1) {
                out.ctx.push(ctx);
            }
            i = j + 1;
            continue;
        }

        // Record the context of this token before any scope change it causes.
        out.ctx.push(current_ctx(&scopes));

        match t.kind {
            TokenKind::Ident if t.text == "fn" => {
                awaiting_fn_name = true;
            }
            TokenKind::Ident if awaiting_fn_name => {
                awaiting_fn_name = false;
                let idx = out.fn_names.len() as u32;
                out.fn_names.push(t.text.clone());
                pending_fn = Some(idx);
            }
            TokenKind::Punct('{') => {
                awaiting_fn_name = false;
                scopes.push(Scope { fn_idx: pending_fn.take(), test: pending_test });
                pending_test = false;
            }
            TokenKind::Punct('}') => {
                scopes.pop();
            }
            TokenKind::Punct(';') => {
                // `use x;`, `#[cfg(test)] use x;`, trait method declarations.
                pending_fn = None;
                pending_test = false;
                awaiting_fn_name = false;
            }
            _ => {
                // `fn` not followed by a name is a fn-pointer type
                // (`fn(u32) -> u32`), not an item.
                awaiting_fn_name = false;
            }
        }
        i += 1;
    }
    out
}

fn current_ctx(scopes: &[Scope]) -> TokenCtx {
    let fn_idx = scopes.iter().rev().find_map(|s| s.fn_idx);
    let in_test = scopes.iter().any(|s| s.test);
    TokenCtx { fn_idx, in_test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str, ident: &str) -> (Option<String>, bool) {
        let lexed = lex(src);
        let ctxs = token_contexts(&lexed.tokens);
        let i = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        (ctxs.fn_name(i).map(str::to_owned), ctxs.ctx[i].in_test)
    }

    #[test]
    fn top_level_has_no_fn() {
        assert_eq!(ctx_of("use std::x; const A: u32 = marker;", "marker"), (None, false));
    }

    #[test]
    fn fn_bodies_are_attributed() {
        let src = "fn outer() { marker; } fn other() {}";
        assert_eq!(ctx_of(src, "marker"), (Some("outer".into()), false));
    }

    #[test]
    fn nested_fns_use_innermost() {
        let src = "fn outer() { fn inner() { marker; } }";
        assert_eq!(ctx_of(src, "marker"), (Some("inner".into()), false));
    }

    #[test]
    fn closures_inherit_the_fn() {
        let src = "fn outer() { let f = |x: u32| { marker }; }";
        assert_eq!(ctx_of(src, "marker"), (Some("outer".into()), false));
    }

    #[test]
    fn cfg_test_mod_is_test() {
        let src = "#[cfg(test)] mod tests { fn helper() { marker; } }";
        assert_eq!(ctx_of(src, "marker"), (Some("helper".into()), true));
    }

    #[test]
    fn test_attr_fn_is_test() {
        let src = "#[test] fn checks() { marker; }";
        assert_eq!(ctx_of(src, "marker"), (Some("checks".into()), true));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))] mod real { fn go() { marker; } }";
        assert_eq!(ctx_of(src, "marker"), (Some("go".into()), false));
    }

    #[test]
    fn trait_method_decl_does_not_leak() {
        let src = "trait T { fn decl(&self); } struct S; impl S { fn body(&self) { marker; } }";
        assert_eq!(ctx_of(src, "marker"), (Some("body".into()), false));
    }

    #[test]
    fn attr_then_use_does_not_leak_test() {
        let src = "#[cfg(test)] use std::x; fn real() { marker; }";
        assert_eq!(ctx_of(src, "marker"), (Some("real".into()), false));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) { marker; }";
        assert_eq!(ctx_of(src, "marker"), (Some("real".into()), false));
    }

    #[test]
    fn struct_braces_do_not_shadow_fn() {
        let src = "fn build() { let s = Point { x: 1, y: marker }; }";
        assert_eq!(ctx_of(src, "marker"), (Some("build".into()), false));
    }
}
