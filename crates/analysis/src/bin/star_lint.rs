//! `star-lint` — run the workspace invariant lints with the ratchet gate.
//!
//! ```text
//! star-lint [--root DIR] [--baseline FILE] [--manifest FILE]
//!           [--json FILE] [--write-baseline]
//! ```
//!
//! Exit codes: 0 = clean against the baseline, 1 = ratchet regression (new
//! findings) or stale baseline, 2 = usage or I/O error.

use star_analysis::baseline::Baseline;
use star_analysis::report::{render_human, render_json};
use star_analysis::rules::{parse_manifest, AnalysisConfig};
use star_analysis::workspace::{analyze_files, collect_files};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    manifest: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
}

fn usage() -> &'static str {
    "usage: star-lint [--root DIR] [--baseline FILE] [--manifest FILE] \
     [--json FILE] [--write-baseline]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        manifest: None,
        json: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next().map(PathBuf::from).ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = path_arg(&mut args)?,
            "--baseline" => opts.baseline = Some(path_arg(&mut args)?),
            "--manifest" => opts.manifest = Some(path_arg(&mut args)?),
            "--json" => opts.json = Some(path_arg(&mut args)?),
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let baseline_path =
        opts.baseline.clone().unwrap_or_else(|| opts.root.join("star-lint.baseline.json"));
    let manifest_path =
        opts.manifest.clone().unwrap_or_else(|| opts.root.join("lock-order.manifest"));

    let lock_manifest = if manifest_path.is_file() {
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        parse_manifest(&text)?
    } else if opts.manifest.is_some() {
        return Err(format!("{}: manifest not found", manifest_path.display()));
    } else {
        eprintln!("star-lint: no {} found; lock-hierarchy checks skipped", manifest_path.display());
        Vec::new()
    };

    let files = collect_files(&opts.root).map_err(|e| format!("scanning workspace: {e}"))?;
    if files.is_empty() {
        return Err(format!("no sources found under {}/crates", opts.root.display()));
    }
    let out = analyze_files(&files, &AnalysisConfig { lock_manifest });

    if opts.write_baseline {
        let base = Baseline::from_findings(&out.findings);
        std::fs::write(&baseline_path, base.to_json())
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "star-lint: wrote baseline with {} finding(s) in {} bucket(s) to {}",
            out.findings.len(),
            base.counts.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)?
    } else {
        eprintln!(
            "star-lint: no baseline at {}; treating all findings as new (run --write-baseline to create one)",
            baseline_path.display()
        );
        Baseline::default()
    };

    let diff = baseline.diff(&out.findings);
    print!("{}", render_human(&out, &diff));
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, render_json(&out, &diff))
            .map_err(|e| format!("{}: {e}", json_path.display()))?;
    }
    // The gate: regressions always fail; improvements fail too, so the
    // baseline can never drift above reality (the fix is one command).
    Ok(diff.regressions.is_empty() && diff.improvements.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("star-lint: {e}");
            ExitCode::from(2)
        }
    }
}
