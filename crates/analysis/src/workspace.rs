//! Walks the workspace source tree and runs the lints over it.
//!
//! Only `crates/*/src/**/*.rs` is scanned: the vendored stubs under
//! `vendor/` are API shims, not product code, and the repo-root integration
//! tests are test-only by construction. Files are visited in sorted path
//! order so output and reports are deterministic.

use crate::rules::{analyze_source, AnalysisConfig, AnalysisOutput};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file: workspace-relative path (forward slashes) plus content.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub content: String,
}

/// Collects every `.rs` file under `crates/*/src` below `root`, sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let content = fs::read_to_string(&path)?;
        out.push(SourceFile { path: rel, content });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full analysis over a set of files. Findings come back sorted by
/// (path, line, column, rule).
pub fn analyze_files(files: &[SourceFile], cfg: &AnalysisConfig) -> AnalysisOutput {
    let mut out = AnalysisOutput::default();
    for f in files {
        analyze_source(&f.path, &f.content, cfg, &mut out);
    }
    out.findings.sort();
    out
}
