//! `star-analysis`: the workspace invariant analyzer behind the `star-lint`
//! binary.
//!
//! The repo's two hardest-won properties — bit-for-bit deterministic
//! simulation and panic-free recovery — are invariants the compiler cannot
//! check. This crate enforces them statically with a dependency-free,
//! token-level scanner (the workspace is offline-vendored, so no `syn`):
//!
//! * **determinism** — no `Instant::now` / `SystemTime::now` / `HashMap` /
//!   `HashSet` in simulation-facing code (`crates/net`, `crates/chaos`, and
//!   the stepped-phase/checker paths of `crates/core`);
//! * **panic-freedom** — no `unwrap` / `expect` / `panic!` / slice-indexing
//!   inside recovery, election, and WAL-replay functions;
//! * **lock hierarchy** — manifest-declared locks must be acquired in
//!   ascending level order within a function.
//!
//! Findings are gated by a checked-in ratchet baseline (existing debt is
//! tracked per `(rule, path)` and can only shrink) and can be silenced line
//! by line with `// star-lint: allow(<rule>) -- <reason>`.
//!
//! The static pass is paired with a dynamic lock-order witness in the
//! vendored `parking_lot` stub (feature `lock-witness`), which records the
//! per-thread lock acquisition graph at runtime and reports potential
//! deadlock cycles even on runs that never hung.

pub mod baseline;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use baseline::{Baseline, RatchetDiff};
pub use rules::{parse_manifest, AnalysisConfig, AnalysisOutput, Finding};
pub use workspace::{analyze_files, collect_files, SourceFile};
