//! The ratchet baseline: a checked-in snapshot of known lint debt, keyed by
//! `(rule, path)` with a finding count.
//!
//! Counting per file (rather than per line) makes the baseline robust to
//! unrelated line churn: moving code around does not invalidate it, but any
//! *new* finding in a file pushes its count above the baseline and fails the
//! gate. Counts can only shrink — when debt is paid down, the baseline must
//! be regenerated (`--write-baseline`) so it cannot silently grow back.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format version stamped into the baseline and report JSON.
pub const FORMAT_VERSION: u32 = 1;

/// Finding counts keyed by `(rule, path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<(String, String), u64>,
}

/// One side of a ratchet comparison: a `(rule, path)` bucket whose count
/// moved, with the baseline and current counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub rule: String,
    pub path: String,
    pub baseline: u64,
    pub current: u64,
}

/// Result of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// Buckets whose count grew (or appeared): these fail the gate.
    pub regressions: Vec<Delta>,
    /// Buckets whose count shrank (or vanished): the baseline is stale and
    /// should be rewritten to lock in the improvement.
    pub improvements: Vec<Delta>,
}

impl Baseline {
    /// Builds a baseline from a set of findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.clone(), f.path.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Compares `findings` against this baseline.
    pub fn diff(&self, findings: &[Finding]) -> RatchetDiff {
        let current = Baseline::from_findings(findings);
        let mut diff = RatchetDiff::default();
        let keys: BTreeMap<&(String, String), ()> =
            self.counts.keys().chain(current.counts.keys()).map(|k| (k, ())).collect();
        for (key, ()) in keys {
            let base = self.counts.get(key).copied().unwrap_or(0);
            let cur = current.counts.get(key).copied().unwrap_or(0);
            let delta =
                Delta { rule: key.0.clone(), path: key.1.clone(), baseline: base, current: cur };
            if cur > base {
                diff.regressions.push(delta);
            } else if cur < base {
                diff.improvements.push(delta);
            }
        }
        diff
    }

    /// Serializes the baseline as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"format_version\": {FORMAT_VERSION},");
        let _ = writeln!(s, "  \"counts\": [");
        let total = self.counts.len();
        for (i, ((rule, path), count)) in self.counts.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"rule\": {}, \"path\": {}, \"count\": {count} }}{comma}",
                json_string(rule),
                json_string(path)
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Parses a baseline previously written by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object().ok_or("baseline: expected a JSON object")?;
        let version = obj
            .get("format_version")
            .and_then(JsonValue::as_u64)
            .ok_or("baseline: missing format_version")?;
        if version != u64::from(FORMAT_VERSION) {
            return Err(format!("baseline: unsupported format_version {version}"));
        }
        let entries = obj
            .get("counts")
            .and_then(JsonValue::as_array)
            .ok_or("baseline: missing counts array")?;
        let mut counts = BTreeMap::new();
        for e in entries {
            let o = e.as_object().ok_or("baseline: counts entry is not an object")?;
            let rule =
                o.get("rule").and_then(JsonValue::as_str).ok_or("baseline: entry missing rule")?;
            let path =
                o.get("path").and_then(JsonValue::as_str).ok_or("baseline: entry missing path")?;
            let count = o
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or("baseline: entry missing count")?;
            counts.insert((rule.to_owned(), path.to_owned()), count);
        }
        Ok(Baseline { counts })
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough to read back our own baseline files.
/// The workspace is offline-vendored and the serde_json stub predates this
/// crate, so the analyzer carries its own (strict, ~100-line) reader.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Self, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let v = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("json: trailing characters at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while c.get(*pos).is_some_and(|ch| ch.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(c: &[char], pos: &mut usize, ch: char) -> Result<(), String> {
    skip_ws(c, pos);
    if c.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("json: expected {ch:?} at offset {pos}", pos = *pos))
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(c, pos);
                let key = parse_string(c, pos)?;
                expect(c, pos, ':')?;
                let value = parse_value(c, pos)?;
                map.insert(key, value);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("json: expected ',' or '}}' at offset {}", *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(JsonValue::Array(arr));
            }
            loop {
                arr.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(arr));
                    }
                    _ => return Err(format!("json: expected ',' or ']' at offset {}", *pos)),
                }
            }
        }
        Some('"') => Ok(JsonValue::String(parse_string(c, pos)?)),
        Some('t') if matches_word(c, *pos, "true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some('f') if matches_word(c, *pos, "false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some('n') if matches_word(c, *pos, "null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(ch) if *ch == '-' || ch.is_ascii_digit() => {
            let start = *pos;
            if c.get(*pos) == Some(&'-') {
                *pos += 1;
            }
            while c
                .get(*pos)
                .is_some_and(|ch| ch.is_ascii_digit() || matches!(ch, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("json: bad number {text:?}"))
        }
        _ => Err(format!("json: unexpected character at offset {}", *pos)),
    }
}

fn matches_word(c: &[char], pos: usize, word: &str) -> bool {
    word.chars().enumerate().all(|(i, w)| c.get(pos + i) == Some(&w))
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    if c.get(*pos) != Some(&'"') {
        return Err(format!("json: expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match c.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = (1..=4).filter_map(|i| c.get(*pos + i)).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("json: bad \\u escape at offset {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("json: bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(ch) => {
                out.push(*ch);
                *pos += 1;
            }
            None => return Err("json: unterminated string".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, path: &str, line: u32) -> Finding {
        Finding {
            path: path.to_owned(),
            line,
            column: 1,
            rule: rule.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let findings = vec![
            f("determinism::instant-now", "crates/net/src/endpoint.rs", 10),
            f("determinism::instant-now", "crates/net/src/endpoint.rs", 20),
            f("panic::unwrap", "crates/core/src/engine.rs", 5),
        ];
        let base = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(base, parsed);
        assert_eq!(
            parsed.counts
                [&("determinism::instant-now".to_owned(), "crates/net/src/endpoint.rs".to_owned())],
            2
        );
    }

    #[test]
    fn new_findings_are_regressions() {
        let base = Baseline::from_findings(&[f("r", "a.rs", 1)]);
        let diff = base.diff(&[f("r", "a.rs", 1), f("r", "a.rs", 2)]);
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!((diff.regressions[0].baseline, diff.regressions[0].current), (1, 2));
        assert!(diff.improvements.is_empty());
    }

    #[test]
    fn line_churn_is_not_a_regression() {
        let base = Baseline::from_findings(&[f("r", "a.rs", 1), f("r", "a.rs", 2)]);
        // Same file, same rule, different lines: the count is what matters.
        let diff = base.diff(&[f("r", "a.rs", 100), f("r", "a.rs", 200)]);
        assert!(diff.regressions.is_empty());
        assert!(diff.improvements.is_empty());
    }

    #[test]
    fn paid_down_debt_is_an_improvement() {
        let base = Baseline::from_findings(&[f("r", "a.rs", 1), f("q", "b.rs", 1)]);
        let diff = base.diff(&[f("r", "a.rs", 1)]);
        assert_eq!(diff.improvements.len(), 1);
        assert_eq!(diff.improvements[0].rule, "q");
        assert_eq!((diff.improvements[0].baseline, diff.improvements[0].current), (1, 0));
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let err = Baseline::parse("{\"format_version\": 99, \"counts\": []}").unwrap_err();
        assert!(err.contains("format_version"));
    }

    #[test]
    fn json_strings_escape_cleanly() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let v = JsonValue::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }
}
