//! The three lint families and the suppression-comment machinery.
//!
//! Rule ids are stable strings (`family::rule`); the ratchet baseline and
//! the suppression comments both key on them, so renaming a rule is a
//! breaking change to the baseline format.

use crate::context::{token_contexts, FileContexts};
use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One lint finding. Ordering is (path, line, column, rule) so reports are
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub column: u32,
    pub rule: String,
    pub message: String,
}

/// A parsed lock-hierarchy manifest entry: locks must be acquired in
/// ascending level order within a function.
#[derive(Debug, Clone)]
pub struct LockLevel {
    pub level: u32,
    /// The identifier the guard is acquired through (`wal` in `wal.lock()`).
    pub name: String,
    /// Substring the file path must contain for the entry to apply; `None`
    /// applies everywhere.
    pub path_filter: Option<String>,
}

/// Parses the lock-order manifest: one entry per line, `level name
/// [path-substring]`, `#` comments, blank lines ignored.
pub fn parse_manifest(text: &str) -> Result<Vec<LockLevel>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(level), Some(name)) = (parts.next(), parts.next()) else {
            return Err(format!("manifest line {}: expected `level name [path]`", lineno + 1));
        };
        let level: u32 = level
            .parse()
            .map_err(|_| format!("manifest line {}: bad level {level:?}", lineno + 1))?;
        let path_filter = parts.next().map(str::to_owned);
        if parts.next().is_some() {
            return Err(format!("manifest line {}: trailing tokens", lineno + 1));
        }
        out.push(LockLevel { level, name: name.to_owned(), path_filter });
    }
    Ok(out)
}

/// Analyzer configuration: currently just the lock manifest.
#[derive(Debug, Default)]
pub struct AnalysisConfig {
    pub lock_manifest: Vec<LockLevel>,
}

/// Functions in `crates/core` whose bodies must stay deterministic: the
/// stepped phase drivers, the fence/election/recovery paths, and the replica
/// checker. (`crates/net` and `crates/chaos` are deterministic in full, as
/// is the history module.)
const CORE_DETERMINISM_FNS: &[&str] = &[
    "run_partitioned_phase_stepped",
    "run_single_master_phase_stepped",
    "run_iteration_stepped",
    "replication_fence",
    "fence",
    "hold_election",
    "recover_node",
    "recover_node_interrupted",
    "verify_replica_consistency",
];

fn determinism_in_scope(path: &str, fn_name: Option<&str>) -> bool {
    if path.starts_with("crates/net/src/") || path.starts_with("crates/chaos/src/") {
        return true;
    }
    if path == "crates/core/src/history.rs" {
        return true;
    }
    if path.starts_with("crates/core/src/") {
        return matches!(fn_name, Some(f) if CORE_DETERMINISM_FNS.contains(&f));
    }
    false
}

/// Whether a function puts its body in panic-freedom scope: recovery,
/// election, and WAL-replay code must not be able to panic, and neither may
/// anything in the wire-protocol crate — every byte it decodes arrives from
/// the network, so malformed input must surface as a typed `DecodeError`,
/// never a crash.
fn panic_in_scope(path: &str, fn_name: Option<&str>) -> bool {
    if path.starts_with("crates/proto/src/") {
        return true;
    }
    let Some(f) = fn_name else { return false };
    f.contains("recover")
        || f.contains("election")
        || f.contains("replay")
        || matches!(f, "classify" | "current_master" | "effective_primary" | "master")
}

/// A suppression parsed from a `// star-lint: allow(<rule>) -- <reason>`
/// comment. It silences matching findings on its own line and the next.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rule: String,
}

fn parse_suppressions(
    comments: &[Comment],
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("star-lint:") else { continue };
        let rest = c.text[at + "star-lint:".len()..].trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let (rule, tail) = r.split_once(')')?;
            let reason = tail.trim_start().strip_prefix("--")?.trim();
            if rule.trim().is_empty() || reason.is_empty() {
                return None;
            }
            Some(rule.trim().to_owned())
        });
        match parsed {
            Some(rule) => out.push(Suppression { line: c.line, rule }),
            None => findings.push(Finding {
                path: path.to_owned(),
                line: c.line,
                column: 1,
                rule: "suppression::malformed".to_owned(),
                message: "malformed suppression; expected `star-lint: allow(<rule>) -- <reason>`"
                    .to_owned(),
            }),
        }
    }
    out
}

fn suppressed(supps: &[Suppression], rule: &str, line: u32) -> bool {
    supps.iter().any(|s| {
        (s.line == line || s.line + 1 == line)
            && (s.rule == rule || rule.starts_with(&format!("{}::", s.rule)))
    })
}

/// Output of analyzing one or more files.
#[derive(Debug, Default)]
pub struct AnalysisOutput {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub suppressions_used: usize,
}

/// Runs every lint family over one file, appending to `out`.
pub fn analyze_source(path: &str, source: &str, cfg: &AnalysisConfig, out: &mut AnalysisOutput) {
    let lexed = lex(source);
    let ctxs = token_contexts(&lexed.tokens);
    let mut raw: Vec<Finding> = Vec::new();

    determinism_pass(path, &lexed.tokens, &ctxs, &mut raw);
    panic_pass(path, &lexed.tokens, &ctxs, &mut raw);
    lock_order_pass(path, &lexed.tokens, &ctxs, cfg, &mut raw);

    let mut findings = Vec::new();
    let supps = parse_suppressions(&lexed.comments, path, &mut findings);
    let before = raw.len();
    raw.retain(|f| !suppressed(&supps, &f.rule, f.line));
    out.suppressions_used += before - raw.len();
    findings.extend(raw);
    out.files_scanned += 1;
    out.findings.extend(findings);
}

fn finding(path: &str, t: &Token, rule: &str, message: String) -> Finding {
    Finding {
        path: path.to_owned(),
        line: t.line,
        column: t.column,
        rule: rule.to_owned(),
        message,
    }
}

/// Determinism: wall-clock reads and hash-ordered collections are banned in
/// simulation-facing code — they make replays diverge from the recorded run.
fn determinism_pass(path: &str, tokens: &[Token], ctxs: &FileContexts, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctxs.ctx[i].in_test {
            continue;
        }
        if !determinism_in_scope(path, ctxs.fn_name(i)) {
            continue;
        }
        let path_call_now = |name: &str| {
            t.is_ident(name)
                && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        };
        if path_call_now("Instant") {
            out.push(finding(
                path,
                t,
                "determinism::instant-now",
                "Instant::now() in simulation-facing code; wall-clock time breaks deterministic replay".to_owned(),
            ));
        } else if path_call_now("SystemTime") {
            out.push(finding(
                path,
                t,
                "determinism::system-time-now",
                "SystemTime::now() in simulation-facing code; wall-clock time breaks deterministic replay".to_owned(),
            ));
        } else if t.is_ident("HashMap") {
            out.push(finding(
                path,
                t,
                "determinism::hash-map",
                "HashMap in simulation-facing code; iteration order is nondeterministic — use BTreeMap".to_owned(),
            ));
        } else if t.is_ident("HashSet") {
            out.push(finding(
                path,
                t,
                "determinism::hash-set",
                "HashSet in simulation-facing code; iteration order is nondeterministic — use BTreeSet".to_owned(),
            ));
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Panic-freedom: recovery/election/replay functions run exactly when the
/// system is least able to tolerate a crash-on-crash, and the wire-protocol
/// crate parses untrusted network bytes, so they must return errors instead
/// of panicking.
fn panic_pass(path: &str, tokens: &[Token], ctxs: &FileContexts, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if ctxs.ctx[i].in_test || !panic_in_scope(path, ctxs.fn_name(i)) {
            continue;
        }
        let fn_name = ctxs.fn_name(i).unwrap_or("?");
        match t.kind {
            TokenKind::Ident => {
                let method_call = |name: &str| {
                    t.is_ident(name)
                        && i > 0
                        && tokens[i - 1].is_punct('.')
                        && tokens.get(i + 1).is_some_and(|a| a.is_punct('('))
                };
                if method_call("unwrap") {
                    out.push(finding(
                        path,
                        t,
                        "panic::unwrap",
                        format!("unwrap() in panic-free function `{fn_name}`"),
                    ));
                } else if method_call("expect") {
                    out.push(finding(
                        path,
                        t,
                        "panic::expect",
                        format!("expect() in panic-free function `{fn_name}`"),
                    ));
                } else if PANIC_MACROS.contains(&t.text.as_str())
                    && tokens.get(i + 1).is_some_and(|a| a.is_punct('!'))
                {
                    out.push(finding(
                        path,
                        t,
                        "panic::panic",
                        format!("{}! in panic-free function `{fn_name}`", t.text),
                    ));
                }
            }
            TokenKind::Punct('[') => {
                // An opening bracket after an ident, `)` or `]` is an index
                // expression (attributes `#[..]`, macros `vec![..]`, array
                // types `[u8; 4]` and literals `[a, b]` all differ in the
                // preceding token).
                let indexes = i > 0
                    && matches!(
                        tokens[i - 1].kind,
                        TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                    );
                if indexes {
                    out.push(finding(
                        path,
                        t,
                        "panic::slice-index",
                        format!("slice/map index in panic-free function `{fn_name}`; use .get()"),
                    ));
                }
            }
            _ => {}
        }
    }
}

const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Lock hierarchy: within a function, manifest-declared locks must be
/// acquired in ascending level order. This is name-based and per-function
/// (it cannot see through calls or guard drops); the dynamic lock-witness
/// covers what this pass cannot.
fn lock_order_pass(
    path: &str,
    tokens: &[Token],
    ctxs: &FileContexts,
    cfg: &AnalysisConfig,
    out: &mut Vec<Finding>,
) {
    if cfg.lock_manifest.is_empty() {
        return;
    }
    // Acquisition sites in order of appearance, grouped by enclosing fn.
    let mut by_fn: BTreeMap<u32, Vec<(u32, &str, u32, u32)>> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctxs.ctx[i].in_test {
            continue;
        }
        let Some(fn_idx) = ctxs.ctx[i].fn_idx else { continue };
        let is_acquire = tokens.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|a| {
                a.kind == TokenKind::Ident && LOCK_METHODS.contains(&a.text.as_str())
            })
            && tokens.get(i + 3).is_some_and(|a| a.is_punct('('));
        if !is_acquire {
            continue;
        }
        let entry = cfg.lock_manifest.iter().find(|l| {
            l.name == t.text && l.path_filter.as_deref().map_or(true, |f| path.contains(f))
        });
        if let Some(l) = entry {
            by_fn.entry(fn_idx).or_default().push((l.level, &l.name, t.line, t.column));
        }
    }
    for sites in by_fn.values() {
        let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
        for (j, &(level_j, name_j, line_j, col_j)) in sites.iter().enumerate() {
            // The worst earlier acquisition still textually before this one.
            let Some(&(level_i, name_i, line_i, _)) =
                sites[..j].iter().filter(|s| s.1 != name_j).max_by_key(|s| s.0)
            else {
                continue;
            };
            if level_i > level_j && reported.insert((name_i, name_j)) {
                out.push(Finding {
                    path: path.to_owned(),
                    line: line_j,
                    column: col_j,
                    rule: "lock::order".to_owned(),
                    message: format!(
                        "`{name_j}` (level {level_j}) acquired after `{name_i}` (level {level_i}, line {line_i}); \
                         the manifest requires ascending levels"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str, cfg: &AnalysisConfig) -> Vec<Finding> {
        let mut out = AnalysisOutput::default();
        analyze_source(path, src, cfg, &mut out);
        let mut f = out.findings;
        f.sort();
        f
    }

    fn rules(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    // --- planted-violation self-tests, one per family ---

    #[test]
    fn planted_determinism_violation_is_caught_with_span() {
        let src = "use std::time::Instant;\nfn deliver() {\n    let t = Instant::now();\n}\n";
        let f = run("crates/net/src/endpoint.rs", src, &AnalysisConfig::default());
        assert_eq!(rules(&f), vec!["determinism::instant-now"]);
        assert_eq!((f[0].line, f[0].column), (3, 13));
    }

    #[test]
    fn planted_panic_violation_is_caught_with_span() {
        let src = "fn recover_node(x: Option<u32>) {\n    let _v = x.unwrap();\n}\n";
        let f = run("crates/core/src/engine.rs", src, &AnalysisConfig::default());
        assert_eq!(rules(&f), vec!["panic::unwrap"]);
        assert_eq!((f[0].line, f[0].column), (2, 16));
    }

    #[test]
    fn planted_lock_order_violation_is_caught_with_span() {
        let cfg = AnalysisConfig { lock_manifest: parse_manifest("10 low\n20 high\n").unwrap() };
        let src = "fn swap() {\n    let a = high.lock();\n    let b = low.lock();\n}\n";
        let f = run("crates/core/src/engine.rs", src, &cfg);
        assert_eq!(rules(&f), vec!["lock::order"]);
        assert_eq!((f[0].line, f[0].column), (3, 13));
        assert!(f[0].message.contains("`low` (level 10) acquired after `high` (level 20"));
    }

    // --- determinism scope and variants ---

    #[test]
    fn determinism_rules_cover_all_four_sources() {
        let src = "fn f() { let a = Instant::now(); let b = SystemTime::now(); \
                   let c: HashMap<u32, u32> = HashMap::new(); let d: HashSet<u32> = HashSet::new(); }";
        let f = run("crates/chaos/src/driver.rs", src, &AnalysisConfig::default());
        assert_eq!(
            rules(&f),
            vec![
                "determinism::instant-now",
                "determinism::system-time-now",
                "determinism::hash-map",
                "determinism::hash-map",
                "determinism::hash-set",
                "determinism::hash-set",
            ]
        );
    }

    #[test]
    fn determinism_ignores_out_of_scope_crates_and_tests() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run("crates/bench/src/main.rs", src, &AnalysisConfig::default()).is_empty());
        let test_src = "#[cfg(test)] mod tests { fn f() { let t = Instant::now(); } }";
        assert!(run("crates/net/src/endpoint.rs", test_src, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn determinism_core_scope_is_fn_scoped() {
        let hit = "impl E { fn hold_election(&self) { let t = Instant::now(); } }";
        assert_eq!(
            rules(&run("crates/core/src/engine.rs", hit, &AnalysisConfig::default())),
            vec!["determinism::instant-now"]
        );
        let miss = "impl E { fn run_wallclock(&self) { let t = Instant::now(); } }";
        assert!(run("crates/core/src/engine.rs", miss, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn bare_instant_type_is_allowed() {
        let src = "fn f(deadline: Instant) -> Instant { deadline }";
        assert!(run("crates/net/src/endpoint.rs", src, &AnalysisConfig::default()).is_empty());
    }

    // --- panic-freedom scope and variants ---

    #[test]
    fn panic_rules_cover_expect_macros_and_indexing() {
        let src = "fn replay_wal(v: Vec<u32>, o: Option<u32>) {\n\
                   let a = o.expect(\"msg\");\n\
                   let b = v[0];\n\
                   panic!(\"boom\");\n\
                   unreachable!();\n}\n";
        let f = run("crates/replication/src/recovery.rs", src, &AnalysisConfig::default());
        assert_eq!(
            rules(&f),
            vec!["panic::expect", "panic::slice-index", "panic::panic", "panic::panic"]
        );
    }

    #[test]
    fn panic_scope_is_name_based() {
        let src = "fn fast_path(v: Vec<u32>) { let a = v[0].clone(); let b = v.first().unwrap(); }";
        assert!(run("crates/core/src/engine.rs", src, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn proto_crate_is_panic_free_in_every_function() {
        // The wire-protocol crate decodes network input, so the whole crate
        // is in scope regardless of function name — even a `fast_path`.
        let src = "fn fast_path(v: Vec<u32>) { let a = v[0].clone(); let b = v.first().unwrap(); }";
        let f = run("crates/proto/src/message.rs", src, &AnalysisConfig::default());
        assert_eq!(rules(&f), vec!["panic::slice-index", "panic::unwrap"]);
        // Test modules inside the crate stay exempt.
        let test_src = "#[cfg(test)] mod tests { fn f(o: Option<u32>) { o.unwrap(); } }";
        assert!(run("crates/proto/src/message.rs", test_src, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn recover_node(o: Option<bool>) -> bool { o.unwrap_or(false) }";
        assert!(run("crates/core/src/engine.rs", src, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn array_types_attrs_and_macros_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\n\
                   fn recover_node(x: [u8; 4]) { let v = vec![1, 2]; let s = S; let _ = (x, v, s); }";
        assert!(run("crates/core/src/engine.rs", src, &AnalysisConfig::default()).is_empty());
    }

    // --- lock hierarchy ---

    #[test]
    fn ascending_acquisition_is_clean() {
        let cfg = AnalysisConfig { lock_manifest: parse_manifest("10 low\n20 high").unwrap() };
        let src = "fn ok() { let a = low.lock(); let b = high.write(); }";
        assert!(run("crates/x/src/l.rs", src, &cfg).is_empty());
    }

    #[test]
    fn path_filters_scope_manifest_entries() {
        let cfg = AnalysisConfig {
            lock_manifest: parse_manifest("10 low crates/a\n20 high crates/a").unwrap(),
        };
        let src = "fn swap() { let a = high.lock(); let b = low.lock(); }";
        assert!(run("crates/b/src/l.rs", src, &cfg).is_empty());
        assert_eq!(rules(&run("crates/a/src/l.rs", src, &cfg)), vec!["lock::order"]);
    }

    #[test]
    fn unmanifested_names_are_ignored() {
        let cfg = AnalysisConfig { lock_manifest: parse_manifest("10 low").unwrap() };
        // `record.read()` is an optimistic read, not a lock acquisition.
        let src = "fn ok() { let a = record.read(); let b = low.lock(); }";
        assert!(run("crates/x/src/l.rs", src, &cfg).is_empty());
    }

    #[test]
    fn duplicate_inversions_report_once_per_pair() {
        let cfg = AnalysisConfig { lock_manifest: parse_manifest("10 low\n20 high").unwrap() };
        let src = "fn swap() { let a = high.lock(); let b = low.lock(); let c = low.lock(); }";
        assert_eq!(rules(&run("crates/x/src/l.rs", src, &cfg)), vec!["lock::order"]);
    }

    #[test]
    fn manifest_parse_errors_are_reported() {
        assert!(parse_manifest("ten low").is_err());
        assert!(parse_manifest("10").is_err());
        assert!(parse_manifest("10 low crates/a extra").is_err());
        assert_eq!(parse_manifest("# comment\n\n10 low # tail\n").unwrap().len(), 1);
    }

    // --- suppressions ---

    #[test]
    fn suppression_silences_own_and_next_line() {
        let src = "fn f() {\n\
                   // star-lint: allow(determinism::instant-now) -- CLI timing only\n\
                   let t = Instant::now();\n}\n";
        let mut out = AnalysisOutput::default();
        analyze_source("crates/net/src/endpoint.rs", src, &AnalysisConfig::default(), &mut out);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressions_used, 1);

        let tail =
            "fn f() {\n    let t = Instant::now(); // star-lint: allow(determinism) -- timing\n}\n";
        let f = run("crates/net/src/endpoint.rs", tail, &AnalysisConfig::default());
        assert!(f.is_empty());
    }

    #[test]
    fn suppression_requires_matching_rule() {
        let src = "fn f() {\n\
                   // star-lint: allow(panic::unwrap) -- wrong family\n\
                   let t = Instant::now();\n}\n";
        let f = run("crates/net/src/endpoint.rs", src, &AnalysisConfig::default());
        assert_eq!(rules(&f), vec!["determinism::instant-now"]);
    }

    #[test]
    fn malformed_suppression_is_a_finding() {
        let src = "fn f() {\n// star-lint: allow(determinism::instant-now)\nlet t = 1;\n}\n";
        let f = run("crates/net/src/endpoint.rs", src, &AnalysisConfig::default());
        assert_eq!(rules(&f), vec!["suppression::malformed"]);
        assert_eq!(f[0].line, 2);
    }
}
