//! Versioned JSON report for a lint run, following the same
//! `format_version`-stamped shape as the chaos harness reports.

use crate::baseline::{json_string, RatchetDiff, FORMAT_VERSION};
use crate::rules::AnalysisOutput;
use std::fmt::Write as _;

/// Renders the full machine-readable report.
pub fn render_json(out: &AnalysisOutput, diff: &RatchetDiff) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"format_version\": {FORMAT_VERSION},");
    let _ = writeln!(s, "  \"files_scanned\": {},", out.files_scanned);
    let _ = writeln!(s, "  \"suppressions_used\": {},", out.suppressions_used);
    let _ = writeln!(s, "  \"findings\": [");
    for (i, f) in out.findings.iter().enumerate() {
        let comma = if i + 1 < out.findings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"rule\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \"message\": {} }}{comma}",
            json_string(&f.rule),
            json_string(&f.path),
            f.line,
            f.column,
            json_string(&f.message)
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"ratchet\": {{");
    let _ = write_deltas(&mut s, "regressions", &diff.regressions, true);
    let _ = write_deltas(&mut s, "improvements", &diff.improvements, false);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn write_deltas(
    s: &mut String,
    key: &str,
    deltas: &[crate::baseline::Delta],
    trailing_comma: bool,
) -> std::fmt::Result {
    writeln!(s, "    \"{key}\": [")?;
    for (i, d) in deltas.iter().enumerate() {
        let comma = if i + 1 < deltas.len() { "," } else { "" };
        writeln!(
            s,
            "      {{ \"rule\": {}, \"path\": {}, \"baseline\": {}, \"current\": {} }}{comma}",
            json_string(&d.rule),
            json_string(&d.path),
            d.baseline,
            d.current
        )?;
    }
    writeln!(s, "    ]{}", if trailing_comma { "," } else { "" })?;
    Ok(())
}

/// Renders the human-readable summary printed to stdout.
pub fn render_human(out: &AnalysisOutput, diff: &RatchetDiff) -> String {
    let mut s = String::new();
    for f in &out.findings {
        let _ = writeln!(s, "{}:{}:{}: [{}] {}", f.path, f.line, f.column, f.rule, f.message);
    }
    let _ = writeln!(
        s,
        "star-lint: {} file(s) scanned, {} finding(s), {} suppression(s) used",
        out.files_scanned,
        out.findings.len(),
        out.suppressions_used
    );
    for d in &diff.regressions {
        let _ = writeln!(
            s,
            "RATCHET REGRESSION: {} in {} ({} -> {} findings)",
            d.rule, d.path, d.baseline, d.current
        );
    }
    for d in &diff.improvements {
        let _ = writeln!(
            s,
            "ratchet improvement: {} in {} ({} -> {}); rerun with --write-baseline to lock it in",
            d.rule, d.path, d.baseline, d.current
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Baseline, JsonValue};
    use crate::rules::Finding;

    #[test]
    fn report_json_is_parseable_and_versioned() {
        let out = AnalysisOutput {
            findings: vec![Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                column: 7,
                rule: "determinism::instant-now".into(),
                message: "a \"quoted\" message".into(),
            }],
            files_scanned: 2,
            suppressions_used: 1,
        };
        let diff = Baseline::default().diff(&out.findings);
        let json = render_json(&out, &diff);
        let v = JsonValue::parse(&json).expect("report must be valid JSON");
        let obj = v.as_object().unwrap();
        assert_eq!(obj["format_version"].as_u64(), Some(u64::from(FORMAT_VERSION)));
        assert_eq!(obj["findings"].as_array().unwrap().len(), 1);
        let ratchet = obj["ratchet"].as_object().unwrap();
        assert_eq!(ratchet["regressions"].as_array().unwrap().len(), 1);
    }
}
