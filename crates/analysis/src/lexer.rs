//! A minimal token-level lexer for Rust source.
//!
//! The workspace is offline-vendored, so a real parser (`syn`) is not an
//! option; the lints in this crate only need a faithful token stream with
//! source positions, plus the comments (for suppression annotations). The
//! lexer therefore handles exactly the places where naive text matching goes
//! wrong — string/char/byte literals, raw strings, lifetimes vs char
//! literals, nested block comments — and leaves everything else as single
//! punctuation tokens.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Instant`, `unwrap`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any literal: number, string, raw string, byte string, or char.
    Literal,
    /// A single punctuation character. Multi-character operators appear as
    /// consecutive punct tokens (`::` is `:` then `:`), which is all the
    /// pattern matching in the lints needs.
    Punct(char),
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier text; empty for literals and puncts.
    pub text: String,
    pub line: u32,
    pub column: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment (line or block) with the line it starts on. The text includes
/// the comment delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// literals simply consume to end of input, which is fine for a linter that
/// only runs on code the compiler already accepted.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor { chars: source.chars().collect(), pos: 0, line: 1, column: 1 };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, column) = (cur.line, cur.column);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(n), _) => {
                        text.push(n);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        // Raw strings and byte strings: r"..", r#".."#, b"..", br"..", b'..'.
        if c == 'r' || c == 'b' {
            let (skip, raw, quote) = match (c, cur.peek(1), cur.peek(2)) {
                ('r', Some('"'), _) => (1, true, '"'),
                ('r', Some('#'), _) if raw_string_follows(&cur, 1) => (1, true, '"'),
                ('b', Some('"'), _) => (1, false, '"'),
                ('b', Some('\''), _) => (1, false, '\''),
                ('b', Some('r'), Some('"')) => (2, true, '"'),
                ('b', Some('r'), Some('#')) if raw_string_follows(&cur, 2) => (2, true, '"'),
                _ => (0, false, '"'),
            };
            if skip > 0 {
                for _ in 0..skip {
                    cur.bump();
                }
                if raw {
                    lex_raw_string(&mut cur);
                } else {
                    lex_quoted(&mut cur, quote);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                    column,
                });
                continue;
            }
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.tokens.push(Token { kind: TokenKind::Ident, text, line, column });
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur);
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line, column });
            continue;
        }
        if c == '"' {
            lex_quoted(&mut cur, '"');
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line, column });
            continue;
        }
        if c == '\'' {
            let kind = lex_tick(&mut cur);
            out.tokens.push(Token { kind, text: String::new(), line, column });
            continue;
        }
        cur.bump();
        out.tokens.push(Token { kind: TokenKind::Punct(c), text: String::new(), line, column });
    }
    out
}

/// After an `r` at offset `from - 1`, checks whether `#...#"` follows (a raw
/// string with at least one hash), as opposed to a raw identifier `r#ident`.
fn raw_string_follows(cur: &Cursor, from: usize) -> bool {
    let mut i = from;
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    i > from && cur.peek(i) == Some('"')
}

/// Consumes a raw string starting at `#`* `"` up to the matching `"` `#`*.
fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Consumes a quoted literal (string or byte-char) including escapes; the
/// cursor is positioned at the opening quote.
fn lex_quoted(cur: &mut Cursor, quote: char) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == quote {
            break;
        }
    }
}

/// Consumes a number literal: digits, underscores, type suffixes, and a
/// fractional part when followed by a digit (so `0..n` stays two tokens).
fn lex_number(cur: &mut Cursor) {
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) || (c == '.' && cur.peek(1).is_some_and(|n| n.is_ascii_digit())) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Disambiguates `'` between a lifetime (`'a`) and a char literal (`'a'`,
/// `'\n'`, `'🦀'`). The cursor is positioned at the tick.
fn lex_tick(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the tick
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume the backslash and the escaped
            // character unconditionally (so `'\''` and `'\\'` close
            // correctly), then everything up to the closing tick (covers
            // `'\u{7f}'`).
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            TokenKind::Literal
        }
        Some(c) if is_ident_start(c) => {
            // Could be a lifetime (`'a`) or a char (`'a'`). Scan the ident
            // run; a closing tick right after makes it a char literal.
            let mut i = 1;
            while cur.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if cur.peek(i) == Some('\'') {
                for _ in 0..=i {
                    cur.bump();
                }
                TokenKind::Literal
            } else {
                for _ in 0..i {
                    cur.bump();
                }
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // `'('`-style char literal of a single non-ident char.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Literal
        }
        None => TokenKind::Literal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("let x = Instant::now();");
        let texts: Vec<_> = l.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert_eq!(
            texts,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct('='), ""),
                (TokenKind::Ident, "Instant"),
                (TokenKind::Punct(':'), ""),
                (TokenKind::Punct(':'), ""),
                (TokenKind::Ident, "now"),
                (TokenKind::Punct('('), ""),
                (TokenKind::Punct(')'), ""),
                (TokenKind::Punct(';'), ""),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "Instant::now() unwrap";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"HashMap "quoted""#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let b = b"panic!";"#), vec!["let", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars = l.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let a = 1;\n// star-lint: allow(x) -- reason\nlet b = 2; // tail\n");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("star-lint"));
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* /* */ unwrap */ ident"), vec!["ident"]);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].column), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].column), (2, 3));
    }

    #[test]
    fn number_ranges_stay_split() {
        let l = lex("0..n");
        let puncts = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(puncts, 2);
    }
}
