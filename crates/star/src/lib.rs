//! # STAR — Scaling Transactions through Asymmetric Replication
//!
//! A from-scratch Rust reproduction of *STAR: Scaling Transactions through
//! Asymmetric Replication* (Lu, Yu, Madden — VLDB 2019). This facade crate
//! re-exports the whole workspace behind one dependency:
//!
//! * [`core`](star_core) — the STAR engine: phase-switching execution over
//!   asymmetric replication, the analytical model, failure handling.
//! * [`baselines`](star_baselines) — the evaluation's comparison systems:
//!   PB. OCC, Dist. OCC, Dist. S2PL and Calvin.
//! * [`chaos`](star_chaos) — the deterministic chaos harness: seeded fault
//!   injection over the simulated cluster plus an offline serializability
//!   checker (`star-chaos` binary).
//! * [`workloads`](star_workloads) — YCSB and TPC-C (NewOrder + Payment).
//! * [`storage`](star_storage), [`occ`](star_occ),
//!   [`replication`](star_replication), [`net`](star_net),
//!   [`common`](star_common) — the substrates everything is built on.
//!
//! ## Quickstart
//!
//! ```
//! use star::prelude::*;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // A 4-node cluster: 1 full replica + 3 partial replicas.
//! let config = ClusterConfig::builder()
//!     .nodes(4)
//!     .partitions(8)
//!     .iteration(Duration::from_millis(5))
//!     .build()
//!     .unwrap();
//!
//! // YCSB with 10% cross-partition transactions, scaled down for the doctest.
//! let workload = Arc::new(YcsbWorkload::new(YcsbConfig {
//!     partitions: 8,
//!     rows_per_partition: 200,
//!     cross_partition_fraction: 0.10,
//!     ..Default::default()
//! }));
//!
//! let mut engine = StarEngine::new(config, workload).unwrap();
//! let report = engine.run_for(Duration::from_millis(25));
//! assert!(report.counters.committed > 0);
//! engine.verify_replica_consistency().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use star_baselines as baselines;
pub use star_chaos as chaos;
pub use star_common as common;
pub use star_core as core;
pub use star_net as net;
pub use star_occ as occ;
pub use star_replication as replication;
pub use star_storage as storage;
pub use star_workloads as workloads;

/// The most commonly used types, re-exported for `use star::prelude::*`.
pub mod prelude {
    pub use star_baselines::{BaselineConfig, Calvin, CalvinConfig, DistOcc, DistS2pl, PbOcc};
    pub use star_common::stats::{
        CounterSnapshot, LatencyHistogram, PhaseBreakdown, RunReport, BREAKDOWN_VERSION,
    };
    pub use star_common::{
        ClusterConfig, ClusterConfigBuilder, EngineKind, Epoch, Error, FieldValue, Operation,
        ReplicationMode, ReplicationStrategy, Result, Row, Tid,
    };
    pub use star_core::{
        AnalyticalModel, CommittedTxn, Engine, FailureCase, FailureVectorMismatch, HistoryRecorder,
        PhasePlan, StarCluster, StarEngine, Workload, WorkloadMix,
    };
    pub use star_net::LinkFaults;
    pub use star_occ::{Procedure, TxnCtx};
    pub use star_replication::DrainMode;
    pub use star_storage::{Database, DatabaseBuilder, TableSpec};
    pub use star_workloads::{TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload};
}
