//! Construction of a simulated STAR cluster: replicas + network.

use crate::messages::ReplicationBatch;
use crate::workload::Workload;
use star_common::{ClusterConfig, Error, NodeId, PartitionId, Result};
use star_net::{Endpoint, NetworkConfig, SimNetwork};
use star_storage::{Database, DatabaseBuilder};
use std::sync::Arc;

/// One node of the simulated cluster.
pub struct ClusterNode {
    /// Node id.
    pub id: NodeId,
    /// This node's replica of the database (full or partial).
    pub db: Arc<Database>,
    /// This node's endpoint on the simulated network.
    pub endpoint: Arc<Endpoint<ReplicationBatch>>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("id", &self.id)
            .field("full_replica", &self.db.is_full_replica())
            .field("held_partitions", &self.db.held_partitions().len())
            .finish()
    }
}

/// A simulated STAR cluster: `f` full replicas, `k` partial replicas, and the
/// network connecting them.
pub struct StarCluster {
    config: ClusterConfig,
    nodes: Vec<ClusterNode>,
    network: SimNetwork,
}

impl std::fmt::Debug for StarCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarCluster")
            .field("nodes", &self.nodes.len())
            .field("config", &self.config)
            .finish()
    }
}

impl StarCluster {
    /// Builds the cluster for a workload: creates every replica with the
    /// workload's catalog, assigns partitions per the configuration's layout
    /// (Figure 2) and loads the initial data into every replica that holds
    /// each partition.
    pub fn build(config: &ClusterConfig, workload: &dyn Workload) -> Result<Self> {
        config.validate().map_err(Error::Config)?;
        if workload.num_partitions() != config.partitions {
            return Err(Error::Config(format!(
                "workload has {} partitions but the cluster is configured for {}",
                workload.num_partitions(),
                config.partitions
            )));
        }
        let net_config = NetworkConfig::with_latency(config.network_latency);
        let (network, endpoints) =
            SimNetwork::new::<ReplicationBatch>(config.num_nodes, net_config);

        let mut nodes = Vec::with_capacity(config.num_nodes);
        for (id, endpoint) in endpoints.into_iter().enumerate() {
            let mut builder = DatabaseBuilder::new(config.partitions);
            for spec in workload.catalog() {
                builder = builder.table(spec);
            }
            if !config.is_full_replica(id) {
                let held: Vec<PartitionId> = (0..config.partitions)
                    .filter(|p| {
                        config.partition_primary(*p) == id
                            || config.partition_secondary(*p) == Some(id)
                    })
                    .collect();
                builder = builder.holding(held);
            }
            let db = Arc::new(builder.build());
            for p in db.held_partitions() {
                workload.load_partition(&db, p);
            }
            nodes.push(ClusterNode { id, db, endpoint: Arc::new(endpoint) });
        }
        Ok(StarCluster { config: config.clone(), nodes, network })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> Option<&ClusterNode> {
        self.nodes.get(id)
    }

    /// The designated master node (first full replica), when the configured
    /// master id names an existing node.
    pub fn master(&self) -> Option<&ClusterNode> {
        self.nodes.get(self.config.master_node())
    }

    /// The simulated network (failure injection, traffic statistics).
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// Nodes (other than `from`) that must receive the writes of a committed
    /// transaction touching `partition`: every full replica plus the
    /// partition's primary and secondary.
    pub fn replica_targets(&self, from: NodeId, partition: PartitionId) -> Vec<NodeId> {
        (0..self.config.num_nodes)
            .filter(|&n| n != from && self.config.node_stores_partition(n, partition))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{kv_key, KvWorkload};

    #[test]
    fn build_assigns_full_and_partial_replicas() {
        let config = ClusterConfig { partitions: 8, ..ClusterConfig::with_nodes(4) };
        let wl =
            KvWorkload { partitions: 8, rows_per_partition: 10, cross_partition_fraction: 0.1 };
        let cluster = StarCluster::build(&config, &wl).unwrap();
        assert_eq!(cluster.nodes().len(), 4);
        assert!(cluster.node(0).unwrap().db.is_full_replica());
        for id in 1..4 {
            assert!(!cluster.node(id).unwrap().db.is_full_replica());
        }
        // Every replica holds loaded data for each partition it stores.
        for node in cluster.nodes() {
            for p in node.db.held_partitions() {
                assert!(node.db.get(0, p, kv_key(p, 0)).is_ok());
            }
        }
        assert_eq!(cluster.master().unwrap().id, 0);
    }

    #[test]
    fn partition_count_mismatch_is_rejected() {
        let config = ClusterConfig { partitions: 8, ..ClusterConfig::with_nodes(4) };
        let wl = KvWorkload::new(4);
        assert!(matches!(StarCluster::build(&config, &wl), Err(Error::Config(_))));
    }

    #[test]
    fn replica_targets_cover_full_replicas_and_secondary() {
        let config = ClusterConfig { partitions: 8, ..ClusterConfig::with_nodes(4) };
        let wl = KvWorkload::new(8);
        let cluster = StarCluster::build(&config, &wl).unwrap();
        // Partition 1 is primary on partial node 1; at the default
        // replication factor of 2 its only other copy is the full replica.
        let targets = cluster.replica_targets(1, 1);
        assert_eq!(targets, vec![0]);
        // From the master (node 0), the same partition's target is node 1.
        let targets = cluster.replica_targets(0, 1);
        assert_eq!(targets, vec![1]);
        // Partition 0 is mastered *on* the full replica, so it must get a
        // partial secondary — the partial replicas together hold a full copy.
        let targets = cluster.replica_targets(0, 0);
        assert_eq!(targets, vec![1]);
        // A replication factor of 3 brings back the partial-partial backup.
        let config = config.to_builder().replication_factor(3).build().unwrap();
        let cluster = StarCluster::build(&config, &wl).unwrap();
        assert_eq!(cluster.replica_targets(1, 1), vec![0, 2]);
    }

    #[test]
    fn writes_are_replicated_at_least_f_plus_one_times() {
        // Paper invariant: writes of committed transactions are replicated at
        // least f+1 times on a cluster of f+k nodes.
        let config = ClusterConfig { partitions: 8, ..ClusterConfig::with_nodes(4) };
        let wl = KvWorkload::new(8);
        let cluster = StarCluster::build(&config, &wl).unwrap();
        for p in 0..8 {
            let holders = (0..4).filter(|&n| cluster.config().node_stores_partition(n, p)).count();
            assert!(holders > cluster.config().full_replicas);
        }
    }
}
