//! The unified engine API.
//!
//! Every transaction engine in the workspace — [`StarEngine`](crate::engine)
//! and the four evaluation baselines in `star-baselines` — implements the
//! [`Engine`] trait. Harness code (the benchmark suite, the chaos
//! serializability checks, the examples) drives engines exclusively through
//! this trait, so adding an engine means implementing one trait instead of
//! teaching every harness a new concrete type.
//!
//! The single typed result of a run is [`RunReport`]: throughput, the
//! counter window, the commit-latency histogram and the five-slice
//! latency-source [`PhaseBreakdown`](star_common::stats::PhaseBreakdown)
//! (execution, fence wait, replication flush, WAL fsync, lock/validate).

use crate::history::HistoryRecorder;
use star_common::stats::{RunCounters, RunReport};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A benchmarkable transaction engine.
///
/// The trait is object-safe: harnesses hold `Box<dyn Engine>` and treat all
/// five engines uniformly.
pub trait Engine: Send {
    /// The engine's display label (e.g. `"STAR"`, `"Dist. OCC"`,
    /// `"Calvin-2"`). Matches the `engine` field of the reports it produces.
    fn name(&self) -> String;

    /// Runs the engine for (at least) `duration` and returns the typed
    /// report for that window.
    fn run_for(&mut self, duration: Duration) -> RunReport;

    /// The engine's shared lifetime counters (cumulative across runs).
    fn counters(&self) -> &RunCounters;

    /// The report of the most recent [`run_for`](Engine::run_for) window, or
    /// — if the engine has never run — a zero-duration report over the
    /// cumulative counters (zero throughput, empty latency histogram).
    fn report(&self) -> RunReport;

    /// Attaches a committed-history recorder consumed by the offline
    /// serializability checker.
    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>);

    /// Paths of the engine's write-ahead-log files, if it keeps any. The
    /// default is an empty vector: the baselines model durability through
    /// replication only.
    fn wal_paths(&self) -> Vec<PathBuf> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StarEngine;
    use crate::testing::KvWorkload;
    use star_common::ClusterConfig;

    #[test]
    fn star_engine_is_usable_through_the_trait_object() {
        let config = ClusterConfig::builder()
            .nodes(2)
            .partitions(4)
            .iteration(Duration::from_millis(2))
            .build()
            .unwrap();
        let workload = Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 16,
            cross_partition_fraction: 0.1,
        });
        let mut engine: Box<dyn Engine> = Box::new(StarEngine::new(config, workload).unwrap());
        assert_eq!(engine.name(), "STAR");
        // Before any run, report() is a zero-duration counter snapshot.
        let empty = engine.report();
        assert_eq!(empty.duration, Duration::ZERO);
        assert_eq!(empty.counters.committed, 0);
        let report = engine.run_for(Duration::from_millis(10));
        assert!(report.counters.committed > 0);
        // report() replays the last window's typed result.
        let replay = engine.report();
        assert_eq!(replay.counters.committed, report.counters.committed);
        assert_eq!(replay.engine, "STAR");
        assert!(engine.counters().committed.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert!(engine.wal_paths().is_empty(), "disk logging is off");
    }
}
