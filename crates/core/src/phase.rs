//! Phase-switching plan: splitting the iteration time between the
//! partitioned and single-master phases.
//!
//! Equations (1) and (2) of the paper:
//!
//! ```text
//! τp + τs = e
//! τs·ts / (τp·tp + τs·ts) = P
//! ```
//!
//! where `tp` and `ts` are the measured throughputs of the two phases and `P`
//! is the cross-partition fraction of the workload. Solving for `τp`, `τs`
//! gives the per-iteration time budget; the engine re-solves each iteration
//! with exponentially smoothed throughput estimates, so the split adapts
//! online as the workload changes (the "adaptivity" the evaluation
//! highlights).

use std::time::Duration;

/// Planner that tracks phase throughputs and computes the `τp` / `τs` split.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Smoothed partitioned-phase throughput (txns/sec).
    tp: f64,
    /// Smoothed single-master-phase throughput (txns/sec).
    ts: f64,
    /// Cross-partition fraction of the workload, `P ∈ [0, 1]`.
    cross_partition_fraction: f64,
    /// Exponential smoothing factor for throughput updates.
    alpha: f64,
}

impl PhasePlan {
    /// Creates a planner for a workload with the given cross-partition
    /// fraction. Until both phases have been observed at least once the
    /// planner falls back to splitting the iteration proportionally to `P`.
    pub fn new(cross_partition_fraction: f64) -> Self {
        PhasePlan {
            tp: 0.0,
            ts: 0.0,
            cross_partition_fraction: cross_partition_fraction.clamp(0.0, 1.0),
            alpha: 0.5,
        }
    }

    /// The cross-partition fraction the plan is targeting.
    pub fn cross_partition_fraction(&self) -> f64 {
        self.cross_partition_fraction
    }

    /// Updates the target cross-partition fraction (workload shift).
    pub fn set_cross_partition_fraction(&mut self, p: f64) {
        self.cross_partition_fraction = p.clamp(0.0, 1.0);
    }

    /// Records an observation of the partitioned phase: `committed`
    /// transactions over `elapsed`.
    pub fn observe_partitioned(&mut self, committed: u64, elapsed: Duration) {
        if elapsed.is_zero() {
            return;
        }
        let rate = committed as f64 / elapsed.as_secs_f64();
        self.tp =
            if self.tp == 0.0 { rate } else { self.alpha * rate + (1.0 - self.alpha) * self.tp };
    }

    /// Records an observation of the single-master phase.
    pub fn observe_single_master(&mut self, committed: u64, elapsed: Duration) {
        if elapsed.is_zero() {
            return;
        }
        let rate = committed as f64 / elapsed.as_secs_f64();
        self.ts =
            if self.ts == 0.0 { rate } else { self.alpha * rate + (1.0 - self.alpha) * self.ts };
    }

    /// Current smoothed throughput estimates `(tp, ts)`.
    pub fn estimates(&self) -> (f64, f64) {
        (self.tp, self.ts)
    }

    /// Splits an iteration time `e` into `(τp, τs)` per Equations (1)–(2).
    ///
    /// Special cases follow the paper: with `P = 0` the whole iteration is
    /// spent in the partitioned phase (`ts` is not even defined); with
    /// `P = 1` the whole iteration is the single-master phase. Before any
    /// throughput has been observed the split defaults to `τs = P·e`.
    pub fn split(&self, e: Duration) -> (Duration, Duration) {
        let p = self.cross_partition_fraction;
        if p <= 0.0 {
            return (e, Duration::ZERO);
        }
        if p >= 1.0 {
            return (Duration::ZERO, e);
        }
        let fraction_s = if self.tp > 0.0 && self.ts > 0.0 {
            // From τs·ts / (τp·tp + τs·ts) = P with τp = e - τs:
            //   τs = P·tp·e / (ts - P·ts + P·tp)
            let denominator = self.ts - p * self.ts + p * self.tp;
            if denominator <= 0.0 {
                p
            } else {
                (p * self.tp / denominator).clamp(0.0, 1.0)
            }
        } else {
            p
        };
        let tau_s = e.mul_f64(fraction_s);
        let tau_p = e.saturating_sub(tau_s);
        (tau_p, tau_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: Duration = Duration::from_millis(10);

    #[test]
    fn pure_single_partition_workload_spends_everything_in_partitioned_phase() {
        let plan = PhasePlan::new(0.0);
        assert_eq!(plan.split(E), (E, Duration::ZERO));
    }

    #[test]
    fn pure_cross_partition_workload_spends_everything_in_single_master_phase() {
        let plan = PhasePlan::new(1.0);
        assert_eq!(plan.split(E), (Duration::ZERO, E));
    }

    #[test]
    fn default_split_is_proportional_to_p() {
        let plan = PhasePlan::new(0.3);
        let (tau_p, tau_s) = plan.split(E);
        assert_eq!(tau_s, E.mul_f64(0.3));
        assert_eq!(tau_p + tau_s, E);
    }

    #[test]
    fn split_solves_the_papers_equations() {
        let mut plan = PhasePlan::new(0.10);
        // Partitioned phase is 4x faster than the single-master phase.
        plan.observe_partitioned(4_000, Duration::from_millis(10));
        plan.observe_single_master(1_000, Duration::from_millis(10));
        let (tau_p, tau_s) = plan.split(E);
        assert_eq!(tau_p + tau_s, E);
        // Verify Eq. (2): τs·ts / (τp·tp + τs·ts) = P.
        let (tp, ts) = plan.estimates();
        let lhs = tau_s.as_secs_f64() * ts / (tau_p.as_secs_f64() * tp + tau_s.as_secs_f64() * ts);
        assert!((lhs - 0.10).abs() < 1e-6, "lhs={lhs}");
        // The single-master phase is slower per transaction, so satisfying a
        // 10% share of commits needs more than 10% of the wall-clock time.
        assert!(tau_s > E.mul_f64(0.10));
    }

    #[test]
    fn throughput_observations_are_smoothed() {
        let mut plan = PhasePlan::new(0.5);
        plan.observe_partitioned(1_000, Duration::from_millis(10));
        let (tp1, _) = plan.estimates();
        plan.observe_partitioned(3_000, Duration::from_millis(10));
        let (tp2, _) = plan.estimates();
        assert!(tp2 > tp1);
        assert!(tp2 < 300_000.0, "smoothing should damp the jump");
        // Zero-duration observations are ignored.
        plan.observe_partitioned(1, Duration::ZERO);
        assert_eq!(plan.estimates().0, tp2);
    }

    #[test]
    fn fraction_updates_take_effect() {
        let mut plan = PhasePlan::new(0.0);
        assert_eq!(plan.split(E).1, Duration::ZERO);
        plan.set_cross_partition_fraction(1.0);
        assert_eq!(plan.split(E).0, Duration::ZERO);
        assert_eq!(plan.cross_partition_fraction(), 1.0);
    }
}
