//! Phase-switching plan: splitting the iteration time between the
//! partitioned and single-master phases.
//!
//! Equations (1) and (2) of the paper:
//!
//! ```text
//! τp + τs = e
//! τs·ts / (τp·tp + τs·ts) = P
//! ```
//!
//! where `tp` and `ts` are the measured throughputs of the two phases and `P`
//! is the cross-partition fraction of the workload. Solving for `τp`, `τs`
//! gives the per-iteration time budget; the engine re-solves each iteration
//! with exponentially smoothed throughput estimates, so the split adapts
//! online as the workload changes (the "adaptivity" the evaluation
//! highlights).

use std::time::Duration;

/// Smallest fraction of the configured iteration the adaptive controller
/// will shrink to. Group-commit latency is bounded by the iteration time, so
/// at low cross-partition ratios — where fences are cheap because almost all
/// replication drains asynchronously — shortening iterations buys latency
/// almost for free.
const ADAPTIVE_MIN_SCALE: f64 = 0.25;

/// Observed cross-partition share at (or above) which the full configured
/// iteration is used. Below it the iteration shrinks linearly towards
/// [`ADAPTIVE_MIN_SCALE`].
const ADAPTIVE_FULL_AT: f64 = 0.20;

/// Hard floor for the adaptive iteration (fence overhead must stay
/// amortized), unless the configured iteration is itself shorter.
const ADAPTIVE_FLOOR: Duration = Duration::from_millis(2);

/// Planner that tracks phase throughputs and computes the `τp` / `τs` split.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Smoothed partitioned-phase throughput (txns/sec).
    tp: f64,
    /// Smoothed single-master-phase throughput (txns/sec).
    ts: f64,
    /// Cross-partition fraction of the workload, `P ∈ [0, 1]`.
    cross_partition_fraction: f64,
    /// Smoothed observed share of commits served by the single-master phase
    /// (`None` until the first iteration with any commits completes).
    observed_cross: Option<f64>,
    /// Exponential smoothing factor for throughput updates.
    alpha: f64,
}

impl PhasePlan {
    /// Creates a planner for a workload with the given cross-partition
    /// fraction. Until both phases have been observed at least once the
    /// planner falls back to splitting the iteration proportionally to `P`.
    pub fn new(cross_partition_fraction: f64) -> Self {
        PhasePlan {
            tp: 0.0,
            ts: 0.0,
            cross_partition_fraction: cross_partition_fraction.clamp(0.0, 1.0),
            observed_cross: None,
            alpha: 0.5,
        }
    }

    /// The cross-partition fraction the plan is targeting.
    pub fn cross_partition_fraction(&self) -> f64 {
        self.cross_partition_fraction
    }

    /// Updates the target cross-partition fraction (workload shift).
    pub fn set_cross_partition_fraction(&mut self, p: f64) {
        self.cross_partition_fraction = p.clamp(0.0, 1.0);
    }

    /// Records an observation of the partitioned phase: `committed`
    /// transactions over `elapsed`.
    pub fn observe_partitioned(&mut self, committed: u64, elapsed: Duration) {
        if elapsed.is_zero() {
            return;
        }
        let rate = committed as f64 / elapsed.as_secs_f64();
        self.tp =
            if self.tp == 0.0 { rate } else { self.alpha * rate + (1.0 - self.alpha) * self.tp };
    }

    /// Records an observation of the single-master phase.
    pub fn observe_single_master(&mut self, committed: u64, elapsed: Duration) {
        if elapsed.is_zero() {
            return;
        }
        let rate = committed as f64 / elapsed.as_secs_f64();
        self.ts =
            if self.ts == 0.0 { rate } else { self.alpha * rate + (1.0 - self.alpha) * self.ts };
    }

    /// Current smoothed throughput estimates `(tp, ts)`.
    pub fn estimates(&self) -> (f64, f64) {
        (self.tp, self.ts)
    }

    /// Records the commit mix of one full iteration: how many transactions
    /// each phase committed. Feeds the adaptive iteration-length controller
    /// with the *observed* cross-partition share, which can differ from the
    /// configured fraction when the workload shifts at runtime.
    pub fn observe_mix(&mut self, partitioned_commits: u64, single_master_commits: u64) {
        let total = partitioned_commits + single_master_commits;
        if total == 0 {
            return;
        }
        let share = single_master_commits as f64 / total as f64;
        self.observed_cross = Some(match self.observed_cross {
            None => share,
            Some(prev) => self.alpha * share + (1.0 - self.alpha) * prev,
        });
    }

    /// The smoothed observed cross-partition share, falling back to the
    /// configured fraction before any iteration has completed.
    pub fn observed_cross_fraction(&self) -> f64 {
        self.observed_cross.unwrap_or(self.cross_partition_fraction)
    }

    /// Effective iteration length for the next epoch given the `configured`
    /// one. Group commit releases clients at the fence, so p50 latency is
    /// roughly half the iteration; when the observed cross-partition share is
    /// low the fence is almost free (nearly all replication drains
    /// asynchronously behind it) and shrinking the iteration converts that
    /// slack directly into lower latency. Above [`ADAPTIVE_FULL_AT`] the full
    /// configured length is kept so the single-master phase stays amortized.
    pub fn adaptive_iteration(&self, configured: Duration) -> Duration {
        let observed = self.observed_cross_fraction().clamp(0.0, 1.0);
        let scale = if observed >= ADAPTIVE_FULL_AT {
            1.0
        } else {
            ADAPTIVE_MIN_SCALE + (1.0 - ADAPTIVE_MIN_SCALE) * (observed / ADAPTIVE_FULL_AT)
        };
        let shrunk = configured.mul_f64(scale);
        shrunk.max(ADAPTIVE_FLOOR.min(configured))
    }

    /// Splits an iteration time `e` into `(τp, τs)` per Equations (1)–(2).
    ///
    /// Special cases follow the paper: with `P = 0` the whole iteration is
    /// spent in the partitioned phase (`ts` is not even defined); with
    /// `P = 1` the whole iteration is the single-master phase. Before any
    /// throughput has been observed the split defaults to `τs = P·e`.
    pub fn split(&self, e: Duration) -> (Duration, Duration) {
        let p = self.cross_partition_fraction;
        if p <= 0.0 {
            return (e, Duration::ZERO);
        }
        if p >= 1.0 {
            return (Duration::ZERO, e);
        }
        let fraction_s = if self.tp > 0.0 && self.ts > 0.0 {
            // From τs·ts / (τp·tp + τs·ts) = P with τp = e - τs:
            //   τs = P·tp·e / (ts - P·ts + P·tp)
            let denominator = self.ts - p * self.ts + p * self.tp;
            if denominator <= 0.0 {
                p
            } else {
                (p * self.tp / denominator).clamp(0.0, 1.0)
            }
        } else {
            p
        };
        let tau_s = e.mul_f64(fraction_s);
        let tau_p = e.saturating_sub(tau_s);
        (tau_p, tau_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: Duration = Duration::from_millis(10);

    #[test]
    fn pure_single_partition_workload_spends_everything_in_partitioned_phase() {
        let plan = PhasePlan::new(0.0);
        assert_eq!(plan.split(E), (E, Duration::ZERO));
    }

    #[test]
    fn pure_cross_partition_workload_spends_everything_in_single_master_phase() {
        let plan = PhasePlan::new(1.0);
        assert_eq!(plan.split(E), (Duration::ZERO, E));
    }

    #[test]
    fn default_split_is_proportional_to_p() {
        let plan = PhasePlan::new(0.3);
        let (tau_p, tau_s) = plan.split(E);
        assert_eq!(tau_s, E.mul_f64(0.3));
        assert_eq!(tau_p + tau_s, E);
    }

    #[test]
    fn split_solves_the_papers_equations() {
        let mut plan = PhasePlan::new(0.10);
        // Partitioned phase is 4x faster than the single-master phase.
        plan.observe_partitioned(4_000, Duration::from_millis(10));
        plan.observe_single_master(1_000, Duration::from_millis(10));
        let (tau_p, tau_s) = plan.split(E);
        assert_eq!(tau_p + tau_s, E);
        // Verify Eq. (2): τs·ts / (τp·tp + τs·ts) = P.
        let (tp, ts) = plan.estimates();
        let lhs = tau_s.as_secs_f64() * ts / (tau_p.as_secs_f64() * tp + tau_s.as_secs_f64() * ts);
        assert!((lhs - 0.10).abs() < 1e-6, "lhs={lhs}");
        // The single-master phase is slower per transaction, so satisfying a
        // 10% share of commits needs more than 10% of the wall-clock time.
        assert!(tau_s > E.mul_f64(0.10));
    }

    #[test]
    fn throughput_observations_are_smoothed() {
        let mut plan = PhasePlan::new(0.5);
        plan.observe_partitioned(1_000, Duration::from_millis(10));
        let (tp1, _) = plan.estimates();
        plan.observe_partitioned(3_000, Duration::from_millis(10));
        let (tp2, _) = plan.estimates();
        assert!(tp2 > tp1);
        assert!(tp2 < 300_000.0, "smoothing should damp the jump");
        // Zero-duration observations are ignored.
        plan.observe_partitioned(1, Duration::ZERO);
        assert_eq!(plan.estimates().0, tp2);
    }

    #[test]
    fn fraction_updates_take_effect() {
        let mut plan = PhasePlan::new(0.0);
        assert_eq!(plan.split(E).1, Duration::ZERO);
        plan.set_cross_partition_fraction(1.0);
        assert_eq!(plan.split(E).0, Duration::ZERO);
        assert_eq!(plan.cross_partition_fraction(), 1.0);
    }

    #[test]
    fn adaptive_iteration_shrinks_at_low_observed_cross_and_holds_at_high() {
        let base = Duration::from_millis(10);
        let mut plan = PhasePlan::new(0.0);
        // Before any observation the configured fraction is the prior.
        assert_eq!(plan.adaptive_iteration(base), base.mul_f64(0.25));
        // A pure single-partition mix keeps the quarter-length iteration.
        plan.observe_mix(1_000, 0);
        assert_eq!(plan.observed_cross_fraction(), 0.0);
        assert_eq!(plan.adaptive_iteration(base), base.mul_f64(0.25));
        // A heavily cross-partition mix restores the full iteration (the
        // smoothed share needs a couple of iterations to cross 20%).
        plan.observe_mix(0, 1_000);
        plan.observe_mix(0, 1_000);
        assert!(plan.observed_cross_fraction() > 0.20);
        assert_eq!(plan.adaptive_iteration(base), base);
        // The floor never stretches an iteration that is already short.
        let tiny = Duration::from_micros(500);
        let plan = PhasePlan::new(0.0);
        assert_eq!(plan.adaptive_iteration(tiny), tiny);
        // Empty iterations do not disturb the estimate.
        let mut plan = PhasePlan::new(0.5);
        plan.observe_mix(0, 0);
        assert_eq!(plan.observed_cross_fraction(), 0.5);
    }

    // Seeded property-style tests: random plans drawn from a fixed-seed RNG,
    // so every failure reproduces deterministically.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Draws a plan with random throughput observations and cross-partition
    /// fraction from `rng`.
    fn arbitrary_plan(rng: &mut StdRng) -> PhasePlan {
        let mut plan = PhasePlan::new(rng.gen::<f64>());
        for _ in 0..rng.gen_range(0..4usize) {
            plan.observe_partitioned(
                rng.gen_range(1..1_000_000u64),
                Duration::from_millis(rng.gen_range(1..50)),
            );
        }
        for _ in 0..rng.gen_range(0..4usize) {
            plan.observe_single_master(
                rng.gen_range(1..1_000_000u64),
                Duration::from_millis(rng.gen_range(1..50)),
            );
        }
        plan
    }

    #[test]
    fn property_split_always_sums_to_the_iteration_time() {
        // Equation (1): τp + τs = e must hold for every plan state and every
        // iteration time, including extreme throughput ratios.
        let mut rng = StdRng::seed_from_u64(0x5EED_0001);
        for round in 0..500 {
            let plan = arbitrary_plan(&mut rng);
            let e = Duration::from_micros(rng.gen_range(1..100_000u64));
            let (tau_p, tau_s) = plan.split(e);
            let sum = tau_p + tau_s;
            let diff = sum.abs_diff(e);
            // mul_f64 rounds to nanoseconds; saturating_sub keeps the sum
            // exact, so any drift means the arithmetic regressed.
            assert!(
                diff <= Duration::from_nanos(1),
                "round {round}: τp {tau_p:?} + τs {tau_s:?} != e {e:?}"
            );
            assert!(tau_p <= e && tau_s <= e, "round {round}: phase exceeds iteration");
        }
    }

    #[test]
    fn property_single_master_share_is_monotone_in_p() {
        // With throughput estimates held fixed, a larger cross-partition
        // fraction must never *shrink* the single-master phase: the planner
        // must hand more time to the phase that serves more of the load.
        let mut rng = StdRng::seed_from_u64(0x5EED_0002);
        for round in 0..200 {
            let mut plan = arbitrary_plan(&mut rng);
            let p_low = rng.gen::<f64>();
            let p_high = (p_low + rng.gen::<f64>() * (1.0 - p_low)).min(1.0);
            plan.set_cross_partition_fraction(p_low);
            let (_, tau_s_low) = plan.split(E);
            plan.set_cross_partition_fraction(p_high);
            let (_, tau_s_high) = plan.split(E);
            assert!(
                tau_s_high + Duration::from_nanos(1) >= tau_s_low,
                "round {round}: τs({p_high}) = {tau_s_high:?} < τs({p_low}) = {tau_s_low:?}"
            );
        }
    }

    #[test]
    fn property_degenerate_fractions_pin_the_whole_iteration() {
        // P = 0 and P = 1 must produce the degenerate splits of the paper no
        // matter what throughputs were observed, and out-of-range fractions
        // must clamp onto them.
        let mut rng = StdRng::seed_from_u64(0x5EED_0003);
        for _ in 0..200 {
            let mut plan = arbitrary_plan(&mut rng);
            plan.set_cross_partition_fraction(0.0);
            assert_eq!(plan.split(E), (E, Duration::ZERO));
            plan.set_cross_partition_fraction(1.0);
            assert_eq!(plan.split(E), (Duration::ZERO, E));
            plan.set_cross_partition_fraction(-rng.gen::<f64>());
            assert_eq!(plan.split(E), (E, Duration::ZERO), "negative P must clamp to 0");
            plan.set_cross_partition_fraction(1.0 + rng.gen::<f64>());
            assert_eq!(plan.split(E), (Duration::ZERO, E), "P > 1 must clamp to 1");
        }
    }

    #[test]
    fn property_split_satisfies_equation_two_when_estimates_exist() {
        // When both throughputs have been observed and P is interior, the
        // split must solve Eq. (2): τs·ts / (τp·tp + τs·ts) = P.
        let mut rng = StdRng::seed_from_u64(0x5EED_0004);
        for round in 0..200 {
            let mut plan = PhasePlan::new(rng.gen_range(0.05..0.95));
            plan.observe_partitioned(rng.gen_range(100..1_000_000u64), Duration::from_millis(10));
            plan.observe_single_master(rng.gen_range(100..1_000_000u64), Duration::from_millis(10));
            let (tp, ts) = plan.estimates();
            let p = plan.cross_partition_fraction();
            let (tau_p, tau_s) = plan.split(E);
            let lhs =
                tau_s.as_secs_f64() * ts / (tau_p.as_secs_f64() * tp + tau_s.as_secs_f64() * ts);
            assert!((lhs - p).abs() < 1e-3, "round {round}: lhs {lhs} != P {p} (tp={tp}, ts={ts})");
        }
    }
}
