//! The workload abstraction executed by the engines.
//!
//! A workload knows its catalog, how to load a partition, and how to generate
//! stored procedures. The engines request transactions by class:
//!
//! * single-partition transactions for a given partition (partitioned phase,
//!   where each partition is served by its own worker);
//! * cross-partition transactions (single-master phase);
//! * an unconstrained mix (baselines, which do not separate the classes).
//!
//! `star-workloads` implements this trait for YCSB and TPC-C.

use rand::rngs::StdRng;
use star_common::PartitionId;
use star_occ::Procedure;
use star_storage::{Database, TableSpec};

/// The transaction mix knob shared by all workloads: what fraction of
/// generated transactions should be cross-partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Fraction of cross-partition transactions, in `[0, 1]`.
    pub cross_partition_fraction: f64,
}

impl WorkloadMix {
    /// Creates a mix from a percentage (0–100), as the paper's figures are
    /// labelled.
    pub fn from_percentage(pct: f64) -> Self {
        WorkloadMix { cross_partition_fraction: (pct / 100.0).clamp(0.0, 1.0) }
    }

    /// The percentage form of the fraction.
    pub fn percentage(&self) -> f64 {
        self.cross_partition_fraction * 100.0
    }
}

/// A benchmark workload (YCSB, TPC-C, ...) that engines can drive.
pub trait Workload: Send + Sync {
    /// A short label for reports (e.g. `"YCSB"`).
    fn name(&self) -> &'static str;

    /// Tables of the workload, in table-id order.
    fn catalog(&self) -> Vec<TableSpec>;

    /// Number of partitions in the workload's layout.
    fn num_partitions(&self) -> usize;

    /// The transaction mix (cross-partition fraction) this workload is
    /// configured for.
    fn mix(&self) -> WorkloadMix;

    /// Populates one partition of a replica with the workload's initial data.
    /// Called once per `(replica, partition)` pair the replica holds.
    fn load_partition(&self, db: &Database, partition: PartitionId);

    /// Generates a single-partition transaction homed on `partition`.
    fn single_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure>;

    /// Generates a cross-partition transaction whose home is `partition`.
    /// Implementations should touch at least one other partition; if the
    /// layout has a single partition they may fall back to a single-partition
    /// transaction.
    fn cross_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure>;

    /// Generates a transaction according to the configured mix, homed on
    /// `partition`. This is what the baselines (which do not separate
    /// classes) execute.
    fn mixed_transaction(&self, rng: &mut StdRng, partition: PartitionId) -> Box<dyn Procedure> {
        use rand::Rng;
        if rng.gen::<f64>() < self.mix().cross_partition_fraction {
            self.cross_partition_transaction(rng, partition)
        } else {
            self.single_partition_transaction(rng, partition)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_percentage_roundtrip() {
        let mix = WorkloadMix::from_percentage(15.0);
        assert!((mix.cross_partition_fraction - 0.15).abs() < 1e-12);
        assert!((mix.percentage() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mix_is_clamped() {
        assert_eq!(WorkloadMix::from_percentage(150.0).cross_partition_fraction, 1.0);
        assert_eq!(WorkloadMix::from_percentage(-10.0).cross_partition_fraction, 0.0);
    }
}
