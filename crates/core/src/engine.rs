//! The phase-switching execution engine.
//!
//! [`StarEngine`] drives a [`StarCluster`] through alternating partitioned
//! and single-master phases separated by replication fences, exactly as in
//! Figure 5 of the paper:
//!
//! 1. derive `τp` and `τs` from the iteration time, the cross-partition
//!    fraction and the measured phase throughputs (Equations 1–2);
//! 2. run the partitioned phase: one worker per partition executes
//!    single-partition transactions with no concurrency control, replicating
//!    committed writes asynchronously (operation replication under the hybrid
//!    strategy);
//! 3. replication fence: every healthy replica applies all outstanding
//!    writes, failures are detected, the epoch is advanced;
//! 4. run the single-master phase: worker threads on the designated master
//!    (a full replica) execute cross-partition transactions under the Silo
//!    OCC protocol, replicating committed writes as full rows (value
//!    replication);
//! 5. another replication fence.
//!
//! Transactions are only released to clients at the fence that closes their
//! epoch, so commit latency is dominated by the iteration time — this is the
//! epoch-based group commit the latency table (Figure 12) reports.

use crate::cluster::StarCluster;
use crate::exec::{
    run_one_master_txn, run_one_partitioned_txn, MasterWorkerState, PartitionWorkerState,
    ReplicationStage,
};
use crate::failure::FailureCase;
use crate::history::HistoryRecorder;
use crate::phase::PhasePlan;
use crate::workload::Workload;
use parking_lot::Mutex;
use star_common::stats::{LatencyHistogram, RunCounters, RunReport};
use star_common::{ClusterConfig, Epoch, Error, NodeId, PartitionId, ReplicationMode, Result};
use star_replication::{CommitQueue, DrainMode, EncodedEntry, EpochDrain, WalWriter};
use star_storage::Database;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinguishes the WAL directories of engines built inside the same
/// process (tests and the chaos harness construct many engines in parallel;
/// sharing one directory would interleave their logs).
static WAL_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Re-export of the replication mode used to configure synchronous vs
/// asynchronous replication in the single-master phase (`SYNC STAR` vs
/// `STAR` in Figure 15(a)).
pub type SyncReplication = ReplicationMode;

/// Sampling rate for commit-latency measurements (one in `LATENCY_SAMPLE`
/// commits records its commit instant; latency is measured to the fence that
/// closes the epoch).
const LATENCY_SAMPLE: u64 = 8;

/// One master (re-)election, recorded at the fence that held it.
///
/// Elections are deterministic: the winner is always the lowest-id healthy
/// full replica (or `None` when no full replica survives — Case 2/4), and
/// they only happen at replication fences, where failure detection has just
/// run. Identical seed ⇒ identical election log, which is what lets the
/// chaos harness assert a *deterministic* new master after a coordinator
/// crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterElection {
    /// The epoch whose fence held the election (0 for the initial
    /// appointment at engine construction).
    pub epoch: Epoch,
    /// The elected master, or `None` if no healthy full replica remained.
    pub master: Option<NodeId>,
    /// Monotonically increasing election generation (0 = initial
    /// appointment); bumps exactly when the elected master changes.
    pub generation: u64,
}

/// How a memory-to-memory recovery is interrupted mid-copy (the chaos
/// harness's recovery-path fault injection; see
/// [`StarEngine::recover_node_interrupted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryFault {
    /// The node serving the copy crashes mid-stream; the fence detects it
    /// like any other crash.
    SourceCrash,
    /// The recovering node crashes again before the copy completes; it
    /// simply stays down.
    TargetCrash,
    /// The link carrying the recovery state is cut mid-copy; both nodes
    /// survive but the recovery aborts (heal the link before retrying).
    LinkCut,
}

/// What an interrupted recovery managed to do before the fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptedRecovery {
    /// The node that was serving the aborted copy.
    pub source: NodeId,
    /// Records copied before the interruption (a partial prefix; safe to
    /// leave in place because the copy is idempotent under the Thomas write
    /// rule and a later successful recovery re-copies everything).
    pub records_copied: usize,
}

/// What the phase after a replication fence will read, which decides how
/// much of the fence's replication traffic must be applied synchronously.
///
/// Only the records the next phase touches need their replicas current at
/// the fence; every other apply can drain asynchronously while the next
/// phase executes (the pipelined group commit). A partitioned phase reads
/// each partition only on its effective primary; a single-master phase reads
/// everything, but only on the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextPhase {
    /// The next phase executes on the partitions' effective primaries.
    Partitioned,
    /// The next phase executes on the elected master.
    SingleMaster,
    /// The caller gave no hint (the public [`StarEngine::fence`]): every
    /// apply is synchronous, which is always safe.
    Unknown,
}

/// Result of one phase execution.
struct PhaseResult {
    committed: u64,
    elapsed: Duration,
    /// Commit instants of sampled transactions (latency is closed at the next
    /// fence).
    samples: Vec<Instant>,
}

/// The STAR engine.
pub struct StarEngine {
    cluster: StarCluster,
    workload: Arc<dyn Workload>,
    plan: PhasePlan,
    epoch: Epoch,
    last_committed_epoch: Epoch,
    counters: Arc<RunCounters>,
    latency: LatencyHistogram,
    partition_workers: Vec<PartitionWorkerState>,
    master_workers: Vec<MasterWorkerState>,
    failed: Vec<bool>,
    /// For each currently failed node, the last epoch that had committed when
    /// its failure was detected; used to discard its in-flight writes when it
    /// recovers.
    failed_at_committed_epoch: Vec<Option<Epoch>>,
    wal: Option<Vec<Arc<Mutex<WalWriter>>>>,
    /// Directory holding the per-node WAL files when disk logging is on.
    wal_dir: Option<PathBuf>,
    /// Optional committed-history recorder (chaos harness).
    history: Option<Arc<HistoryRecorder>>,
    /// Epochs that were discarded by an epoch revert, in detection order.
    reverted_epochs: Vec<Epoch>,
    /// The currently elected master (fence-time decision; `None` while no
    /// healthy full replica exists).
    elected_master: Option<NodeId>,
    /// Generation of the current election (bumps when the master changes).
    master_generation: u64,
    /// Every election ever held, in order (index 0 is the initial
    /// appointment).
    elections: Vec<MasterElection>,
    /// Completion-tracked queue for the asynchronous tail of each epoch's
    /// group commit (deferred replica applies and WAL flushes).
    commit_queue: CommitQueue,
    /// Which phase the most recent fence's deferred applies are safe to
    /// overlap with ([`NextPhase::Unknown`] = no deferred applies pending).
    drain_safe_for: NextPhase,
    /// The report of the most recent `run_for` window, replayed by
    /// [`Engine::report`](crate::engine_api::Engine::report).
    last_report: Option<RunReport>,
}

impl std::fmt::Debug for StarEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StarEngine")
            .field("epoch", &self.epoch)
            .field("nodes", &self.cluster.nodes().len())
            .field("failed", &self.failed)
            .finish()
    }
}

impl Drop for StarEngine {
    fn drop(&mut self) {
        // Complete any in-flight epoch drain first: pending jobs hold Arcs
        // to the WAL writers and replica databases, and flushing into files
        // that are about to be unlinked would be wasted work.
        self.commit_queue.quiesce();
        // The per-engine WAL directory models this cluster's disks; once the
        // engine is gone nothing can read it back (wal_paths() borrows the
        // engine), so remove it rather than leaking one directory per engine
        // into the temp dir — chaos sweeps construct thousands of engines.
        // Writers are closed first: a crashed-then-never-recovered node's
        // WAL still holds an open handle with unflushed bytes (fences skip
        // failed nodes), and unlinking files that are still open is
        // platform-dependent — dropping the writers first makes the cleanup
        // unconditional.
        self.wal = None;
        if let Some(dir) = self.wal_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl StarEngine {
    /// Builds the engine: constructs the cluster and loads the workload into
    /// every replica.
    pub fn new(config: ClusterConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        let cluster = StarCluster::build(&config, workload.as_ref())?;
        let partition_workers =
            (0..config.partitions).map(|p| PartitionWorkerState::new(&config, p)).collect();
        let master_workers =
            (0..config.workers_per_node).map(|w| MasterWorkerState::new(&config, w)).collect();
        let (wal, wal_dir) = if config.disk_logging {
            let dir = std::env::temp_dir().join(format!(
                "star-wal-{}-{}",
                std::process::id(),
                WAL_INSTANCE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir)
                .map_err(|e| Error::Durability(format!("cannot create WAL dir: {e}")))?;
            let writers = (0..config.num_nodes)
                .map(|n| {
                    let path = dir.join(format!("node-{n}.wal"));
                    WalWriter::open(path).map(|w| Arc::new(Mutex::new(w)))
                })
                .collect::<Result<Vec<_>>>();
            let writers = match writers {
                Ok(writers) => writers,
                Err(e) => {
                    // No engine will ever own the directory we just created,
                    // so its Drop cannot clean it up — do it here or the
                    // half-initialised directory leaks.
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(e);
                }
            };
            (Some(writers), Some(dir))
        } else {
            (None, None)
        };
        let plan = PhasePlan::new(workload.mix().cross_partition_fraction);
        let failed = vec![false; config.num_nodes];
        let failed_at_committed_epoch = vec![None; config.num_nodes];
        let initial_master = (config.full_replicas > 0).then_some(0);
        let counters = Arc::new(RunCounters::new());
        // Deferred by default: drains are pumped at deterministic points (the
        // next fence, or a quiesce), which keeps the stepped drivers and the
        // chaos corpus bit-reproducible. The timed path switches to
        // Background for the duration of `run_for`.
        let commit_queue = CommitQueue::new(DrainMode::Deferred, Arc::clone(&counters));
        Ok(StarEngine {
            cluster,
            workload,
            plan,
            epoch: 1,
            last_committed_epoch: 0,
            counters,
            latency: LatencyHistogram::new(),
            partition_workers,
            master_workers,
            failed,
            failed_at_committed_epoch,
            wal,
            wal_dir,
            history: None,
            reverted_epochs: Vec::new(),
            elected_master: initial_master,
            master_generation: 0,
            elections: vec![MasterElection { epoch: 0, master: initial_master, generation: 0 }],
            commit_queue,
            drain_safe_for: NextPhase::Unknown,
            last_report: None,
        })
    }

    /// Completes the pending epoch drain unless its deferred applies were
    /// chosen for exactly the phase about to run. Called on entry to every
    /// phase: a fence hint can mispredict (the failure picture or the plan
    /// changed), and running a phase over replicas whose applies were
    /// deferred *for a different reader* would serve stale records.
    fn ensure_drain_safe(&mut self, phase: NextPhase) {
        if self.drain_safe_for != phase && self.drain_safe_for != NextPhase::Unknown {
            self.commit_queue.wait_for(self.last_committed_epoch);
            self.drain_safe_for = NextPhase::Unknown;
        }
    }

    /// How the asynchronous tail of each group commit is executed. See
    /// [`DrainMode`]; the default is [`DrainMode::Deferred`].
    pub fn drain_mode(&self) -> DrainMode {
        self.commit_queue.mode()
    }

    /// Switches the commit-drain mode. Pending drains complete first, so the
    /// switch can never reorder or lose an epoch's tail.
    /// [`DrainMode::Immediate`] restores the unpipelined pre-fence behaviour
    /// for A/B comparison.
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        self.commit_queue.set_mode(mode);
    }

    /// Completes every outstanding epoch drain. After this returns, all
    /// replica copies reflect every committed epoch and all WAL buffers have
    /// been flushed — required before inspecting replicas or WAL files
    /// directly.
    pub fn quiesce(&self) {
        self.commit_queue.quiesce();
    }

    /// Epochs whose commit drains are still queued behind the fence
    /// (tests and debugging).
    pub fn pending_drains(&self) -> Vec<Epoch> {
        self.commit_queue.pending_epochs()
    }

    /// The underlying cluster (replicas, network).
    pub fn cluster(&self) -> &StarCluster {
        &self.cluster
    }

    /// The current global epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The shared run counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// The last epoch that was closed by a replication fence (the newest
    /// epoch whose transactions have been released to clients).
    pub fn last_committed_epoch(&self) -> Epoch {
        self.last_committed_epoch
    }

    /// Attaches a committed-history recorder. Every subsequently committed
    /// transaction is recorded (with its observed read versions and installed
    /// rows) and finalized or discarded at the fence closing its epoch.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.history = Some(recorder);
    }

    /// The attached history recorder, if any.
    pub fn history_recorder(&self) -> Option<&Arc<HistoryRecorder>> {
        self.history.as_ref()
    }

    /// Epochs that were discarded by an epoch revert (failure detection at a
    /// fence), in detection order. Disk recovery uses this to skip WAL
    /// entries from epochs that never group-committed.
    pub fn reverted_epochs(&self) -> &[Epoch] {
        &self.reverted_epochs
    }

    /// The directory holding this engine's per-node WAL files, when disk
    /// logging is enabled. Quiesces pending epoch drains first so the files
    /// on disk reflect every committed epoch.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.commit_queue.quiesce();
        self.wal_dir.as_deref()
    }

    /// The per-node WAL file paths (index = node id), when disk logging is
    /// enabled. Quiesces pending epoch drains first (see
    /// [`wal_dir`](Self::wal_dir)): callers read or truncate these files, and
    /// a deferred WAL flush landing afterwards would corrupt the experiment.
    pub fn wal_paths(&self) -> Vec<PathBuf> {
        self.commit_queue.quiesce();
        match &self.wal_dir {
            Some(dir) => (0..self.cluster.config().num_nodes)
                .map(|n| dir.join(format!("node-{n}.wal")))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The current failure classification of the cluster.
    ///
    /// The engine maintains one failure flag per configured node, so the
    /// classification itself cannot fail; the `Result` propagates the typed
    /// [`crate::failure::FailureVectorMismatch`] contract of
    /// [`FailureCase::classify`] instead of panicking on it.
    pub fn failure_case(&self) -> Result<FailureCase> {
        FailureCase::classify(self.cluster.config(), &self.failed)
            .map_err(|e| Error::Config(e.to_string()))
    }

    /// Marks a node as failed in the simulated network. The failure is
    /// *detected* (and the database reverted to the last committed epoch) at
    /// the next replication fence, mirroring the paper's coordinator-driven
    /// detection.
    pub fn inject_failure(&mut self, node: NodeId) {
        self.cluster.network().fail_node(node);
    }

    /// Which nodes are currently known (detected) to be failed.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.failed.iter().enumerate().filter(|(_, f)| **f).map(|(n, _)| n).collect()
    }

    /// Whether `node` is marked failed. Out-of-range ids count as failed:
    /// they can never serve a phase, win an election, or source a recovery.
    fn is_failed(&self, node: NodeId) -> bool {
        self.failed.get(node).copied().unwrap_or(true)
    }

    /// The node currently acting as the designated master: the winner of the
    /// most recent election (held at every replication fence, after failure
    /// detection). `None` while no healthy full replica exists.
    pub fn current_master(&self) -> Option<NodeId> {
        self.elected_master.filter(|&m| !self.is_failed(m))
    }

    /// Generation of the current master election. Bumps exactly when the
    /// elected master changes (including to/from `None`), so a re-election
    /// storm is visible as a strictly increasing generation sequence.
    pub fn master_generation(&self) -> u64 {
        self.master_generation
    }

    /// The full election log, in order. Index 0 is the initial appointment
    /// at engine construction; later entries record fence-time re-elections.
    pub fn elections(&self) -> &[MasterElection] {
        &self.elections
    }

    /// Holds a deterministic master election: the lowest-id healthy full
    /// replica wins (matching the paper's "designated master is a full
    /// replica" rule), or `None` when no full replica survives. Called at
    /// every fence after failure detection; records a new log entry only
    /// when the winner changes.
    fn hold_election(&mut self) {
        let winner = (0..self.cluster.config().full_replicas).find(|&n| !self.is_failed(n));
        if winner != self.elected_master {
            self.master_generation += 1;
            self.elected_master = winner;
            self.elections.push(MasterElection {
                epoch: self.epoch,
                master: winner,
                generation: self.master_generation,
            });
        }
    }

    /// The effective primary node of a partition: its configured primary if
    /// healthy, otherwise the first healthy node holding the partition
    /// (re-mastering of Case 3).
    pub fn effective_primary(&self, partition: PartitionId) -> Option<NodeId> {
        let config = self.cluster.config();
        let primary = config.partition_primary(partition);
        if !self.is_failed(primary) {
            return Some(primary);
        }
        (0..config.num_nodes)
            .find(|&n| !self.is_failed(n) && config.node_stores_partition(n, partition))
    }

    /// Runs the engine for (at least) `duration`, returning a report with the
    /// throughput, latency distribution and traffic counters of the window.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        // Timed runs drain each epoch's commit tail on a background worker so
        // it overlaps the next phase's execution; the prior mode (Deferred by
        // default, deterministic) is restored — and pending drains completed
        // — before returning, so callers can inspect replicas right away.
        let prior_mode = self.commit_queue.mode();
        self.commit_queue.set_mode(DrainMode::Background);
        let start = Instant::now();
        let before = self.counters.snapshot();
        while start.elapsed() < duration {
            self.run_iteration();
        }
        self.commit_queue.set_mode(prior_mode);
        let elapsed = start.elapsed();
        let after = self.counters.snapshot();
        let mut window = after;
        window.committed -= before.committed;
        window.aborted -= before.aborted;
        window.user_aborted -= before.user_aborted;
        window.replication_bytes -= before.replication_bytes;
        window.coordination_bytes -= before.coordination_bytes;
        window.fences -= before.fences;
        window.fence_time_us -= before.fence_time_us;
        window.wal_bytes -= before.wal_bytes;
        window.execution_us -= before.execution_us;
        window.replication_flush_us -= before.replication_flush_us;
        window.wal_fsync_us -= before.wal_fsync_us;
        window.lock_or_validate_us -= before.lock_or_validate_us;
        let report = RunReport::new(
            "STAR",
            self.workload.name(),
            self.workload.mix().percentage(),
            elapsed,
            window,
            std::mem::take(&mut self.latency),
        );
        self.last_report = Some(report.clone());
        report
    }

    /// Executes exactly one iteration (partitioned phase, fence,
    /// single-master phase, fence). Exposed for tests and for the
    /// phase-overhead benchmark.
    pub fn run_iteration(&mut self) {
        // Adapt the iteration length to the observed commit mix: at low
        // cross-partition ratios the fences are nearly free (almost all
        // replication drains behind them), so shorter iterations cut the
        // group-commit latency without costing throughput.
        let iteration = self.plan.adaptive_iteration(self.cluster.config().iteration);
        let (tau_p, tau_s) = self.plan.split(iteration);

        let available = self.failure_case().map(|c| c.available()).unwrap_or(false);
        let partitioned = if !tau_p.is_zero() && available {
            Some(self.run_partitioned_phase(tau_p))
        } else {
            None
        };
        // The fence hint anticipates which phase runs next so the fence can
        // defer every replica apply that phase will not read. A mispredicted
        // hint (the failure picture changed at the fence) is caught by the
        // phases themselves: they complete a drain deferred for a different
        // phase before touching any replica (`ensure_drain_safe`).
        let next = if !tau_s.is_zero() && self.current_master().is_some() {
            NextPhase::SingleMaster
        } else {
            NextPhase::Partitioned
        };
        let fence_end = self.replication_fence(next);
        if let Some(result) = &partitioned {
            self.counters.add_execution(result.elapsed);
            self.plan.observe_partitioned(result.committed, result.elapsed);
            self.close_latency_samples(&result.samples, fence_end);
        }

        let single_master = if !tau_s.is_zero() && self.current_master().is_some() {
            Some(self.run_single_master_phase(tau_s))
        } else {
            None
        };
        let next = if tau_s >= iteration && self.current_master().is_some() {
            // A pure cross-partition plan starts the next iteration with the
            // single-master phase again.
            NextPhase::SingleMaster
        } else {
            NextPhase::Partitioned
        };
        let fence_end = self.replication_fence(next);
        if let Some(result) = &single_master {
            self.counters.add_execution(result.elapsed);
            self.plan.observe_single_master(result.committed, result.elapsed);
            self.close_latency_samples(&result.samples, fence_end);
        }
        self.plan.observe_mix(
            partitioned.as_ref().map_or(0, |r| r.committed),
            single_master.as_ref().map_or(0, |r| r.committed),
        );
    }

    fn close_latency_samples(&mut self, samples: &[Instant], fence_end: Instant) {
        for &commit_instant in samples {
            self.latency.record(fence_end.saturating_duration_since(commit_instant));
        }
    }

    /// Runs the partitioned phase for `tau_p`.
    fn run_partitioned_phase(&mut self, tau_p: Duration) -> PhaseResult {
        self.ensure_drain_safe(NextPhase::Partitioned);
        let config = self.cluster.config().clone();
        let deadline = Instant::now() + tau_p;
        let start = Instant::now();
        let epoch = self.epoch;
        let strategy = config.replication_strategy;
        let mut total_committed = 0u64;
        let mut samples = Vec::new();

        // Precompute, per partition, the node that will execute it and the
        // replica targets, so the scoped workers only capture owned data.
        let assignments: Vec<Option<(NodeId, Vec<NodeId>)>> = (0..config.partitions)
            .map(|p| {
                self.effective_primary(p).map(|primary| {
                    let targets: Vec<NodeId> = self
                        .cluster
                        .replica_targets(primary, p)
                        .into_iter()
                        .filter(|n| !self.failed[*n])
                        .collect();
                    (primary, targets)
                })
            })
            .collect();

        let cluster = &self.cluster;
        let workload = &self.workload;
        let counters = &self.counters;
        let wal = &self.wal;
        let history = &self.history;

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (partition, state) in self.partition_workers.iter_mut().enumerate() {
                let Some((primary, targets)) = assignments[partition].clone() else {
                    continue;
                };
                let node = &cluster.nodes()[primary];
                let db = Arc::clone(&node.db);
                let endpoint = Arc::clone(&node.endpoint);
                let workload = Arc::clone(workload);
                let counters = Arc::clone(counters);
                let wal = wal.as_ref().map(|w| Arc::clone(&w[primary]));
                let history = history.clone();
                let num_nodes = config.num_nodes;
                handles.push(scope.spawn(move || {
                    let mut committed = 0u64;
                    let mut attempts = 0u64;
                    let mut samples = Vec::new();
                    // Each worker stages its replication traffic in its own
                    // buffers and merges at the end of the phase: no shared
                    // lock, no per-transaction fan-out.
                    let mut stage = ReplicationStage::new(primary, epoch, num_nodes);
                    // Always attempt at least one transaction per phase so a
                    // heavily loaded host cannot starve a worker out of an
                    // entire (very short) phase.
                    while attempts == 0 || Instant::now() < deadline {
                        attempts += 1;
                        if run_one_partitioned_txn(
                            partition,
                            primary,
                            &targets,
                            &db,
                            endpoint.as_ref(),
                            workload.as_ref(),
                            &counters,
                            wal.as_deref(),
                            history.as_deref(),
                            epoch,
                            strategy,
                            state,
                            Some(&mut stage),
                        ) {
                            committed += 1;
                            if committed % LATENCY_SAMPLE == 0 {
                                samples.push(Instant::now());
                            }
                        }
                        stage.flush_if_full(endpoint.as_ref(), &counters);
                    }
                    stage.flush(endpoint.as_ref(), &counters);
                    (committed, samples)
                }));
            }
            for handle in handles {
                let (committed, mut worker_samples) =
                    handle.join().expect("partition worker panicked");
                total_committed += committed;
                samples.append(&mut worker_samples);
            }
        });

        PhaseResult { committed: total_committed, elapsed: start.elapsed(), samples }
    }

    /// Runs the single-master phase for `tau_s`.
    fn run_single_master_phase(&mut self, tau_s: Duration) -> PhaseResult {
        self.ensure_drain_safe(NextPhase::SingleMaster);
        let config = self.cluster.config().clone();
        let Some(master) = self.current_master() else {
            return PhaseResult { committed: 0, elapsed: Duration::ZERO, samples: Vec::new() };
        };
        let deadline = Instant::now() + tau_s;
        let start = Instant::now();
        let epoch = self.epoch;
        let mut total_committed = 0u64;
        let mut samples = Vec::new();

        let healthy: Vec<NodeId> =
            (0..config.num_nodes).filter(|&n| n != master && !self.failed[n]).collect();
        let cluster = &self.cluster;
        let workload = &self.workload;
        let counters = &self.counters;
        let wal = &self.wal;
        let history = &self.history;
        let master_node = &cluster.nodes()[master];

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (worker_id, state) in self.master_workers.iter_mut().enumerate() {
                let db = Arc::clone(&master_node.db);
                let endpoint = Arc::clone(&master_node.endpoint);
                let workload = Arc::clone(workload);
                let counters = Arc::clone(counters);
                let wal = wal.as_ref().map(|w| Arc::clone(&w[master]));
                let history = history.clone();
                let healthy = healthy.clone();
                let config = config.clone();
                handles.push(scope.spawn(move || {
                    let mut committed = 0u64;
                    let mut attempts = 0u64;
                    let mut samples = Vec::new();
                    // Per-worker staging, merged at phase end (see the
                    // partitioned phase).
                    let mut stage = ReplicationStage::new(master, epoch, config.num_nodes);
                    while attempts == 0 || Instant::now() < deadline {
                        attempts += 1;
                        if run_one_master_txn(
                            worker_id,
                            master,
                            &healthy,
                            &config,
                            &db,
                            endpoint.as_ref(),
                            workload.as_ref(),
                            &counters,
                            wal.as_deref(),
                            history.as_deref(),
                            epoch,
                            state,
                            Some(&mut stage),
                        ) {
                            committed += 1;
                            if committed % LATENCY_SAMPLE == 0 {
                                samples.push(Instant::now());
                            }
                        }
                        stage.flush_if_full(endpoint.as_ref(), &counters);
                    }
                    stage.flush(endpoint.as_ref(), &counters);
                    (committed, samples)
                }));
            }
            for handle in handles {
                let (committed, mut worker_samples) =
                    handle.join().expect("master worker panicked");
                total_committed += committed;
                samples.append(&mut worker_samples);
            }
        });

        PhaseResult { committed: total_committed, elapsed: start.elapsed(), samples }
    }

    /// Deterministic, single-threaded variant of the partitioned phase: each
    /// partition's worker executes exactly `txns_per_partition` transaction
    /// attempts, in partition order, instead of racing a wall-clock deadline.
    ///
    /// Because partitioned-phase workers touch disjoint partitions, running
    /// them sequentially is semantically identical to the threaded phase —
    /// but the committed history, the replication message sequence and every
    /// fault-plane decision become pure functions of the configuration seed.
    /// This is what the chaos harness's "identical seed ⇒ identical history"
    /// contract rests on. Returns the number of committed transactions.
    pub fn run_partitioned_phase_stepped(&mut self, txns_per_partition: u64) -> u64 {
        let available = self.failure_case().map(|c| c.available()).unwrap_or(false);
        if txns_per_partition == 0 || !available {
            return 0;
        }
        self.ensure_drain_safe(NextPhase::Partitioned);
        let config = self.cluster.config().clone();
        let epoch = self.epoch;
        let strategy = config.replication_strategy;
        let assignments: Vec<Option<(NodeId, Vec<NodeId>)>> = (0..config.partitions)
            .map(|p| {
                self.effective_primary(p).map(|primary| {
                    let targets: Vec<NodeId> = self
                        .cluster
                        .replica_targets(primary, p)
                        .into_iter()
                        .filter(|n| !self.failed[*n])
                        .collect();
                    (primary, targets)
                })
            })
            .collect();

        let cluster = &self.cluster;
        let workload = &self.workload;
        let counters = &self.counters;
        let wal = &self.wal;
        let history = &self.history;
        let mut total_committed = 0u64;

        for (partition, state) in self.partition_workers.iter_mut().enumerate() {
            let Some((primary, targets)) = assignments[partition].clone() else {
                continue;
            };
            let node = &cluster.nodes()[primary];
            let wal = wal.as_ref().map(|w| w[primary].as_ref());
            for _ in 0..txns_per_partition {
                if run_one_partitioned_txn(
                    partition,
                    primary,
                    &targets,
                    &node.db,
                    node.endpoint.as_ref(),
                    workload.as_ref(),
                    counters,
                    wal,
                    history.as_deref(),
                    epoch,
                    strategy,
                    state,
                    None,
                ) {
                    total_committed += 1;
                }
            }
        }
        total_committed
    }

    /// Deterministic, single-threaded variant of the single-master phase:
    /// each master worker executes exactly `txns_per_worker` transaction
    /// attempts, in worker order. With a single configured master worker the
    /// OCC commit never aborts on contention, so the committed stream is a
    /// pure function of the seed (see
    /// [`run_partitioned_phase_stepped`](Self::run_partitioned_phase_stepped)).
    /// Returns the number of committed transactions.
    pub fn run_single_master_phase_stepped(&mut self, txns_per_worker: u64) -> u64 {
        let config = self.cluster.config().clone();
        let Some(master) = self.current_master() else {
            return 0;
        };
        if txns_per_worker == 0 {
            return 0;
        }
        self.ensure_drain_safe(NextPhase::SingleMaster);
        let epoch = self.epoch;
        let healthy: Vec<NodeId> =
            (0..config.num_nodes).filter(|&n| n != master && !self.failed[n]).collect();
        let cluster = &self.cluster;
        let workload = &self.workload;
        let counters = &self.counters;
        let wal = self.wal.as_ref().map(|w| w[master].as_ref());
        let history = &self.history;
        let master_node = &cluster.nodes()[master];
        let mut total_committed = 0u64;

        for (worker_id, state) in self.master_workers.iter_mut().enumerate() {
            for _ in 0..txns_per_worker {
                if run_one_master_txn(
                    worker_id,
                    master,
                    &healthy,
                    &config,
                    &master_node.db,
                    master_node.endpoint.as_ref(),
                    workload.as_ref(),
                    counters,
                    wal,
                    history.as_deref(),
                    epoch,
                    state,
                    None,
                ) {
                    total_committed += 1;
                }
            }
        }
        total_committed
    }

    /// One fully deterministic iteration: stepped partitioned phase, fence,
    /// stepped single-master phase, fence. The transaction counts replace the
    /// `τp` / `τs` wall-clock split of [`run_iteration`](Self::run_iteration).
    pub fn run_iteration_stepped(&mut self, partitioned_txns: u64, single_master_txns: u64) {
        self.run_partitioned_phase_stepped(partitioned_txns);
        // Same fence hints as `run_iteration`, so the stepped driver
        // exercises the pipelined (deferred-apply) fence path — in
        // `DrainMode::Deferred` the drains are pumped at the next fence,
        // keeping the whole iteration deterministic.
        let next = if single_master_txns > 0 && self.current_master().is_some() {
            NextPhase::SingleMaster
        } else {
            NextPhase::Partitioned
        };
        let _ = self.replication_fence(next);
        self.run_single_master_phase_stepped(single_master_txns);
        let _ = self.replication_fence(NextPhase::Partitioned);
    }

    /// Executes a replication fence: complete the previous epoch's pending
    /// drain, detect failures, apply the outstanding replication the *next*
    /// phase will read, package the rest (plus the WAL flush) into an
    /// [`EpochDrain`] that runs behind the fence, advance the epoch. Returns
    /// the instant the fence completed (the group-commit point of the epoch
    /// that just closed).
    ///
    /// The commit *decision* is entirely synchronous — failure detection,
    /// the epoch revert, the election, history finalization and the latency
    /// release all happen here, exactly as without pipelining. Only the
    /// mechanical tail is deferred, and only the slice of it the next phase
    /// provably does not read (`next` picks that slice).
    fn replication_fence(&mut self, next: NextPhase) -> Instant {
        // star-lint: allow(determinism::instant-now) -- fence-duration telemetry only; no control flow or recorded history depends on it
        let start = Instant::now();
        let config = self.cluster.config().clone();

        // Pipelining step 1: the previous epoch's drain must fully land
        // before this fence reasons about replica state (reverts, applies,
        // recoveries all assume replicas reflect every committed epoch).
        self.commit_queue.wait_for(self.last_committed_epoch);
        self.drain_safe_for = NextPhase::Unknown;

        // Failure detection: the coordinator notices nodes that stopped
        // responding. Newly failed nodes trigger an epoch revert on every
        // healthy replica (Figure 6) before the fence proceeds.
        let newly_failed: Vec<NodeId> = (0..config.num_nodes)
            .filter(|&n| self.cluster.network().is_failed(n) && !self.failed[n])
            .collect();
        let reverting = !newly_failed.is_empty();
        if reverting {
            for &n in &newly_failed {
                self.failed[n] = true;
                self.failed_at_committed_epoch[n] = Some(self.last_committed_epoch);
            }
            for (n, node) in self.cluster.nodes().iter().enumerate() {
                if !self.failed[n] {
                    node.db.revert_to_epoch(self.last_committed_epoch);
                }
            }
        }
        // Re-elect the master now that the failure picture is current: a
        // crashed coordinator is replaced by the next healthy full replica,
        // and a recovered lower-id full replica takes the role back — both
        // deterministically, before the next single-master phase runs.
        self.hold_election();

        // Release any messages held back by reorder faults: the fence's
        // contract is that every *sent* message is either applied now or
        // discarded with its epoch, never silently stuck in flight.
        for node in self.cluster.nodes() {
            node.endpoint.flush_stash();
        }

        // Drain outstanding replication streams on every healthy node,
        // ignoring messages that originated at failed nodes. When a failure
        // was just detected, the whole in-flight epoch is being discarded
        // (Figure 6), so its replication messages must be dropped as well —
        // applying them would resurrect writes the primaries just reverted.
        //
        // Each surviving entry is applied *now* only if the next phase reads
        // the target copy: on the elected master before a single-master
        // phase, on the partition's effective primary before a partitioned
        // phase. Everything else is deferred into the epoch's drain job and
        // applied while the next phase runs. (After a partitioned epoch at
        // 0% cross-partition traffic no entry targets its own primary, so
        // the fence applies nothing synchronously at all.)
        let master = self.current_master();
        // star-lint: allow(determinism::instant-now) -- apply-time telemetry for the replication-flush latency slice only
        let apply_start = Instant::now();
        let mut deferred: Vec<(Arc<Database>, Vec<EncodedEntry>)> = Vec::new();
        for (n, node) in self.cluster.nodes().iter().enumerate() {
            if self.failed[n] {
                continue;
            }
            let mut deferred_entries: Vec<EncodedEntry> = Vec::new();
            for envelope in node.endpoint.drain() {
                if self.failed[envelope.from] {
                    continue;
                }
                if reverting && envelope.payload.epoch > self.last_committed_epoch {
                    continue;
                }
                for entry in envelope.payload.entries {
                    if !node.db.holds(entry.partition()) {
                        continue;
                    }
                    let read_by_next_phase = match next {
                        NextPhase::Unknown => true,
                        NextPhase::SingleMaster => master == Some(n),
                        NextPhase::Partitioned => {
                            self.effective_primary(entry.partition()) == Some(n)
                        }
                    };
                    if read_by_next_phase {
                        let _ = entry.apply(&node.db);
                    } else {
                        deferred_entries.push(entry);
                    }
                }
            }
            if !deferred_entries.is_empty() {
                deferred.push((Arc::clone(&node.db), deferred_entries));
            }
        }
        self.counters.add_replication_flush(apply_start.elapsed());

        // Epoch commit: no per-record work at all. Advancing
        // `last_committed_epoch` below is what retires the epoch's version
        // stashes — `revert_to_epoch`'s gate skips any record whose current
        // epoch has committed, and the first write of a later epoch replaces
        // the stash with its own pre-image. (An eager fence-time GC here
        // used to walk every record of every replica, which dominated the
        // fence at short iterations.) Only the WAL flush is deferred into
        // the drain.
        let mut wal_flushes = Vec::new();
        if let Some(wal) = &self.wal {
            for (n, writer) in wal.iter().enumerate() {
                if !self.failed[n] {
                    wal_flushes.push(Arc::clone(writer));
                }
            }
        }
        if reverting {
            // The epoch's transactions were never released to clients: they
            // are discarded from every replica above, so they must vanish
            // from the recorded history too.
            self.reverted_epochs.push(self.epoch);
        }
        if let Some(history) = &self.history {
            history.finalize_epoch(self.epoch, !reverting);
        }
        let drain = EpochDrain { epoch: self.epoch, applies: deferred, wal_flushes };
        if !drain.is_empty() {
            self.commit_queue.submit(drain);
        }
        self.drain_safe_for = next;
        self.last_committed_epoch = self.epoch;
        self.epoch += 1;
        // star-lint: allow(determinism::instant-now) -- group-commit timestamp feeds latency telemetry, not simulation state
        let end = Instant::now();
        self.counters.add_fence(end - start);
        end
    }

    /// Runs one replication fence: detects failures, applies outstanding
    /// replication on every healthy replica and advances the epoch. This is
    /// the fence `run_iteration` executes twice per iteration, exposed so the
    /// chaos driver can compose phases and fences explicitly. Without a
    /// next-phase hint every replica apply is synchronous (always safe); the
    /// WAL flush still drains behind the fence.
    pub fn fence(&mut self) {
        let _ = self.replication_fence(NextPhase::Unknown);
    }

    /// Whether a memory-to-memory recovery of `node` is currently possible:
    /// every partition the node holds must have at least one *other* healthy
    /// replica to copy from. When several replicas of a partition died
    /// together, this is what decides which of them can rejoin first — the
    /// schedule synthesizer and the chaos driver consult it before
    /// scheduling overlapping recoveries.
    pub fn can_recover(&self, node: NodeId) -> bool {
        let Some(node_db) = self.cluster.node(node).map(|n| &n.db) else {
            return false;
        };
        node_db.held_partitions().into_iter().all(|partition| {
            (0..self.cluster.config().num_nodes)
                .any(|n| n != node && !self.is_failed(n) && self.node_holds(n, partition))
        })
    }

    /// Whether `node` exists and its replica holds `partition`.
    fn node_holds(&self, node: NodeId, partition: PartitionId) -> bool {
        self.cluster.node(node).is_some_and(|n| n.db.holds(partition))
    }

    /// Recovers a previously failed node: the node copies the partitions it
    /// holds from healthy replicas (preferring a full replica), is healed in
    /// the network and rejoins the cluster. Corresponds to the per-node
    /// recovery path shared by Cases 1–3.
    ///
    /// Source availability is checked for *every* held partition before any
    /// data moves, so an impossible recovery (all other replicas of some
    /// partition dead — the Case-4 situation that needs disk recovery
    /// instead) fails atomically: the node stays down, its pre-crash state
    /// untouched, and a later recovery attempt — e.g. after another replica
    /// rejoined — can still succeed.
    pub fn recover_node(&mut self, node: NodeId) -> Result<usize> {
        // The copy below reads healthy replicas directly; a still-pending
        // epoch drain would make it miss the deferred applies (the source
        // would receive them after the copy, leaving the recovered node
        // permanently behind).
        self.commit_queue.quiesce();
        let Some(target) = self.cluster.node(node) else {
            return Err(Error::Config(format!("no such node {node}")));
        };
        if !self.is_failed(node) {
            return Ok(0);
        }
        if !self.can_recover(node) {
            return Err(Error::Config(format!(
                "node {node}: no healthy replica holds every partition it needs; recover \
                 another replica first or recover from disk"
            )));
        }
        // The failed node's replica may still contain writes from the epoch
        // that was in flight when it crashed; that epoch was discarded by the
        // rest of the cluster (Figure 6), so discard it here too before
        // catching up.
        let target_db = Arc::clone(&target.db);
        // Everything still queued at this node's endpoint was addressed to
        // the crashed process and died with it — in particular replication
        // batches of epochs the cluster reverted after the crash (fences skip
        // failed nodes, so their queues are never drained while down).
        // Applying them after rejoining would resurrect discarded writes;
        // the copy from healthy replicas below supplies the current state.
        drop(target.endpoint.drain());
        if let Some(committed) = self.failed_at_committed_epoch.get_mut(node).and_then(Option::take)
        {
            target_db.revert_to_epoch(committed);
        }
        let mut copied = 0usize;
        for partition in target_db.held_partitions() {
            let source = (0..self.cluster.config().num_nodes)
                .find(|&n| n != node && !self.is_failed(n) && self.node_holds(n, partition));
            let Some(source_db) = source.and_then(|n| self.cluster.node(n)).map(|n| &n.db) else {
                return Err(Error::Config(format!(
                    "no healthy replica holds partition {partition}; recover from disk instead"
                )));
            };
            source_db.for_each_record(|table, p, key, rec| {
                if p != partition {
                    return;
                }
                let read = rec.read();
                if target_db.apply_value_write(table, p, key, read.row, read.tid).unwrap_or(false) {
                    copied += 1;
                }
            });
        }
        self.cluster.network().heal_node(node);
        if let Some(failed) = self.failed.get_mut(node) {
            *failed = false;
        }
        Ok(copied)
    }

    /// Starts a recovery of `node` and injects `fault` mid-copy: the first
    /// held partition is copied from its source, then the fault fires and
    /// the recovery **aborts** — the node stays down, the network is not
    /// healed, and the engine's failure bookkeeping is untouched. This is
    /// the chaos harness's recovery-path fault injection: the paper's
    /// catch-up protocol must survive its own interruption.
    ///
    /// The partial copy is harmless: the failure marker is kept (not
    /// consumed), so a later successful [`Self::recover_node`] first reverts
    /// the target back to its crash-time committed epoch — discarding any
    /// in-flight versions an aborted mid-epoch copy may have picked up from
    /// the source, even if the cluster later reverted that epoch — and then
    /// re-copies everything under original TIDs (Thomas write rule). The
    /// interruption's side effects are exactly those of the fault itself:
    ///
    /// * [`RecoveryFault::SourceCrash`] — the source node is marked failed
    ///   in the network (detected, like any crash, at the next fence);
    /// * [`RecoveryFault::TargetCrash`] — no additional effect (the
    ///   recovering node was already down and stays down);
    /// * [`RecoveryFault::LinkCut`] — the `source ↔ node` link is cut and
    ///   stays cut until a scheduled heal.
    ///
    /// Preconditions mirror [`Self::recover_node`]: recovering a healthy
    /// node is a no-op (`Ok` with zero records), an infeasible recovery
    /// (no healthy source) is a typed error.
    pub fn recover_node_interrupted(
        &mut self,
        node: NodeId,
        fault: RecoveryFault,
    ) -> Result<InterruptedRecovery> {
        // Same as `recover_node`: the partial copy reads replicas directly,
        // so pending epoch drains must land first.
        self.commit_queue.quiesce();
        let Some(target) = self.cluster.node(node) else {
            return Err(Error::Config(format!("no such node {node}")));
        };
        if !self.is_failed(node) {
            return Ok(InterruptedRecovery { source: node, records_copied: 0 });
        }
        if !self.can_recover(node) {
            return Err(Error::Config(format!(
                "node {node}: no healthy replica holds every partition it needs; recover \
                 another replica first or recover from disk"
            )));
        }
        let target_db = Arc::clone(&target.db);
        // Peek — do NOT consume — the revert marker: an interruption can
        // land mid-epoch, in which case the partial copy below includes the
        // source's *in-flight* versions. If that epoch later reverts, the
        // down node keeps the copies (it does not participate in fences),
        // and the Thomas write rule would block the committed rows from
        // overwriting them on retry. Keeping the marker makes the retried
        // `recover_node` revert the target again, discarding anything this
        // aborted copy resurrected before re-copying.
        if let Some(committed) = self.failed_at_committed_epoch.get(node).copied().flatten() {
            target_db.revert_to_epoch(committed);
        }
        drop(target.endpoint.drain());
        let partition = target_db
            .held_partitions()
            .into_iter()
            .next()
            .ok_or_else(|| Error::Config(format!("node {node} holds no partitions")))?;
        // `can_recover` held a moment ago, but recovery must never be a
        // crash site: a vanished source is a typed error, not a panic.
        let source = (0..self.cluster.config().num_nodes)
            .find(|&n| n != node && !self.is_failed(n) && self.node_holds(n, partition))
            .ok_or_else(|| {
                Error::Config(format!(
                    "node {node}: healthy source for partition {partition} vanished mid-recovery"
                ))
            })?;
        let mut copied = 0usize;
        let Some(source_db) = self.cluster.node(source).map(|n| &n.db) else {
            return Err(Error::Config(format!("no such node {source}")));
        };
        source_db.for_each_record(|table, p, key, rec| {
            if p != partition {
                return;
            }
            let read = rec.read();
            if target_db.apply_value_write(table, p, key, read.row, read.tid).unwrap_or(false) {
                copied += 1;
            }
        });
        match fault {
            RecoveryFault::SourceCrash => self.cluster.network().fail_node(source),
            RecoveryFault::TargetCrash => {}
            RecoveryFault::LinkCut => self.cluster.network().cut_link(source, node),
        }
        Ok(InterruptedRecovery { source, records_copied: copied })
    }

    /// Checks that every pair of healthy replicas agrees on the contents of
    /// the partitions they both hold. Intended for tests: run some load, then
    /// assert consistency after a fence.
    pub fn verify_replica_consistency(&self) -> Result<()> {
        use std::collections::BTreeMap;
        // Replicas with a pending epoch drain legitimately lag; complete it
        // before comparing copies.
        self.commit_queue.quiesce();
        let config = self.cluster.config();
        type Snapshot = BTreeMap<(u32, usize, u64), (star_common::Tid, star_common::Row)>;
        let snapshots: Vec<Option<Snapshot>> = self
            .cluster
            .nodes()
            .iter()
            .enumerate()
            .map(|(n, node)| {
                if self.failed[n] {
                    return None;
                }
                let mut map = BTreeMap::new();
                node.db.for_each_record(|table, partition, key, rec| {
                    let read = rec.read();
                    map.insert((table, partition, key), (read.tid, read.row));
                });
                Some(map)
            })
            .collect();
        for partition in 0..config.partitions {
            let holders: Vec<usize> = (0..config.num_nodes)
                .filter(|&n| !self.failed[n] && self.cluster.nodes()[n].db.holds(partition))
                .collect();
            let Some(&reference) = holders.first() else { continue };
            let reference_map = snapshots[reference].as_ref().unwrap();
            for &other in &holders[1..] {
                let other_map = snapshots[other].as_ref().unwrap();
                for ((table, p, key), (tid, row)) in reference_map {
                    if *p != partition {
                        continue;
                    }
                    match other_map.get(&(*table, *p, *key)) {
                        Some((other_tid, other_row)) if other_tid == tid && other_row == row => {}
                        Some((other_tid, _)) => {
                            return Err(Error::Config(format!(
                                "replica divergence: node {other} has tid {other_tid} for \
                                 ({table},{p},{key}) but node {reference} has {tid}"
                            )));
                        }
                        None => {
                            return Err(Error::Config(format!(
                                "replica divergence: node {other} is missing ({table},{p},{key})"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl crate::engine_api::Engine for StarEngine {
    fn name(&self) -> String {
        "STAR".to_string()
    }

    fn run_for(&mut self, duration: Duration) -> RunReport {
        StarEngine::run_for(self, duration)
    }

    fn counters(&self) -> &RunCounters {
        StarEngine::counters(self)
    }

    fn report(&self) -> RunReport {
        match &self.last_report {
            Some(report) => report.clone(),
            None => RunReport::new(
                "STAR",
                self.workload.name(),
                self.workload.mix().percentage(),
                Duration::ZERO,
                self.counters.snapshot(),
                LatencyHistogram::new(),
            ),
        }
    }

    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        StarEngine::set_history_recorder(self, recorder)
    }

    fn wal_paths(&self) -> Vec<PathBuf> {
        StarEngine::wal_paths(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{kv_key, KvWorkload};

    fn small_config() -> ClusterConfig {
        ClusterConfig {
            num_nodes: 4,
            full_replicas: 1,
            workers_per_node: 2,
            partitions: 4,
            // Factor 3 keeps a partial-partial backup per partition, so the
            // failure-case tests below can lose one partial without losing
            // partial coverage.
            replication_factor: 3,
            iteration: Duration::from_millis(5),
            network_latency: Duration::from_micros(10),
            ..ClusterConfig::default()
        }
    }

    fn workload(cross_fraction: f64) -> Arc<KvWorkload> {
        Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 32,
            cross_partition_fraction: cross_fraction,
        })
    }

    #[test]
    fn engine_commits_transactions_and_advances_epochs() {
        let mut engine = StarEngine::new(small_config(), workload(0.1)).unwrap();
        assert_eq!(engine.epoch(), 1);
        let report = engine.run_for(Duration::from_millis(30));
        assert!(report.counters.committed > 0, "no transactions committed");
        assert!(engine.epoch() > 1, "epoch did not advance");
        assert!(report.throughput > 0.0);
        assert_eq!(report.engine, "STAR");
        assert_eq!(report.workload, "kv");
    }

    #[test]
    fn replicas_converge_after_a_fence() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(30));
        engine.verify_replica_consistency().expect("replicas diverged");
    }

    #[test]
    fn replication_traffic_is_accounted() {
        let mut engine = StarEngine::new(small_config(), workload(0.1)).unwrap();
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.replication_bytes > 0);
        assert!(report.counters.fences >= 2);
        // The simulated network saw actual messages.
        assert!(engine.cluster().network().stats().bytes() > 0);
    }

    #[test]
    fn pure_single_partition_workload_skips_single_master_phase() {
        let mut engine = StarEngine::new(small_config(), workload(0.0)).unwrap();
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.committed > 0);
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn pure_cross_partition_workload_runs_only_on_master() {
        let mut engine = StarEngine::new(small_config(), workload(1.0)).unwrap();
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.committed > 0);
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn failure_is_detected_at_the_fence_and_classified() {
        let mut engine = StarEngine::new(small_config(), workload(0.1)).unwrap();
        engine.run_for(Duration::from_millis(10));
        assert_eq!(engine.failure_case().unwrap(), FailureCase::NoFailure);
        engine.inject_failure(2);
        // Detection happens at the next fence.
        engine.run_iteration();
        assert!(engine.failed_nodes().contains(&2));
        assert_eq!(engine.failure_case().unwrap(), FailureCase::FullAndPartialRemain);
        // The system keeps committing transactions (Case 1).
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.committed > 0);
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn master_failure_disables_phase_switching_until_recovery() {
        let mut engine = StarEngine::new(small_config(), workload(0.5)).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.inject_failure(0);
        engine.run_iteration();
        assert_eq!(engine.failure_case().unwrap(), FailureCase::OnlyPartialRemains);
        assert_eq!(engine.current_master(), None);
        // Single-partition work still proceeds on the partial replicas.
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.committed > 0);
    }

    #[test]
    fn failed_node_recovers_and_rejoins() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(15));
        engine.inject_failure(1);
        engine.run_iteration();
        assert!(engine.failed_nodes().contains(&1));
        // More work happens while node 1 is down.
        engine.run_for(Duration::from_millis(15));
        let copied = engine.recover_node(1).unwrap();
        assert!(copied > 0, "recovery should copy missed writes");
        assert!(engine.failed_nodes().is_empty());
        // After another fence-closed window, all replicas agree again.
        engine.run_for(Duration::from_millis(15));
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn recover_node_is_a_noop_for_healthy_nodes() {
        let mut engine = StarEngine::new(small_config(), workload(0.1)).unwrap();
        assert_eq!(engine.recover_node(2).unwrap(), 0);
        assert!(engine.recover_node(99).is_err());
    }

    #[test]
    fn overlapping_crashes_recover_in_dependency_order() {
        // Nodes 0 (full) and 1 hold partition 0 between them; crashing both
        // makes node 0 unrecoverable from memory until node 1 is back. The
        // failed recovery must be atomic (node 0 stays down, untouched) and
        // the same call must succeed once node 1 has rejoined.
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.inject_failure(0);
        engine.inject_failure(1);
        engine.run_iteration();
        assert_eq!(engine.failed_nodes(), vec![0, 1]);
        // Partition 0 is held only by nodes 0 and 1, so with both down
        // neither has a memory source — the mutual-dependency deadlock that
        // needs disk recovery (Case 4). Both attempts must fail atomically.
        let config = engine.cluster().config().clone();
        let p0_holders: Vec<usize> =
            (0..config.num_nodes).filter(|&n| config.node_stores_partition(n, 0)).collect();
        assert_eq!(p0_holders, vec![0, 1]);
        assert!(!engine.can_recover(0), "partition 0 has no healthy source");
        assert!(!engine.can_recover(1), "p0's only other holder (node 0) is down too");
        assert!(engine.recover_node(0).is_err(), "recovery without a source must fail");
        assert!(engine.failed_nodes().contains(&0), "failed recovery must leave the node down");
        assert!(engine.recover_node(1).is_err());
        // The engine must survive the unavailable state: fences keep running
        // and detection stays consistent.
        engine.run_iteration();
        assert_eq!(engine.failed_nodes(), vec![0, 1]);
        // Node 2 (holds p1: {0,1,2} and p2: {0,2,3}) crashed on top would
        // still be recoverable through node 3? No — p1's other holders are
        // both down, so overlapping a third crash makes it stuck too.
        engine.inject_failure(2);
        engine.run_iteration();
        assert!(!engine.can_recover(2));
    }

    #[test]
    fn majority_of_a_partitions_replicas_die_and_recover() {
        // Partition 1 is held by nodes 0, 1 and 2. Crash 1 and 2 (a majority
        // of its replicas) in overlapping windows, then recover them in
        // sequence; the cluster must keep committing throughout and converge
        // afterwards.
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.inject_failure(1);
        engine.run_iteration();
        engine.inject_failure(2);
        engine.run_iteration();
        assert_eq!(engine.failed_nodes(), vec![1, 2]);
        let report = engine.run_for(Duration::from_millis(15));
        assert!(report.counters.committed > 0, "the survivors must keep committing");
        assert!(engine.can_recover(1), "node 0 still covers everything node 1 holds");
        let copied = engine.recover_node(1).unwrap();
        assert!(copied > 0);
        engine.run_for(Duration::from_millis(10));
        let copied = engine.recover_node(2).unwrap();
        assert!(copied > 0);
        assert!(engine.failed_nodes().is_empty());
        engine.run_for(Duration::from_millis(10));
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn wal_dir_is_removed_even_for_crashed_never_recovered_nodes() {
        // Crashed nodes' WAL writers are skipped by every later fence, so
        // they still hold open handles and unflushed bytes when the engine
        // dies. The Drop impl must close the writers *before* unlinking the
        // directory, and the directory must be gone afterwards — chaos
        // sweeps construct thousands of engines and a leak per crashed node
        // fills the temp dir.
        let mut config = small_config();
        config.disk_logging = true;
        let dir = {
            let mut engine = StarEngine::new(config, workload(0.2)).unwrap();
            let dir = engine.wal_dir().expect("disk logging must create a WAL dir").to_path_buf();
            assert!(dir.exists());
            engine.run_for(Duration::from_millis(10));
            engine.inject_failure(1);
            engine.run_iteration();
            // More commits while node 1 is down leave its WAL buffer with
            // bytes no fence will ever flush.
            engine.run_for(Duration::from_millis(10));
            assert!(engine.failed_nodes().contains(&1));
            dir
        };
        assert!(!dir.exists(), "engine drop must remove the per-engine WAL dir");
    }

    #[test]
    fn master_reelection_is_deterministic_and_generation_stamped() {
        // Two full replicas: killing the coordinator mid-epoch hands the
        // role to node 1 at the next fence; recovering node 0 hands it back.
        let mut config = small_config();
        config.full_replicas = 2;
        let mut engine = StarEngine::new(config, workload(0.5)).unwrap();
        assert_eq!(engine.current_master(), Some(0));
        assert_eq!(engine.master_generation(), 0);
        engine.run_for(Duration::from_millis(10));
        assert_eq!(engine.master_generation(), 0, "no failure, no re-election");

        engine.inject_failure(0);
        engine.run_iteration();
        assert_eq!(engine.current_master(), Some(1), "next healthy full replica must win");
        assert_eq!(engine.master_generation(), 1);
        let election = *engine.elections().last().unwrap();
        assert_eq!(election.master, Some(1));
        assert_eq!(election.generation, 1);

        // The cluster keeps committing under the new master.
        let report = engine.run_for(Duration::from_millis(15));
        assert!(report.counters.committed > 0);
        engine.recover_node(0).unwrap();
        engine.run_iteration();
        assert_eq!(engine.current_master(), Some(0), "the lowest-id full replica takes back over");
        assert_eq!(engine.master_generation(), 2);
        // The log is an audit trail: initial appointment plus two changes.
        let masters: Vec<Option<NodeId>> = engine.elections().iter().map(|e| e.master).collect();
        assert_eq!(masters, vec![Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn losing_every_full_replica_elects_nobody() {
        let mut config = small_config();
        config.full_replicas = 2;
        let mut engine = StarEngine::new(config, workload(0.3)).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.inject_failure(0);
        engine.inject_failure(1);
        engine.run_iteration();
        assert_eq!(engine.current_master(), None);
        assert_eq!(engine.elections().last().unwrap().master, None);
        let generation = engine.master_generation();
        // Idle fences must not re-run the election.
        engine.run_iteration();
        assert_eq!(engine.master_generation(), generation);
    }

    #[test]
    fn interrupted_recovery_leaves_the_node_down_and_is_retryable() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(15));
        engine.inject_failure(2);
        engine.run_iteration();
        engine.run_for(Duration::from_millis(10));

        // Target crashes again mid-copy: nothing else changes.
        let aborted = engine.recover_node_interrupted(2, RecoveryFault::TargetCrash).unwrap();
        assert!(aborted.records_copied > 0, "a partial prefix must have been copied");
        assert!(engine.failed_nodes().contains(&2), "the node must stay down");
        engine.run_iteration();

        // The retried full recovery succeeds and the cluster converges.
        engine.recover_node(2).unwrap();
        assert!(engine.failed_nodes().is_empty());
        engine.run_for(Duration::from_millis(10));
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn source_crash_mid_recovery_is_detected_at_the_next_fence() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(15));
        engine.inject_failure(2);
        engine.run_iteration();
        let aborted = engine.recover_node_interrupted(2, RecoveryFault::SourceCrash).unwrap();
        // The source died serving the copy; the next fence detects it and
        // the cluster reverts the in-flight epoch like any other crash.
        engine.run_iteration();
        assert!(engine.failed_nodes().contains(&aborted.source));
        assert!(engine.failed_nodes().contains(&2));
        // With the source down too, node 2's recovery may now be infeasible;
        // recover the source first, then node 2.
        engine.recover_node(aborted.source).unwrap();
        engine.run_iteration();
        engine.recover_node(2).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn link_cut_mid_recovery_stays_cut_until_healed() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.inject_failure(2);
        engine.run_iteration();
        let aborted = engine.recover_node_interrupted(2, RecoveryFault::LinkCut).unwrap();
        assert!(engine.cluster().network().is_link_cut(aborted.source, 2));
        engine.cluster().network().heal_link(aborted.source, 2);
        engine.recover_node(2).unwrap();
        engine.run_for(Duration::from_millis(10));
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn interrupted_mid_epoch_recovery_does_not_resurrect_reverted_writes() {
        // Regression test: an interruption can land mid-epoch, so the
        // partial copy includes the source's *in-flight* versions. If that
        // epoch then reverts (another node dies before the fence), the down
        // node keeps the copies — it takes no part in fences — and a
        // marker-consuming retry would let the Thomas write rule pin the
        // resurrected rows forever. The retried recovery must revert the
        // target again before re-copying. A large keyspace and idle
        // post-revert iterations keep the resurrected keys from being
        // rewritten (and thereby masked) afterwards.
        // The full replica (node 0) is down, so partition 0 is re-mastered
        // onto node 1 — whose db therefore carries *in-flight* versions
        // mid-phase. Interrupting node 0's recovery mid-epoch copies them.
        let wl = Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 2048,
            cross_partition_fraction: 0.2,
        });
        let mut engine = StarEngine::new(small_config(), wl).unwrap();
        engine.run_iteration_stepped(64, 16);
        engine.inject_failure(0);
        engine.run_iteration_stepped(16, 0);
        // An epoch with plenty of in-flight writes on the re-mastered
        // primary, then the aborted copy from it, then a crash that makes
        // the fence revert the whole epoch.
        engine.run_partitioned_phase_stepped(64);
        let aborted = engine.recover_node_interrupted(0, RecoveryFault::TargetCrash).unwrap();
        assert_eq!(aborted.source, 1, "p0 re-mastered onto node 1, the copy source");
        engine.inject_failure(2);
        engine.fence();
        engine.run_single_master_phase_stepped(0);
        engine.fence();
        engine.recover_node(2).unwrap();
        engine.run_iteration_stepped(0, 0);
        engine.recover_node(0).unwrap();
        engine.run_iteration_stepped(0, 0);
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn interrupting_a_healthy_or_unrecoverable_node_mirrors_recover_node() {
        let mut engine = StarEngine::new(small_config(), workload(0.2)).unwrap();
        // Healthy node: no-op.
        let noop = engine.recover_node_interrupted(2, RecoveryFault::TargetCrash).unwrap();
        assert_eq!(noop.records_copied, 0);
        assert!(engine.recover_node_interrupted(99, RecoveryFault::TargetCrash).is_err());
        // Unrecoverable node (no healthy source): typed error, node stays
        // down, untouched.
        engine.inject_failure(0);
        engine.inject_failure(1);
        engine.run_iteration();
        assert!(engine.recover_node_interrupted(0, RecoveryFault::LinkCut).is_err());
        assert!(engine.failed_nodes().contains(&0));
    }

    #[test]
    fn effective_primary_fails_over_to_a_holder() {
        let mut engine = StarEngine::new(small_config(), workload(0.1)).unwrap();
        assert_eq!(engine.effective_primary(1), Some(1));
        engine.inject_failure(1);
        engine.run_iteration();
        let fallback = engine.effective_primary(1).unwrap();
        assert_ne!(fallback, 1);
        assert!(engine.cluster().config().node_stores_partition(fallback, 1));
    }

    #[test]
    fn disk_logging_writes_wal_bytes() {
        let mut config = small_config();
        config.disk_logging = true;
        let mut engine = StarEngine::new(config, workload(0.1)).unwrap();
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.wal_bytes > 0);
    }

    #[test]
    fn sync_replication_mode_still_converges() {
        let mut config = small_config();
        config.replication_mode = ReplicationMode::Sync;
        let mut engine = StarEngine::new(config, workload(0.5)).unwrap();
        let report = engine.run_for(Duration::from_millis(20));
        assert!(report.counters.committed > 0);
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn crash_during_async_drain_reverts_only_the_inflight_epoch() {
        // Pipelined group commit keeps two epochs in flight: epoch N's
        // deferred replica applies drain while epoch N+1 executes. A crash
        // landing in that window must revert exactly the in-flight epoch —
        // epoch N group-committed at its fence (its transactions were
        // released to clients), so the fence first completes N's drain and
        // only then discards N+1.
        use crate::history::HistoryRecorder;
        let wl = Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 64,
            cross_partition_fraction: 0.3,
        });
        let mut engine = StarEngine::new(small_config(), wl).unwrap();
        let history = Arc::new(HistoryRecorder::new());
        engine.set_history_recorder(Arc::clone(&history));

        // Epochs 1 and 2 commit; the fence closing epoch 2 defers the
        // replica applies the upcoming partitioned phase will not read.
        engine.run_iteration_stepped(8, 4);
        let committed_before = history.committed_len();
        assert!(committed_before > 0);
        assert_eq!(
            engine.pending_drains(),
            vec![2],
            "epoch 2's drain must still be queued behind the fence"
        );

        // Epoch 3 executes while epoch 2 drains; the crash lands in exactly
        // that window.
        engine.run_partitioned_phase_stepped(8);
        engine.inject_failure(2);
        assert_eq!(engine.pending_drains(), vec![2], "the crash must land mid-drain");
        engine.fence();

        // Epoch 2 survived: its drain completed before the revert, and its
        // records stay in the committed history. Epoch 3 vanished entirely.
        assert_eq!(engine.reverted_epochs(), &[3]);
        assert_eq!(history.reverted_epochs(), vec![3]);
        assert_eq!(history.committed_len(), committed_before);
        assert!(engine.pending_drains().is_empty());
        engine.verify_replica_consistency().unwrap();

        // The surviving replicas carry exactly the committed transactions:
        // every KvRmw increments two counters by one, so the master's
        // counter total must equal twice the committed-history length.
        let master_db = &engine.cluster().master().unwrap().db;
        let mut total = 0u64;
        for p in 0..4usize {
            for offset in 0..64 {
                let rec = master_db.get(0, p, kv_key(p, offset)).unwrap();
                total += rec.read().row.field(0).unwrap().as_u64().unwrap();
            }
        }
        assert_eq!(total, 2 * committed_before as u64, "epoch 3 writes must be gone");
    }

    #[test]
    fn pipelined_stepped_runs_are_deterministic() {
        // The two-deep epoch window must not cost reproducibility: two
        // stepped runs over the same seed, with drains pumped at fences,
        // must produce bit-identical committed histories.
        use crate::history::HistoryRecorder;
        let run = || {
            let mut engine = StarEngine::new(small_config(), workload(0.3)).unwrap();
            let history = Arc::new(HistoryRecorder::new());
            engine.set_history_recorder(Arc::clone(&history));
            for _ in 0..5 {
                engine.run_iteration_stepped(8, 4);
            }
            engine.quiesce();
            history.fingerprint()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn immediate_drain_mode_restores_unpipelined_fences() {
        let mut engine = StarEngine::new(small_config(), workload(0.3)).unwrap();
        engine.set_drain_mode(DrainMode::Immediate);
        engine.run_iteration_stepped(8, 4);
        assert!(engine.pending_drains().is_empty(), "immediate mode drains at the fence");
        engine.verify_replica_consistency().unwrap();
    }

    #[test]
    fn serializability_smoke_total_increments_equal_commits() {
        // Every KvRmw increments two counters by one; after a fence the sum
        // of all counters on the master replica must equal twice the number
        // of committed transactions (minus nothing, since there are no user
        // aborts in this workload).
        let config = ClusterConfig {
            num_nodes: 2,
            full_replicas: 1,
            workers_per_node: 2,
            partitions: 2,
            iteration: Duration::from_millis(5),
            network_latency: Duration::from_micros(10),
            ..ClusterConfig::default()
        };
        let wl = Arc::new(KvWorkload {
            partitions: 2,
            rows_per_partition: 16,
            cross_partition_fraction: 0.3,
        });
        let mut engine = StarEngine::new(config, wl.clone()).unwrap();
        let report = engine.run_for(Duration::from_millis(40));
        let master_db = &engine.cluster().master().unwrap().db;
        let mut total = 0u64;
        for p in 0..2usize {
            for offset in 0..wl.rows_per_partition {
                let rec = master_db.get(0, p, kv_key(p, offset)).unwrap();
                total += rec.read().row.field(0).unwrap().as_u64().unwrap();
            }
        }
        assert_eq!(total, report.counters.committed * 2);
    }
}
