//! The analytical model of Section 6.3.
//!
//! The model compares the time to run a workload of `ns` single-partition and
//! `nc` cross-partition transactions under three architectures:
//!
//! * partitioning-based: `T = (ns·ts + nc·tc) / n`               (Eq. 3)
//! * non-partitioned:    `T = (ns + nc)·ts`                       (Eq. 4)
//! * STAR:               `T = (ns/n + nc)·ts`                     (Eq. 5)
//!
//! With `K = tc/ts` (how much more expensive a cross-partition transaction
//! is) and `P = nc/(nc+ns)` (the cross-partition fraction), the paper derives
//! the improvement ratios plotted in Figure 10 and the speedup over a single
//! node plotted in Figure 3. Those closed forms are reproduced here and used
//! by the `fig3` / `fig10` benchmark harness targets.

/// Closed-form performance model of STAR vs the two conventional designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalModel {
    /// Fraction of cross-partition transactions in the workload, `P ∈ [0,1]`.
    pub cross_partition_fraction: f64,
    /// Cost ratio `K = tc/ts` of a cross-partition transaction to a
    /// single-partition transaction in a partitioning-based system.
    pub cross_partition_cost_ratio: f64,
}

impl AnalyticalModel {
    /// Creates a model; `p` is clamped into `[0, 1]` and `k` must be >= 1.
    pub fn new(p: f64, k: f64) -> Self {
        AnalyticalModel {
            cross_partition_fraction: p.clamp(0.0, 1.0),
            cross_partition_cost_ratio: k.max(1.0),
        }
    }

    /// Relative execution time of a partitioning-based system on `n` nodes
    /// (Eq. 3), normalised so that a single-partition transaction costs 1.
    pub fn time_partitioning_based(&self, n: usize) -> f64 {
        let p = self.cross_partition_fraction;
        let k = self.cross_partition_cost_ratio;
        ((1.0 - p) + p * k) / n as f64
    }

    /// Relative execution time of a non-partitioned (primary/backup) system
    /// (Eq. 4). Independent of `n`: backups do not add throughput.
    pub fn time_non_partitioned(&self, _n: usize) -> f64 {
        1.0
    }

    /// Relative execution time of STAR on `n` nodes (Eq. 5).
    pub fn time_star(&self, n: usize) -> f64 {
        let p = self.cross_partition_fraction;
        (1.0 - p) / n as f64 + p
    }

    /// Improvement of STAR over a partitioning-based system on `n` nodes,
    /// `I_partitioning(n) = (KP - P + 1) / (nP - P + 1)`.
    pub fn improvement_over_partitioning(&self, n: usize) -> f64 {
        let p = self.cross_partition_fraction;
        let k = self.cross_partition_cost_ratio;
        (k * p - p + 1.0) / (n as f64 * p - p + 1.0)
    }

    /// Improvement of STAR over a non-partitioned system on `n` nodes,
    /// `I_non-partitioned(n) = n / (nP - P + 1)`.
    pub fn improvement_over_non_partitioned(&self, n: usize) -> f64 {
        let p = self.cross_partition_fraction;
        n as f64 / (n as f64 * p - p + 1.0)
    }

    /// Speedup of STAR with `n` nodes over STAR with a single node,
    /// `I(n) = n / (nP - P + 1)` (Figure 3).
    pub fn speedup_over_single_node(&self, n: usize) -> f64 {
        self.improvement_over_non_partitioned(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cross_partition_transactions_scale_linearly() {
        let m = AnalyticalModel::new(0.0, 4.0);
        for n in 1..=16 {
            assert!((m.speedup_over_single_node(n) - n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn all_cross_partition_transactions_do_not_scale() {
        let m = AnalyticalModel::new(1.0, 4.0);
        for n in 1..=16 {
            assert!((m.speedup_over_single_node(n) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure3_shape_10pct_cross_partition() {
        // With P=10%, the model predicts a speedup of about 6.4x on 16 nodes
        // (16 / (16*0.1 - 0.1 + 1) = 16 / 2.5).
        let m = AnalyticalModel::new(0.10, 4.0);
        let s16 = m.speedup_over_single_node(16);
        assert!((s16 - 6.4).abs() < 1e-9, "s16={s16}");
        // Lower cross-partition percentages give higher speedups.
        let m1 = AnalyticalModel::new(0.01, 4.0);
        assert!(m1.speedup_over_single_node(16) > s16);
    }

    #[test]
    fn star_beats_non_partitioned_whenever_single_partition_work_exists() {
        for p in [0.0, 0.1, 0.5, 0.9] {
            let m = AnalyticalModel::new(p, 8.0);
            let improvement = m.improvement_over_non_partitioned(4);
            if p < 1.0 {
                assert!(improvement > 1.0, "P={p} improvement={improvement}");
            } else {
                assert!((improvement - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn star_beats_partitioning_only_when_k_exceeds_n() {
        // Section 6.3: to outperform partitioning-based systems, K > n.
        let n = 4;
        for p in [0.1, 0.3, 0.7] {
            let cheap = AnalyticalModel::new(p, 2.0); // K < n
            assert!(cheap.improvement_over_partitioning(n) < 1.0);
            let expensive = AnalyticalModel::new(p, 16.0); // K > n
            assert!(expensive.improvement_over_partitioning(n) > 1.0);
            let breakeven = AnalyticalModel::new(p, n as f64);
            assert!((breakeven.improvement_over_partitioning(n) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn times_are_consistent_with_improvements() {
        let m = AnalyticalModel::new(0.2, 8.0);
        let n = 4;
        let ratio = m.time_partitioning_based(n) / m.time_star(n);
        assert!((ratio - m.improvement_over_partitioning(n)).abs() < 1e-12);
        let ratio = m.time_non_partitioned(n) / m.time_star(n);
        assert!((ratio - m.improvement_over_non_partitioned(n)).abs() < 1e-12);
    }

    #[test]
    fn constructor_clamps_inputs() {
        let m = AnalyticalModel::new(1.5, 0.5);
        assert_eq!(m.cross_partition_fraction, 1.0);
        assert_eq!(m.cross_partition_cost_ratio, 1.0);
        let m = AnalyticalModel::new(-0.5, 3.0);
        assert_eq!(m.cross_partition_fraction, 0.0);
    }
}
