//! The shared per-transaction execution paths.
//!
//! Exactly one implementation exists of "execute one partitioned-phase
//! transaction" and "execute one single-master-phase transaction", and both
//! the in-process [`StarEngine`](crate::StarEngine) (threaded and stepped
//! drivers) and the TCP deployment (`star-serverd`) call it. Replication goes
//! through [`Transport`], the seam implemented by the deterministic
//! in-memory endpoint and by the real TCP mesh alike — so when the
//! transport-parity harness asserts byte-identical committed histories
//! between wire and simulation, the engine logic is shared by construction
//! and any divergence is the transport's.
//!
//! Worker state (TID generator + seeded RNG) is also constructed here, from
//! the one canonical seed-derivation formula: partition worker `p` draws from
//! `rng_seed_base() ^ 0x5747 ^ p`, master worker `w` from
//! `rng_seed_base() ^ 0xCA11 ^ w`. Identical configuration ⇒ identical
//! transaction streams, on every backend.

use crate::history::{CommittedTxn, HistoryRecorder, MASTER_EXECUTOR_OFFSET};
use crate::messages::ReplicationBatch;
use crate::workload::Workload;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use star_common::stats::RunCounters;
use star_common::{
    ClusterConfig, Epoch, Error, NodeId, PartitionId, ReplicationMode, ReplicationStrategy, Tid,
    TidGenerator,
};
use star_net::{Message as _, Transport};
use star_occ::{commit_partitioned, commit_single_master, TxnCtx, WriteEntry};
use star_replication::{
    build_log_entries, EncodedEntry, ExecutionPhase, LogEntry, Payload, WalWriter,
};
use star_storage::Database;
use std::time::Instant;

/// Per-worker staging of replication traffic.
///
/// Committed entries accumulate in thread-local per-target buffers and are
/// flushed as one merged batch per target, so each worker pays the transport
/// fan-out cost (channel enqueue, fault-plane roll, stats update) once per
/// flush instead of once per transaction — the contention point behind the
/// 2→4 thread throughput collapse. Only the *timed* threaded phases stage;
/// the stepped deterministic drivers and the TCP deployment keep
/// per-transaction batches, preserving the chaos corpus's
/// message-granularity determinism (per-send fault rolls, highest-TID
/// corrupt targeting).
///
/// Entries for one partition stay in commit stream order within a worker's
/// buffers, and partitioned-phase partitions are single-writer, so operation
/// replication's in-order apply requirement is untouched.
#[derive(Debug)]
pub struct ReplicationStage {
    from_node: NodeId,
    epoch: Epoch,
    per_target: Vec<Vec<EncodedEntry>>,
}

/// A staged target buffer flushes once it holds this many entries, bounding
/// staged memory and the size of any one fence-drained batch.
pub const STAGE_FLUSH_ENTRIES: usize = 1024;

impl ReplicationStage {
    /// An empty stage for a worker on `from_node` executing `epoch`.
    pub fn new(from_node: NodeId, epoch: Epoch, num_nodes: usize) -> Self {
        ReplicationStage { from_node, epoch, per_target: vec![Vec::new(); num_nodes] }
    }

    fn push(&mut self, target: NodeId, entry: EncodedEntry) {
        if let Some(buffer) = self.per_target.get_mut(target) {
            buffer.push(entry);
        }
    }

    /// Flushes every target buffer that grew past [`STAGE_FLUSH_ENTRIES`].
    /// Workers call this once per transaction; the common case is a length
    /// check per target and nothing else.
    pub fn flush_if_full(
        &mut self,
        transport: &dyn Transport<ReplicationBatch>,
        counters: &RunCounters,
    ) {
        for target in 0..self.per_target.len() {
            if self.per_target[target].len() >= STAGE_FLUSH_ENTRIES {
                self.flush_target(target, transport, counters);
            }
        }
    }

    /// Flushes everything still staged. Must run before the worker exits its
    /// phase loop: the fence drains endpoints after the phase joins, and the
    /// fence's contract is that every entry the phase produced has been sent.
    pub fn flush(&mut self, transport: &dyn Transport<ReplicationBatch>, counters: &RunCounters) {
        for target in 0..self.per_target.len() {
            self.flush_target(target, transport, counters);
        }
    }

    fn flush_target(
        &mut self,
        target: NodeId,
        transport: &dyn Transport<ReplicationBatch>,
        counters: &RunCounters,
    ) {
        if self.per_target[target].is_empty() {
            return;
        }
        let batch = ReplicationBatch {
            from_node: self.from_node,
            epoch: self.epoch,
            entries: std::mem::take(&mut self.per_target[target]),
        };
        counters.add_replication_bytes(batch.wire_size() as u64);
        let _ = transport.send(target, batch);
    }
}

/// Per-partition worker state that survives across iterations.
pub struct PartitionWorkerState {
    pub(crate) tid_gen: TidGenerator,
    pub(crate) rng: StdRng,
}

impl PartitionWorkerState {
    /// State for the worker owning `partition`, seeded by the canonical
    /// formula shared by every backend.
    pub fn new(config: &ClusterConfig, partition: PartitionId) -> Self {
        PartitionWorkerState {
            tid_gen: TidGenerator::new(),
            rng: StdRng::seed_from_u64(config.rng_seed_base() ^ 0x5747_u64 ^ (partition as u64)),
        }
    }

    /// Advances this worker's RNG past `attempts` transaction generations
    /// without executing anything, by generating and discarding the same
    /// procedures [`run_one_partitioned_txn`] would have drawn.
    ///
    /// A node taking over a partition mid-run (primary failover, or a
    /// restarted process rejoining) must resume the partition's transaction
    /// stream exactly where the previous executor left it. Each attempt —
    /// committed or aborted — consumes exactly one workload generation, so
    /// replaying the generations is a faithful fast-forward. The TID
    /// generator needs no transfer: failover only happens across an epoch
    /// fence, the epoch always advances, and TIDs are epoch-major, so a
    /// fresh generator's `Tid::new(epoch, 1)` matches what a carried-over
    /// generator would produce.
    pub fn fast_forward(&mut self, workload: &dyn Workload, partition: PartitionId, attempts: u64) {
        for _ in 0..attempts {
            let _ = workload.single_partition_transaction(&mut self.rng, partition);
        }
    }
}

/// Per-master-worker state that survives across iterations.
pub struct MasterWorkerState {
    pub(crate) tid_gen: TidGenerator,
    pub(crate) rng: StdRng,
}

impl MasterWorkerState {
    /// State for master worker `worker`, seeded by the canonical formula
    /// shared by every backend.
    pub fn new(config: &ClusterConfig, worker: usize) -> Self {
        MasterWorkerState {
            tid_gen: TidGenerator::new(),
            rng: StdRng::seed_from_u64(config.rng_seed_base() ^ 0xCA11_u64 ^ (worker as u64)),
        }
    }

    /// Advances this master worker's RNG past `attempts` transaction
    /// generations without executing anything — the single-master twin of
    /// [`PartitionWorkerState::fast_forward`], used when a re-elected master
    /// must resume worker `worker_id`'s cross-partition stream where the
    /// previous master's worker left it. Each attempt draws one home
    /// partition and one workload generation, exactly as
    /// [`run_one_master_txn`] does.
    pub fn fast_forward(
        &mut self,
        workload: &dyn Workload,
        worker_id: usize,
        partitions: usize,
        attempts: u64,
    ) {
        use rand::Rng;
        for _ in 0..attempts {
            let home = (self.rng.gen::<usize>() ^ worker_id) % partitions;
            let _ = workload.cross_partition_transaction(&mut self.rng, home);
        }
    }
}

/// Logs a committed write set to a worker's WAL, as full rows (Section 5).
pub fn append_writes_to_wal(
    wal: &Mutex<WalWriter>,
    write_set: &[WriteEntry],
    tid: Tid,
    counters: &RunCounters,
) {
    let mut wal = wal.lock();
    for w in write_set {
        let entry = LogEntry {
            table: w.table,
            partition: w.partition,
            key: w.key,
            tid,
            payload: Payload::Value(w.row.clone()),
        };
        let _ = wal.append_value(&entry);
        counters.add_wal_bytes(entry.wire_size() as u64);
    }
}

/// Executes one single-partition transaction on `partition`'s effective
/// primary: generate → execute → lock-free commit → record → replicate to
/// `targets` → WAL. Shared by the threaded and stepped partitioned phases and
/// by the TCP deployment, so the backends cannot drift. Returns `true` if the
/// transaction committed.
#[allow(clippy::too_many_arguments)]
pub fn run_one_partitioned_txn(
    partition: PartitionId,
    primary: NodeId,
    targets: &[NodeId],
    db: &Database,
    transport: &dyn Transport<ReplicationBatch>,
    workload: &dyn Workload,
    counters: &RunCounters,
    wal: Option<&Mutex<WalWriter>>,
    history: Option<&HistoryRecorder>,
    epoch: Epoch,
    strategy: ReplicationStrategy,
    state: &mut PartitionWorkerState,
    stage: Option<&mut ReplicationStage>,
) -> bool {
    let proc = workload.single_partition_transaction(&mut state.rng, partition);
    let mut ctx = TxnCtx::new_single_threaded(db);
    match proc.execute(&mut ctx) {
        Ok(()) => {}
        Err(Error::Abort(star_common::AbortReason::User)) => {
            counters.add_user_abort();
            return false;
        }
        Err(_) => {
            counters.add_abort();
            return false;
        }
    }
    let (read_set, write_set) = ctx.into_sets();
    let recorded_reads = history.map(|_| read_set.clone());
    let Ok(output) = commit_partitioned(db, read_set, write_set, epoch, &mut state.tid_gen) else {
        counters.add_abort();
        return false;
    };
    if let Some(history) = history {
        history.record(CommittedTxn::from_sets(
            epoch,
            ExecutionPhase::Partitioned,
            partition as u64,
            output.tid,
            recorded_reads.as_deref().unwrap_or(&[]),
            &output.write_set,
        ));
    }
    let entries =
        build_log_entries(&output.write_set, output.tid, strategy, ExecutionPhase::Partitioned);
    if !entries.is_empty() {
        // Encode once; every replica target shares the same buffers.
        let encoded = EncodedEntry::encode_all(entries);
        match stage {
            Some(stage) => {
                for &target in targets {
                    for entry in &encoded {
                        stage.push(target, entry.clone());
                    }
                }
            }
            None => {
                let batch = ReplicationBatch { from_node: primary, epoch, entries: encoded };
                for &target in targets {
                    counters.add_replication_bytes(batch.wire_size() as u64);
                    let _ = transport.send(target, batch.clone());
                }
            }
        }
    }
    if let Some(wal) = wal {
        append_writes_to_wal(wal, &output.write_set, output.tid, counters);
    }
    counters.add_commit();
    true
}

/// Executes one cross-partition transaction on the master under Silo OCC:
/// generate → execute → validate/commit → record → replicate the relevant
/// entries to every healthy node → (optionally) wait out synchronous
/// replication → WAL. Shared by the threaded and stepped single-master
/// phases and by the TCP deployment, so the backends cannot drift. Returns
/// `true` on commit.
#[allow(clippy::too_many_arguments)]
pub fn run_one_master_txn(
    worker_id: usize,
    master: NodeId,
    healthy: &[NodeId],
    config: &ClusterConfig,
    db: &Database,
    transport: &dyn Transport<ReplicationBatch>,
    workload: &dyn Workload,
    counters: &RunCounters,
    wal: Option<&Mutex<WalWriter>>,
    history: Option<&HistoryRecorder>,
    epoch: Epoch,
    state: &mut MasterWorkerState,
    stage: Option<&mut ReplicationStage>,
) -> bool {
    use rand::Rng;
    let home = (state.rng.gen::<usize>() ^ worker_id) % config.partitions;
    let proc = workload.cross_partition_transaction(&mut state.rng, home);
    let mut ctx = TxnCtx::new(db);
    match proc.execute(&mut ctx) {
        Ok(()) => {}
        Err(Error::Abort(star_common::AbortReason::User)) => {
            counters.add_user_abort();
            return false;
        }
        Err(_) => {
            counters.add_abort();
            return false;
        }
    }
    let (read_set, write_set) = ctx.into_sets();
    let recorded_reads = history.map(|_| read_set.clone());
    // The Silo OCC validate-and-install step is the only lock-or-validate
    // work STAR does (the partitioned phase commits lock-free), so its time
    // is metered for the latency-source breakdown.
    let validate_start = Instant::now();
    let commit = commit_single_master(db, read_set, write_set, epoch, &mut state.tid_gen);
    counters.add_lock_or_validate(validate_start.elapsed());
    let output = match commit {
        Ok(output) => output,
        Err(_) => {
            counters.add_abort();
            return false;
        }
    };
    if let Some(history) = history {
        history.record(CommittedTxn::from_sets(
            epoch,
            ExecutionPhase::SingleMaster,
            MASTER_EXECUTOR_OFFSET + worker_id as u64,
            output.tid,
            recorded_reads.as_deref().unwrap_or(&[]),
            &output.write_set,
        ));
    }
    let entries = build_log_entries(
        &output.write_set,
        output.tid,
        config.replication_strategy,
        ExecutionPhase::SingleMaster,
    );
    // Encode once; per-target relevance filtering routes on the mirrored
    // partition header, so no payload is ever cloned or re-encoded.
    let encoded = EncodedEntry::encode_all(entries);
    match stage {
        Some(stage) => {
            for &target in healthy {
                for entry in &encoded {
                    if config.node_stores_partition(target, entry.partition()) {
                        stage.push(target, entry.clone());
                    }
                }
            }
        }
        None => {
            for &target in healthy {
                let relevant: Vec<EncodedEntry> = encoded
                    .iter()
                    .filter(|e| config.node_stores_partition(target, e.partition()))
                    .cloned()
                    .collect();
                if relevant.is_empty() {
                    continue;
                }
                let batch = ReplicationBatch { from_node: master, epoch, entries: relevant };
                counters.add_replication_bytes(batch.wire_size() as u64);
                let _ = transport.send(target, batch);
            }
        }
    }
    if config.replication_mode == ReplicationMode::Sync && !healthy.is_empty() {
        // Synchronous replication: the write locks are held for a round trip
        // to the replicas before the transaction can release them.
        std::thread::sleep(config.network_latency * 2);
    }
    if let Some(wal) = wal {
        append_writes_to_wal(wal, &output.write_set, output.tid, counters);
    }
    counters.add_commit();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::KvWorkload;
    use rand::RngCore;
    use star_net::SendError;
    use star_storage::DatabaseBuilder;

    fn config() -> ClusterConfig {
        ClusterConfig::builder()
            .nodes(2)
            .full_replicas(1)
            .workers_per_node(2)
            .seed(7)
            .build()
            .expect("valid test config")
    }

    /// A transport that accepts and discards everything, for driving the
    /// execution paths without a cluster.
    struct NullTransport;

    impl Transport<ReplicationBatch> for NullTransport {
        fn node(&self) -> usize {
            0
        }

        fn num_nodes(&self) -> usize {
            1
        }

        fn send(&self, _to: usize, _payload: ReplicationBatch) -> Result<(), SendError> {
            Ok(())
        }
    }

    fn kv_db(workload: &KvWorkload) -> Database {
        let mut builder = DatabaseBuilder::new(workload.partitions);
        for spec in workload.catalog() {
            builder = builder.table(spec);
        }
        let db = builder.build();
        for p in 0..workload.partitions {
            workload.load_partition(&db, p);
        }
        db
    }

    #[test]
    fn partition_fast_forward_matches_really_executed_attempts() {
        let config = config();
        let workload =
            KvWorkload { partitions: 2, rows_per_partition: 16, cross_partition_fraction: 0.3 };
        let db = kv_db(&workload);
        let counters = RunCounters::new();

        // One worker really executes `n` attempts; its twin only
        // fast-forwards. Their RNG streams must be in lockstep afterwards.
        let n = 7u64;
        let mut executed = PartitionWorkerState::new(&config, 0);
        for _ in 0..n {
            run_one_partitioned_txn(
                0,
                0,
                &[],
                &db,
                &NullTransport,
                &workload,
                &counters,
                None,
                None,
                1,
                ReplicationStrategy::Operation,
                &mut executed,
                None,
            );
        }
        let mut forwarded = PartitionWorkerState::new(&config, 0);
        forwarded.fast_forward(&workload, 0, n);
        assert_eq!(executed.rng.next_u64(), forwarded.rng.next_u64());
    }

    #[test]
    fn master_fast_forward_matches_really_executed_attempts() {
        let config = config();
        let workload =
            KvWorkload { partitions: 2, rows_per_partition: 16, cross_partition_fraction: 0.3 };
        let db = kv_db(&workload);
        let counters = RunCounters::new();

        let n = 7u64;
        let mut executed = MasterWorkerState::new(&config, 1);
        for _ in 0..n {
            run_one_master_txn(
                1,
                0,
                &[],
                &config,
                &db,
                &NullTransport,
                &workload,
                &counters,
                None,
                None,
                1,
                &mut executed,
                None,
            );
        }
        let mut forwarded = MasterWorkerState::new(&config, 1);
        forwarded.fast_forward(&workload, 1, config.partitions, n);
        assert_eq!(executed.rng.next_u64(), forwarded.rng.next_u64());
    }

    #[test]
    fn fresh_tid_generator_matches_carried_one_across_an_epoch_boundary() {
        // The fast-forward contract deliberately skips the TID generator:
        // failover always lands past an epoch fence, and TIDs are
        // epoch-major, so a fresh generator's first TID in the new epoch
        // equals what the old generator would have produced.
        let mut carried = TidGenerator::new();
        for _ in 0..5 {
            carried.generate(3, Tid::ZERO);
        }
        let mut fresh = TidGenerator::new();
        assert_eq!(carried.generate(4, Tid::ZERO), fresh.generate(4, Tid::ZERO));
        // And with an observed record TID from the older epoch in play the
        // epoch-major ordering still lets the fresh generator win.
        let observed = Tid::new(3, 900);
        let mut fresh2 = TidGenerator::new();
        assert_eq!(Tid::new(5, 1), fresh2.generate(5, observed));
    }

    #[test]
    fn worker_seeds_are_per_index_and_reproducible() {
        let config = config();
        let mut a = PartitionWorkerState::new(&config, 0);
        let mut a2 = PartitionWorkerState::new(&config, 0);
        let mut b = PartitionWorkerState::new(&config, 1);
        let (xa, xa2, xb) = (a.rng.next_u64(), a2.rng.next_u64(), b.rng.next_u64());
        assert_eq!(xa, xa2, "same partition, same seed, same stream");
        assert_ne!(xa, xb, "distinct partitions draw distinct streams");
    }

    #[test]
    fn master_and_partition_streams_differ() {
        let config = config();
        let mut p = PartitionWorkerState::new(&config, 0);
        let mut m = MasterWorkerState::new(&config, 0);
        assert_ne!(p.rng.next_u64(), m.rng.next_u64());
    }
}
