//! Messages exchanged between nodes of the simulated STAR cluster.

use star_net::Message;
use star_replication::{EncodedEntry, LogEntry};

/// A batch of replicated writes shipped from the node that committed them to
/// a node holding a secondary copy of the affected partitions.
///
/// Entries travel in their canonical encoded form ([`EncodedEntry`]): the
/// producer encodes each write exactly once, and fanning the batch out to
/// several replicas is a refcount bump per entry instead of a deep row
/// clone. Receivers route on the mirrored header fields and decode a payload
/// only at apply time.
#[derive(Debug, Clone)]
pub struct ReplicationBatch {
    /// Node that produced (mastered) the writes.
    pub from_node: usize,
    /// Epoch the writes belong to.
    pub epoch: u32,
    /// The writes themselves, in commit stream order.
    pub entries: Vec<EncodedEntry>,
}

impl ReplicationBatch {
    /// Builds a batch by encoding freshly committed `entries` once.
    pub fn from_entries(from_node: usize, epoch: u32, entries: Vec<LogEntry>) -> Self {
        ReplicationBatch { from_node, epoch, entries: EncodedEntry::encode_all(entries) }
    }

    /// Decodes every entry back into its in-memory form (tests, inspection).
    pub fn decode_entries(&self) -> star_common::Result<Vec<LogEntry>> {
        self.entries.iter().map(EncodedEntry::decode).collect()
    }
}

impl Message for ReplicationBatch {
    fn wire_size(&self) -> usize {
        // from_node + epoch header, then the encoded entries.
        8 + self.entries.iter().map(EncodedEntry::wire_size).sum::<usize>()
    }

    /// Byzantine corruption of the replication stream: one entry's payload
    /// arrives bit-flipped. The receiving replica applies it like any other
    /// write, so the corruption lands silently — it is the serializability
    /// checker / replica comparison / disk recovery that must catch the
    /// divergence, never the transport.
    fn corrupt(&mut self, salt: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let index = (salt as usize) % self.entries.len();
        self.entries[index].corrupt_payload(salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_replication::Payload;

    #[test]
    fn wire_size_sums_entries() {
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(1)])),
        };
        let batch = ReplicationBatch::from_entries(0, 1, vec![entry.clone(), entry.clone()]);
        assert_eq!(batch.wire_size(), 8 + 2 * entry.encode_to_bytes().len());
        assert_eq!(batch.decode_entries().unwrap(), vec![entry.clone(), entry]);
    }

    #[test]
    fn corrupt_flips_exactly_one_entry() {
        let entry = |v: u64| LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(v)])),
        };
        let pristine = ReplicationBatch::from_entries(0, 1, vec![entry(10), entry(20)]);
        let mut corrupted = pristine.clone();
        assert!(corrupted.corrupt(0x0101));
        let changed: Vec<bool> = pristine
            .decode_entries()
            .unwrap()
            .iter()
            .zip(corrupted.decode_entries().unwrap())
            .map(|(a, b)| a.payload != b.payload)
            .collect();
        assert_eq!(changed.iter().filter(|c| **c).count(), 1, "exactly one entry must change");
        // TIDs and addressing are untouched: the corruption is in the data,
        // so the replica applies it silently.
        for (a, b) in
            pristine.decode_entries().unwrap().iter().zip(corrupted.decode_entries().unwrap())
        {
            assert_eq!((a.table, a.partition, a.key, a.tid), (b.table, b.partition, b.key, b.tid));
        }
        // Determinism: the same salt flips the same bit.
        let mut again = pristine.clone();
        assert!(again.corrupt(0x0101));
        assert_eq!(again.entries[0], corrupted.entries[0]);
        assert_eq!(again.entries[1], corrupted.entries[1]);
    }

    #[test]
    fn corrupt_mutates_operation_payloads_too() {
        let op_entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Operation(star_common::Operation::AddI64 { field: 0, delta: 1 }),
        };
        let mut batch = ReplicationBatch::from_entries(1, 2, vec![op_entry]);
        assert!(batch.corrupt(7));
        let Payload::Operation(star_common::Operation::AddI64 { delta, .. }) =
            batch.decode_entries().unwrap()[0].payload
        else {
            panic!("payload kind must be preserved");
        };
        assert_ne!(delta, 1, "the operation's delta must be bit-flipped");
    }

    #[test]
    fn empty_batches_cannot_be_corrupted() {
        let mut batch = ReplicationBatch { from_node: 0, epoch: 1, entries: vec![] };
        assert!(!batch.corrupt(99));
    }
}
