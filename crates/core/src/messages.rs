//! Messages exchanged between nodes of the simulated STAR cluster.

use star_net::Message;
use star_replication::LogEntry;

/// A batch of replicated writes shipped from the node that committed them to
/// a node holding a secondary copy of the affected partitions.
#[derive(Debug, Clone)]
pub struct ReplicationBatch {
    /// Node that produced (mastered) the writes.
    pub from_node: usize,
    /// Epoch the writes belong to.
    pub epoch: u32,
    /// The writes themselves.
    pub entries: Vec<LogEntry>,
}

impl Message for ReplicationBatch {
    fn wire_size(&self) -> usize {
        // from_node + epoch header, then the entries.
        8 + self.entries.iter().map(LogEntry::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_replication::Payload;

    #[test]
    fn wire_size_sums_entries() {
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(1)])),
        };
        let batch = ReplicationBatch {
            from_node: 0,
            epoch: 1,
            entries: vec![entry.clone(), entry.clone()],
        };
        assert_eq!(batch.wire_size(), 8 + 2 * entry.wire_size());
    }
}
