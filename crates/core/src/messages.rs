//! Messages exchanged between nodes of the simulated STAR cluster.

use star_net::Message;
use star_replication::{LogEntry, Payload};

/// A batch of replicated writes shipped from the node that committed them to
/// a node holding a secondary copy of the affected partitions.
#[derive(Debug, Clone)]
pub struct ReplicationBatch {
    /// Node that produced (mastered) the writes.
    pub from_node: usize,
    /// Epoch the writes belong to.
    pub epoch: u32,
    /// The writes themselves.
    pub entries: Vec<LogEntry>,
}

impl Message for ReplicationBatch {
    fn wire_size(&self) -> usize {
        // from_node + epoch header, then the entries.
        8 + self.entries.iter().map(LogEntry::wire_size).sum::<usize>()
    }

    /// Byzantine corruption of the replication stream: one entry's payload
    /// arrives bit-flipped. The receiving replica applies it like any other
    /// write, so the corruption lands silently — it is the serializability
    /// checker / replica comparison / disk recovery that must catch the
    /// divergence, never the transport.
    fn corrupt(&mut self, salt: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let index = (salt as usize) % self.entries.len();
        match &mut self.entries[index].payload {
            Payload::Value(row) => row.corrupt(salt),
            Payload::Operation(op) => op.corrupt(salt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_replication::Payload;

    #[test]
    fn wire_size_sums_entries() {
        let entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(1)])),
        };
        let batch = ReplicationBatch {
            from_node: 0,
            epoch: 1,
            entries: vec![entry.clone(), entry.clone()],
        };
        assert_eq!(batch.wire_size(), 8 + 2 * entry.wire_size());
    }

    #[test]
    fn corrupt_flips_exactly_one_entry() {
        let entry = |v: u64| LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row([FieldValue::U64(v)])),
        };
        let pristine =
            ReplicationBatch { from_node: 0, epoch: 1, entries: vec![entry(10), entry(20)] };
        let mut corrupted = pristine.clone();
        assert!(corrupted.corrupt(0x0101));
        let changed: Vec<bool> = pristine
            .entries
            .iter()
            .zip(&corrupted.entries)
            .map(|(a, b)| a.payload != b.payload)
            .collect();
        assert_eq!(changed.iter().filter(|c| **c).count(), 1, "exactly one entry must change");
        // TIDs and addressing are untouched: the corruption is in the data,
        // so the replica applies it silently.
        for (a, b) in pristine.entries.iter().zip(&corrupted.entries) {
            assert_eq!((a.table, a.partition, a.key, a.tid), (b.table, b.partition, b.key, b.tid));
        }
        // Determinism: the same salt flips the same bit.
        let mut again = pristine.clone();
        assert!(again.corrupt(0x0101));
        assert_eq!(again.entries[0].payload, corrupted.entries[0].payload);
        assert_eq!(again.entries[1].payload, corrupted.entries[1].payload);
    }

    #[test]
    fn corrupt_mutates_operation_payloads_too() {
        let op_entry = LogEntry {
            table: 0,
            partition: 0,
            key: 1,
            tid: Tid::new(1, 1),
            payload: Payload::Operation(star_common::Operation::AddI64 { field: 0, delta: 1 }),
        };
        let mut batch = ReplicationBatch { from_node: 1, epoch: 2, entries: vec![op_entry] };
        assert!(batch.corrupt(7));
        let Payload::Operation(star_common::Operation::AddI64 { delta, .. }) =
            batch.entries[0].payload
        else {
            panic!("payload kind must be preserved");
        };
        assert_ne!(delta, 1, "the operation's delta must be bit-flipped");
    }

    #[test]
    fn empty_batches_cannot_be_corrupted() {
        let mut batch = ReplicationBatch { from_node: 0, epoch: 1, entries: vec![] };
        assert!(!batch.corrupt(99));
    }
}
