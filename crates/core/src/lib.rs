//! The STAR engine: phase-switching transaction execution over asymmetric
//! replication.
//!
//! This crate contains the paper's primary contribution:
//!
//! * [`model`] — the analytical model of Section 6.3 (Equations 3–5 and the
//!   improvement/speedup formulas plotted in Figures 3 and 10).
//! * [`phase`] — the phase-switching plan: how the iteration time `e` is
//!   split into `τp` (partitioned phase) and `τs` (single-master phase) from
//!   the measured throughputs and the cross-partition percentage
//!   (Equations 1–2, Figure 5).
//! * [`workload`] — the workload abstraction the engines execute
//!   (single-partition vs cross-partition stored procedures); implemented by
//!   `star-workloads` for YCSB and TPC-C.
//! * [`cluster`] — construction of a simulated cluster: one [`star_storage`]
//!   replica per node (full replicas on the first `f` nodes, partial replicas
//!   elsewhere), connected by a [`star_net`] simulated network.
//! * [`engine`] — the phase-switching execution loop itself: partitioned
//!   phase, replication fence, single-master phase, replication fence,
//!   epoch advancement, statistics.
//! * [`exec`] — the per-transaction execution paths shared by the in-process
//!   engine and the TCP deployment (`star-serverd`), parameterized over the
//!   [`star_net::Transport`] seam.
//! * [`failure`] — failure-scenario classification (the four recovery cases
//!   of Section 4.5.3), epoch revert and node recovery.
//! * [`history`] — optional committed-history recording (epoch-buffered, so
//!   reverted epochs vanish exactly as their effects do); the `star-chaos`
//!   serializability checker consumes these histories.
//!
//! The cluster is simulated in one process (see `DESIGN.md` for the
//! substitution argument); all the protocol logic — TID rules, Thomas write
//! rule, replication fences, hybrid replication — is the real thing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod engine;
pub mod engine_api;
pub mod exec;
pub mod failure;
pub mod history;
pub mod messages;
pub mod model;
pub mod phase;
pub mod testing;
pub mod workload;

pub use cluster::StarCluster;
pub use engine::{InterruptedRecovery, MasterElection, RecoveryFault, StarEngine, SyncReplication};
pub use engine_api::Engine;
pub use failure::{FailureCase, FailureVectorMismatch};
pub use history::{CommittedTxn, HistoryRecorder, RecordedRead, RecordedWrite};
pub use model::AnalyticalModel;
pub use phase::PhasePlan;
pub use workload::{Workload, WorkloadMix};
