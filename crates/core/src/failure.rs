//! Failure-scenario classification and recovery helpers (Section 4.5).
//!
//! When the replication fence detects failed nodes, the behaviour of the
//! surviving cluster depends on which *kinds* of replicas remain. The paper
//! enumerates four cases (Figure 7); [`FailureCase::classify`] reproduces
//! that classification and the engine uses it to decide whether it can keep
//! running the phase-switching algorithm, must fall back to distributed
//! concurrency control, or must stop and recover from disk.

use star_common::ClusterConfig;

/// Error returned by [`FailureCase::classify`] when the failure vector does
/// not describe the configured cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureVectorMismatch {
    /// Number of nodes the configuration describes.
    pub expected: usize,
    /// Length of the failure vector that was passed.
    pub got: usize,
}

impl std::fmt::Display for FailureVectorMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failure vector length mismatch: cluster has {} nodes but the vector has {} entries",
            self.expected, self.got
        )
    }
}

impl std::error::Error for FailureVectorMismatch {}

/// The four failure scenarios of Section 4.5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCase {
    /// No node failed at all.
    NoFailure,
    /// Case 1: at least one full replica and one complete partial replica
    /// remain — the phase-switching algorithm keeps running unchanged.
    FullAndPartialRemain,
    /// Case 2: no full replica remains, but the partial replicas still cover
    /// the database — the system falls back to distributed concurrency
    /// control (e.g. Dist. OCC) until a full replica is restored.
    OnlyPartialRemains,
    /// Case 3: the partial replicas no longer cover the database, but a full
    /// replica remains — lost partitions are re-mastered onto the full
    /// replica and phase switching continues (degenerating to single-node
    /// execution if every partial replica is gone).
    OnlyFullRemains,
    /// Case 4: neither a full replica nor a complete partial replica remains
    /// — the system loses availability and must recover from checkpoints and
    /// logs on disk.
    NothingRemains,
}

impl FailureCase {
    /// Classifies the state of a cluster given which nodes have failed.
    ///
    /// `failed[n]` is true if node `n` is currently failed. Nodes
    /// `0..config.full_replicas` hold full replicas; the remaining nodes hold
    /// the partitions assigned to them by the layout (primary + secondary).
    ///
    /// Returns [`FailureVectorMismatch`] if `failed` does not have exactly
    /// one entry per configured node — a mismatched vector cannot be
    /// classified meaningfully, and silently truncating or padding it could
    /// mask a real failure.
    pub fn classify(
        config: &ClusterConfig,
        failed: &[bool],
    ) -> Result<FailureCase, FailureVectorMismatch> {
        if failed.len() != config.num_nodes {
            return Err(FailureVectorMismatch { expected: config.num_nodes, got: failed.len() });
        }
        if failed.iter().all(|f| !f) {
            return Ok(FailureCase::NoFailure);
        }
        // The length was validated above; iterator-based access keeps this
        // classification — consulted on every fence — structurally panic-free.
        let full_remains = failed.iter().take(config.full_replicas).any(|f| !f);
        let partial_covers = (0..config.partitions).all(|p| {
            failed
                .iter()
                .enumerate()
                .skip(config.full_replicas)
                .any(|(n, f)| !f && config.node_stores_partition(n, p))
        });
        Ok(match (full_remains, partial_covers) {
            (true, true) => FailureCase::FullAndPartialRemain,
            (false, true) => FailureCase::OnlyPartialRemains,
            (true, false) => FailureCase::OnlyFullRemains,
            (false, false) => FailureCase::NothingRemains,
        })
    }

    /// Whether the phase-switching algorithm can keep running in this state
    /// (Cases 1 and 3; Case 2 requires the distributed fallback and Case 4
    /// halts the system).
    pub fn phase_switching_available(self) -> bool {
        matches!(
            self,
            FailureCase::NoFailure
                | FailureCase::FullAndPartialRemain
                | FailureCase::OnlyFullRemains
        )
    }

    /// Whether the system keeps serving transactions at all.
    pub fn available(self) -> bool {
        !matches!(self, FailureCase::NothingRemains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::ClusterConfig;

    /// A hand-checkable miniature of Figure 7: f = 2 full replicas (nodes 0
    /// and 1), k = 2 partial replicas (nodes 2 and 3), 4 partitions.
    ///
    /// With the default layout the partial holders of each partition are:
    /// partition 0 → {2}, partition 1 → {3}, partition 2 → {2, 3},
    /// partition 3 → {2, 3}.
    fn mini_config() -> ClusterConfig {
        let mut c = ClusterConfig::with_nodes(4);
        c.full_replicas = 2;
        c.partitions = 4;
        c
    }

    fn failed(nodes: &[usize], total: usize) -> Vec<bool> {
        let mut v = vec![false; total];
        for &n in nodes {
            v[n] = true;
        }
        v
    }

    #[test]
    fn no_failure() {
        let c = mini_config();
        let case = FailureCase::classify(&c, &failed(&[], 4)).unwrap();
        assert_eq!(case, FailureCase::NoFailure);
        assert!(case.phase_switching_available());
        assert!(case.available());
    }

    #[test]
    fn exhaustive_table_over_every_failure_combination() {
        // Every subset of failed nodes in the miniature Figure-7 cluster,
        // with the expected case derived from first principles:
        //   full remains  ⇔ node 0 or node 1 survives;
        //   partials cover ⇔ node 2 survives (sole partial holder of
        //   partition 0) and node 3 survives (sole partial holder of
        //   partition 1).
        let c = mini_config();
        for mask in 0u32..16 {
            let failed_vec: Vec<bool> = (0..4).map(|n| mask & (1 << n) != 0).collect();
            let full_remains = !failed_vec[0] || !failed_vec[1];
            let partial_covers = !failed_vec[2] && !failed_vec[3];
            let expected = if mask == 0 {
                FailureCase::NoFailure
            } else {
                match (full_remains, partial_covers) {
                    (true, true) => FailureCase::FullAndPartialRemain,
                    (false, true) => FailureCase::OnlyPartialRemains,
                    (true, false) => FailureCase::OnlyFullRemains,
                    (false, false) => FailureCase::NothingRemains,
                }
            };
            let got = FailureCase::classify(&c, &failed_vec).unwrap();
            assert_eq!(got, expected, "mask {mask:04b}");
            // The availability helpers must agree with the case table.
            assert_eq!(got.available(), got != FailureCase::NothingRemains, "mask {mask:04b}");
            assert_eq!(
                got.phase_switching_available(),
                matches!(
                    got,
                    FailureCase::NoFailure
                        | FailureCase::FullAndPartialRemain
                        | FailureCase::OnlyFullRemains
                ),
                "mask {mask:04b}"
            );
        }
    }

    #[test]
    fn case1_full_and_partial_remain() {
        let c = mini_config();
        // One full replica fails; the other full replica and both partial
        // replicas survive, so phase switching continues unchanged.
        let case = FailureCase::classify(&c, &failed(&[1], 4)).unwrap();
        assert_eq!(case, FailureCase::FullAndPartialRemain);
        assert!(case.phase_switching_available());
    }

    #[test]
    fn case2_only_partial_remains() {
        let c = mini_config();
        // Both full replicas fail; the partial replicas still cover every
        // partition, so the system falls back to distributed CC.
        let case = FailureCase::classify(&c, &failed(&[0, 1], 4)).unwrap();
        assert_eq!(case, FailureCase::OnlyPartialRemains);
        assert!(!case.phase_switching_available());
        assert!(case.available());
    }

    #[test]
    fn case3_only_full_remains() {
        let c = mini_config();
        // Node 2 is the only partial holder of partition 0; losing it breaks
        // partial coverage even though node 3 is still alive.
        let case = FailureCase::classify(&c, &failed(&[2], 4)).unwrap();
        assert_eq!(case, FailureCase::OnlyFullRemains);
        assert!(case.phase_switching_available());
    }

    #[test]
    fn case3_all_partials_lost() {
        let c = mini_config();
        let case = FailureCase::classify(&c, &failed(&[2, 3], 4)).unwrap();
        assert_eq!(case, FailureCase::OnlyFullRemains);
    }

    #[test]
    fn case4_nothing_remains() {
        let c = mini_config();
        // Both full replicas and the sole partial holder of partition 0 fail.
        let case = FailureCase::classify(&c, &failed(&[0, 1, 2], 4)).unwrap();
        assert_eq!(case, FailureCase::NothingRemains);
        assert!(!case.available());
    }

    #[test]
    fn boundary_all_nodes_failed() {
        let c = mini_config();
        let case = FailureCase::classify(&c, &failed(&[0, 1, 2, 3], 4)).unwrap();
        assert_eq!(case, FailureCase::NothingRemains);
        assert!(!case.available());
        assert!(!case.phase_switching_available());
    }

    #[test]
    fn boundary_only_full_replicas_failed() {
        // f = 1: losing exactly the full replica leaves the partials, which
        // cover the database → Case 2.
        let mut c = ClusterConfig::with_nodes(4);
        c.full_replicas = 1;
        c.partitions = 4;
        let case = FailureCase::classify(&c, &failed(&[0], 4)).unwrap();
        assert_eq!(case, FailureCase::OnlyPartialRemains);
        // f = 4 (every node full): losing all full replicas is losing
        // everything, and there are no partials to cover the database.
        let mut c = ClusterConfig::with_nodes(4);
        c.full_replicas = 4;
        c.partitions = 4;
        let case = FailureCase::classify(&c, &failed(&[0, 1, 2, 3], 4)).unwrap();
        assert_eq!(case, FailureCase::NothingRemains);
        // ... but losing all but one keeps phase switching alive (Case 3:
        // no partial replicas exist, so coverage is vacuously broken).
        let case = FailureCase::classify(&c, &failed(&[1, 2, 3], 4)).unwrap();
        assert_eq!(case, FailureCase::OnlyFullRemains);
        assert!(case.phase_switching_available());
    }

    #[test]
    fn boundary_single_node_cluster() {
        let mut c = ClusterConfig::with_nodes(1);
        c.full_replicas = 1;
        c.partitions = 2;
        assert_eq!(FailureCase::classify(&c, &[false]).unwrap(), FailureCase::NoFailure);
        assert_eq!(FailureCase::classify(&c, &[true]).unwrap(), FailureCase::NothingRemains);
    }

    #[test]
    fn partial_layout_covers_every_partition_when_healthy() {
        // Sanity-check the layout invariant the classification relies on: the
        // partial replicas together contain a full copy of the database.
        for nodes in 2..10usize {
            for f in 1..nodes {
                let mut c = ClusterConfig::with_nodes(nodes);
                c.full_replicas = f;
                c.partitions = nodes * 3;
                let healthy = failed(&[], nodes);
                let case = FailureCase::classify(&c, &healthy).unwrap();
                assert_eq!(case, FailureCase::NoFailure);
                if f < nodes {
                    for p in 0..c.partitions {
                        assert!(
                            (f..nodes).any(|n| c.node_stores_partition(n, p)),
                            "partition {p} not covered by partials (n={nodes}, f={f})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_vector_length_is_a_typed_error() {
        let c = mini_config();
        let err = FailureCase::classify(&c, &[false; 3]).unwrap_err();
        assert_eq!(err, FailureVectorMismatch { expected: 4, got: 3 });
        assert!(err.to_string().contains("4 nodes"));
        assert!(err.to_string().contains("3 entries"));
        let err = FailureCase::classify(&c, &[false; 5]).unwrap_err();
        assert_eq!(err.got, 5);
    }
}
