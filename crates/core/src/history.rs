//! Committed-transaction history recording.
//!
//! A [`HistoryRecorder`] can be attached to any engine (the STAR engine and
//! every baseline). Each committed transaction is recorded with the exact
//! versions its reads observed (the TIDs validated at commit time) and the
//! rows its writes installed. The record is *epoch-buffered* for engines
//! with an epoch-based group commit: a transaction only becomes part of the
//! committed history when the replication fence closing its epoch commits
//! the epoch — if the fence instead reverts the epoch (failure detected,
//! Figure 6), the epoch's records are discarded, exactly as its effects are
//! discarded from every replica. That makes the recorded history *the*
//! client-visible history, which is what the offline serializability checker
//! in `star-chaos` validates against a sequential oracle.
//!
//! Recording is entirely optional: engines hold an `Option<Arc<…>>` and pay
//! one branch per commit when no recorder is attached.

use parking_lot::Mutex;
use star_common::{Epoch, Key, PartitionId, Row, TableId, Tid};
use star_occ::{ReadEntry, WriteEntry};
use star_replication::ExecutionPhase;

/// Executor ids for single-master workers are offset by this constant so
/// they never collide with partition ids (partitioned-phase executors).
pub const MASTER_EXECUTOR_OFFSET: u64 = 1 << 32;

/// One observed read: which version (TID) of which record the transaction
/// saw. This is the version that passed OCC validation (or was protected by
/// a lock), so it is exactly the version the commit depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRead {
    /// Table of the record.
    pub table: TableId,
    /// Partition of the record.
    pub partition: PartitionId,
    /// Primary key.
    pub key: Key,
    /// TID of the version that was observed. [`Tid::ZERO`] means the
    /// initially loaded version (never written by a committed transaction).
    pub tid: Tid,
}

/// One installed write: the full row the transaction left behind. The
/// version's TID is the transaction's commit TID.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedWrite {
    /// Table of the record.
    pub table: TableId,
    /// Partition of the record.
    pub partition: PartitionId,
    /// Primary key.
    pub key: Key,
    /// The installed row.
    pub row: Row,
}

/// A committed transaction as seen by the history recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedTxn {
    /// Epoch the transaction committed in.
    pub epoch: Epoch,
    /// Which execution phase committed it.
    pub phase: ExecutionPhase,
    /// The executor that ran it: the partition id in the partitioned phase,
    /// [`MASTER_EXECUTOR_OFFSET`]` + worker` in the single-master phase.
    pub executor: u64,
    /// The commit TID.
    pub tid: Tid,
    /// The versions the transaction read.
    pub reads: Vec<RecordedRead>,
    /// The rows the transaction installed, in execution order. If the same
    /// key appears twice the later entry is the installed one (last write
    /// wins, matching the commit protocols).
    pub writes: Vec<RecordedWrite>,
}

impl CommittedTxn {
    /// Builds a record from an engine's read/write sets.
    pub fn from_sets(
        epoch: Epoch,
        phase: ExecutionPhase,
        executor: u64,
        tid: Tid,
        reads: &[ReadEntry],
        writes: &[WriteEntry],
    ) -> Self {
        CommittedTxn {
            epoch,
            phase,
            executor,
            tid,
            reads: reads
                .iter()
                .map(|r| RecordedRead {
                    table: r.table,
                    partition: r.partition,
                    key: r.key,
                    tid: r.tid,
                })
                .collect(),
            writes: writes
                .iter()
                .map(|w| RecordedWrite {
                    table: w.table,
                    partition: w.partition,
                    key: w.key,
                    row: w.row.clone(),
                })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Records of the epoch(s) still in flight (not yet closed by a fence).
    pending: Vec<CommittedTxn>,
    /// The client-visible committed history, in commit order.
    committed: Vec<CommittedTxn>,
    /// Epochs whose records were discarded by an epoch revert.
    reverted: Vec<Epoch>,
}

/// Thread-safe recorder of the committed transaction history.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    inner: Mutex<Inner>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transaction that committed inside a still-open epoch. The
    /// record becomes final only when [`finalize_epoch`](Self::finalize_epoch)
    /// commits the epoch.
    pub fn record(&self, txn: CommittedTxn) {
        self.inner.lock().pending.push(txn);
    }

    /// Records a transaction that is final immediately (engines without an
    /// epoch revert, i.e. every baseline).
    pub fn record_final(&self, txn: CommittedTxn) {
        self.inner.lock().committed.push(txn);
    }

    /// Closes `epoch` at a fence. With `committed == true` the epoch's
    /// pending records join the final history; otherwise the epoch was
    /// reverted and its records are discarded (the group commit never
    /// released them to clients).
    ///
    /// Only records *tagged with* `epoch` are finalized — with pipelined
    /// group commit two epochs can be in flight at once (epoch `N` draining
    /// behind the fence while `N+1` executes), and finalizing one must never
    /// drag the other's records along.
    pub fn finalize_epoch(&self, epoch: Epoch, committed: bool) {
        let mut inner = self.inner.lock();
        let (this_epoch, rest): (Vec<_>, Vec<_>) =
            std::mem::take(&mut inner.pending).into_iter().partition(|t| t.epoch == epoch);
        inner.pending = rest;
        if committed {
            inner.committed.extend(this_epoch);
        } else {
            inner.reverted.push(epoch);
        }
    }

    /// Number of records still buffered in open epochs (tests).
    pub fn pending_len(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// A copy of the committed history, in commit order.
    pub fn committed(&self) -> Vec<CommittedTxn> {
        self.inner.lock().committed.clone()
    }

    /// Number of transactions in the committed history.
    pub fn committed_len(&self) -> usize {
        self.inner.lock().committed.len()
    }

    /// Epochs discarded by an epoch revert, in detection order. Disk
    /// recovery uses this to skip WAL entries of epochs that never
    /// group-committed.
    pub fn reverted_epochs(&self) -> Vec<Epoch> {
        self.inner.lock().reverted.clone()
    }

    /// A 64-bit FNV-1a fingerprint of the committed history (epochs, phases,
    /// executors, TIDs, read versions and written rows, in commit order).
    /// Two runs with the same seed must produce the same fingerprint — the
    /// determinism contract `star-chaos` verifies.
    pub fn fingerprint(&self) -> u64 {
        let inner = self.inner.lock();
        let mut hash = Fnv::new();
        for txn in &inner.committed {
            hash.write_u64(txn.epoch as u64);
            hash.write_u64(match txn.phase {
                ExecutionPhase::Partitioned => 1,
                ExecutionPhase::SingleMaster => 2,
            });
            hash.write_u64(txn.executor);
            hash.write_u64(txn.tid.raw());
            hash.write_u64(txn.reads.len() as u64);
            for r in &txn.reads {
                hash.write_u64(r.table as u64);
                hash.write_u64(r.partition as u64);
                hash.write_u64(r.key);
                hash.write_u64(r.tid.raw());
            }
            hash.write_u64(txn.writes.len() as u64);
            for w in &txn.writes {
                hash.write_u64(w.table as u64);
                hash.write_u64(w.partition as u64);
                hash.write_u64(w.key);
                hash_row(&mut hash, &w.row);
            }
        }
        hash.finish()
    }
}

fn hash_row(hash: &mut Fnv, row: &Row) {
    use star_common::FieldValue;
    hash.write_u64(row.len() as u64);
    for field in row.iter() {
        match field {
            FieldValue::U64(v) => {
                hash.write_u64(1);
                hash.write_u64(*v);
            }
            FieldValue::I64(v) => {
                hash.write_u64(2);
                hash.write_u64(*v as u64);
            }
            FieldValue::F64(v) => {
                hash.write_u64(3);
                hash.write_u64(v.to_bits());
            }
            FieldValue::Str(s) => {
                hash.write_u64(4);
                hash.write_bytes(s.as_bytes());
            }
            FieldValue::Bytes(b) => {
                hash.write_u64(5);
                hash.write_bytes(b);
            }
        }
    }
}

/// Minimal FNV-1a implementation (no std `Hasher` indirection, stable across
/// platforms and releases — fingerprints are compared across runs).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.0 = bytes
            .iter()
            .fold(self.0, |acc, b| (acc ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3));
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;

    fn txn(epoch: Epoch, key: Key, value: u64) -> CommittedTxn {
        CommittedTxn {
            epoch,
            phase: ExecutionPhase::Partitioned,
            executor: 0,
            tid: Tid::new(epoch, key + 1),
            reads: vec![RecordedRead { table: 0, partition: 0, key, tid: Tid::ZERO }],
            writes: vec![RecordedWrite {
                table: 0,
                partition: 0,
                key,
                row: row([FieldValue::U64(value)]),
            }],
        }
    }

    #[test]
    fn committed_epochs_join_the_history() {
        let rec = HistoryRecorder::new();
        rec.record(txn(1, 0, 10));
        rec.record(txn(1, 1, 11));
        assert_eq!(rec.committed_len(), 0, "pending records are not client-visible");
        rec.finalize_epoch(1, true);
        assert_eq!(rec.committed_len(), 2);
        assert!(rec.reverted_epochs().is_empty());
    }

    #[test]
    fn reverted_epochs_are_discarded() {
        let rec = HistoryRecorder::new();
        rec.record(txn(1, 0, 10));
        rec.finalize_epoch(1, true);
        rec.record(txn(2, 1, 20));
        rec.finalize_epoch(2, false);
        assert_eq!(rec.committed_len(), 1, "the reverted epoch must vanish");
        assert_eq!(rec.reverted_epochs(), vec![2]);
        assert_eq!(rec.committed()[0].epoch, 1);
    }

    #[test]
    fn finalize_only_touches_records_of_its_own_epoch() {
        // Two epochs in flight at once (pipelined group commit): closing one
        // must leave the other's records pending, in both directions.
        let rec = HistoryRecorder::new();
        rec.record(txn(1, 0, 10));
        rec.record(txn(2, 1, 20));
        rec.finalize_epoch(1, true);
        assert_eq!(rec.committed_len(), 1);
        assert_eq!(rec.pending_len(), 1, "epoch 2 must stay pending");
        rec.finalize_epoch(2, false);
        assert_eq!(rec.committed_len(), 1);
        assert_eq!(rec.pending_len(), 0);
        assert_eq!(rec.reverted_epochs(), vec![2]);

        let rec = HistoryRecorder::new();
        rec.record(txn(3, 0, 30));
        rec.record(txn(4, 1, 40));
        rec.finalize_epoch(3, false);
        assert_eq!(rec.pending_len(), 1, "epoch 4 must survive epoch 3's revert");
        rec.finalize_epoch(4, true);
        assert_eq!(rec.committed_len(), 1);
        assert_eq!(rec.committed()[0].epoch, 4);
    }

    #[test]
    fn record_final_bypasses_epoch_buffering() {
        let rec = HistoryRecorder::new();
        rec.record_final(txn(1, 0, 10));
        assert_eq!(rec.committed_len(), 1);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = HistoryRecorder::new();
        a.record_final(txn(1, 0, 10));
        let b = HistoryRecorder::new();
        b.record_final(txn(1, 0, 10));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = HistoryRecorder::new();
        c.record_final(txn(1, 0, 11));
        assert_ne!(a.fingerprint(), c.fingerprint());
        let empty = HistoryRecorder::new();
        assert_ne!(a.fingerprint(), empty.fingerprint());
    }
}
