//! Commit protocols: the Silo-variant OCC commit used in the single-master
//! phase, and the lock-free commit used in the partitioned phase.

use crate::rwset::{max_read_tid, write_lock_order, ReadSet, WriteSet};
use star_common::{AbortReason, Epoch, Error, Result, Row, Tid, TidGenerator};
use star_storage::{Database, Record};
use std::sync::Arc;

/// The result of a successful commit: the assigned TID and the write set that
/// must now be replicated and logged.
#[derive(Debug)]
pub struct CommitOutput {
    /// TID assigned to the transaction.
    pub tid: Tid,
    /// The writes the transaction installed, in execution order.
    pub write_set: WriteSet,
}

/// Resolves (or creates, for inserts) the record handles of a write set.
fn resolve_write_records(db: &Database, writes: &WriteSet) -> Result<Vec<Arc<Record>>> {
    writes
        .iter()
        .map(|w| {
            if w.insert {
                // Create the record if it does not exist yet; concurrent
                // inserters race benignly inside the index shard, and the
                // placeholder record is only constructed on an actual miss.
                db.get_or_insert_with(w.table, w.partition, w.key, || Record::new(Row::empty()))
            } else {
                db.get(w.table, w.partition, w.key)
            }
        })
        .collect()
}

/// Silo-variant OCC commit, used by STAR's single-master phase and by the
/// PB. OCC baseline.
///
/// Steps (Section 4.2 of the paper):
/// 1. lock every record in the write set, in a global order, to prevent
///    deadlock;
/// 2. validate the read set: abort if any record was modified (different
///    TID) or is locked by another transaction;
/// 3. generate the commit TID from the read set, write set and current
///    epoch;
/// 4. install the writes, tag them with the TID and release the locks.
///
/// On abort every acquired lock is released and
/// [`AbortReason::ValidationFailed`] is returned; the caller decides whether
/// to retry.
pub fn commit_single_master(
    db: &Database,
    read_set: ReadSet,
    write_set: WriteSet,
    epoch: Epoch,
    tid_gen: &mut TidGenerator,
) -> Result<CommitOutput> {
    // Phase 1: lock the *existing* records of the write set in global order.
    // Inserts of new keys are deliberately not materialised yet — creating
    // them before validation would leak placeholder records on the primary if
    // the transaction aborts, records that its replicas would never see.
    let mut order: Vec<usize> = (0..write_set.len()).collect();
    order.sort_by_key(|&i| write_lock_order(&write_set[i]));
    let records: Vec<Option<Arc<Record>>> = write_set
        .iter()
        .map(|w| {
            if w.insert {
                db.try_get(w.table, w.partition, w.key)
            } else {
                db.get(w.table, w.partition, w.key).map(Some)
            }
        })
        .collect::<Result<_>>()?;
    let mut locked: Vec<&Arc<Record>> = Vec::with_capacity(records.len());
    for &i in &order {
        let Some(rec) = &records[i] else { continue };
        if locked.iter().any(|r| Arc::ptr_eq(r, rec)) {
            continue;
        }
        rec.lock();
        locked.push(rec);
    }

    let unlock_all = |locked: &[&Arc<Record>]| {
        for rec in locked {
            rec.unlock();
        }
    };

    // Phase 2: validate the read set.
    let mut max_observed = max_read_tid(&read_set);
    for r in &read_set {
        let rec = match db.get(r.table, r.partition, r.key) {
            Ok(rec) => rec,
            Err(e) => {
                unlock_all(&locked);
                return Err(e);
            }
        };
        let meta = rec.meta();
        let we_hold_it = locked.iter().any(|l| Arc::ptr_eq(l, &rec));
        if meta.tid != r.tid || (meta.locked && !we_hold_it) {
            unlock_all(&locked);
            return Err(Error::Abort(AbortReason::ValidationFailed));
        }
    }
    for rec in &locked {
        max_observed = max_observed.max(rec.tid());
    }

    // Phase 3: TID assignment.
    let tid = tid_gen.generate(epoch, max_observed);

    // Phase 4: install writes and unlock. Each record is written exactly
    // once — if the same record appears several times in the write set, only
    // its last entry (in execution order) is installed, so last-write-wins
    // semantics match what the transaction observed through its context.
    // Inserts of keys that do not exist yet are installed through the Thomas
    // write path, which creates the record atomically; concurrent inserters
    // of the same key converge to the larger TID, exactly as replicas do.
    for &i in &order {
        match &records[i] {
            Some(rec) => {
                let has_later_duplicate = records
                    .iter()
                    .skip(i + 1)
                    .any(|other| other.as_ref().is_some_and(|o| Arc::ptr_eq(o, rec)));
                if has_later_duplicate {
                    continue;
                }
                if rec.is_locked() {
                    rec.write_and_unlock(write_set[i].row.clone(), tid);
                } else {
                    rec.apply_value_thomas(write_set[i].row.clone(), tid);
                }
            }
            None => {
                let w = &write_set[i];
                db.apply_value_write(w.table, w.partition, w.key, w.row.clone(), tid)?;
            }
        }
    }

    Ok(CommitOutput { tid, write_set })
}

/// Partitioned-phase commit (Section 4.1): the calling worker is the only
/// thread touching the partition, so no locks are taken and no read
/// validation is performed. A TID is still generated to tag the updated
/// records, so replication and recovery behave identically in both phases.
pub fn commit_partitioned(
    db: &Database,
    read_set: ReadSet,
    write_set: WriteSet,
    epoch: Epoch,
    tid_gen: &mut TidGenerator,
) -> Result<CommitOutput> {
    let records = resolve_write_records(db, &write_set)?;
    let mut max_observed = max_read_tid(&read_set);
    for rec in &records {
        max_observed = max_observed.max(rec.tid());
    }
    let tid = tid_gen.generate(epoch, max_observed);
    for (entry, rec) in write_set.iter().zip(&records) {
        rec.write_unsynchronized(entry.row.clone(), tid);
    }
    Ok(CommitOutput { tid, write_set })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TxnCtx;
    use crate::rwset::WriteEntry;
    use star_common::row::row;
    use star_common::FieldValue;
    use star_storage::{DatabaseBuilder, TableSpec};

    fn db() -> Database {
        let d = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
        for k in 0..10u64 {
            d.insert(0, (k % 2) as usize, k, row([FieldValue::U64(k * 10)])).unwrap();
        }
        d
    }

    fn read_update(d: &Database, key: u64, new: u64) -> (ReadSet, WriteSet) {
        let mut ctx = TxnCtx::new(d);
        let p = (key % 2) as usize;
        ctx.read(0, p, key).unwrap();
        ctx.update(0, p, key, row([FieldValue::U64(new)]));
        ctx.into_sets()
    }

    #[test]
    fn simple_commit_installs_write_and_tid() {
        let d = db();
        let mut gen = TidGenerator::new();
        let (rs, ws) = read_update(&d, 4, 999);
        let out = commit_single_master(&d, rs, ws, 1, &mut gen).unwrap();
        assert_eq!(out.tid.epoch(), 1);
        let rec = d.get(0, 0, 4).unwrap();
        assert_eq!(rec.read().row, row([FieldValue::U64(999)]));
        assert_eq!(rec.tid(), out.tid);
        assert!(!rec.is_locked());
    }

    #[test]
    fn stale_read_fails_validation() {
        let d = db();
        let mut gen = TidGenerator::new();
        let (rs, ws) = read_update(&d, 4, 999);
        // A concurrent transaction commits to the same key first.
        let (rs2, ws2) = read_update(&d, 4, 555);
        commit_single_master(&d, rs2, ws2, 1, &mut gen).unwrap();
        let err = commit_single_master(&d, rs, ws, 1, &mut gen).unwrap_err();
        assert_eq!(err, Error::Abort(AbortReason::ValidationFailed));
        // The loser's write must not be visible and nothing stays locked.
        let rec = d.get(0, 0, 4).unwrap();
        assert_eq!(rec.read().row, row([FieldValue::U64(555)]));
        assert!(!rec.is_locked());
    }

    #[test]
    fn read_only_transaction_commits_without_writes() {
        let d = db();
        let mut gen = TidGenerator::new();
        let mut ctx = TxnCtx::new(&d);
        ctx.read(0, 0, 2).unwrap();
        ctx.read(0, 1, 3).unwrap();
        let (rs, ws) = ctx.into_sets();
        let out = commit_single_master(&d, rs, ws, 2, &mut gen).unwrap();
        assert!(out.write_set.is_empty());
        assert_eq!(out.tid.epoch(), 2);
    }

    #[test]
    fn write_write_conflict_serializes_through_locks() {
        let d = Arc::new(db());
        let threads = 4;
        let per_thread = 200;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut gen = TidGenerator::new();
                let mut commits = 0;
                for _ in 0..per_thread {
                    loop {
                        let mut ctx = TxnCtx::new(&*d);
                        let cur = ctx.read(0, 0, 0).unwrap().field(0).unwrap().as_u64().unwrap();
                        ctx.update(0, 0, 0, row([FieldValue::U64(cur + 1)]));
                        let (rs, ws) = ctx.into_sets();
                        match commit_single_master(&d, rs, ws, 1, &mut gen) {
                            Ok(_) => {
                                commits += 1;
                                break;
                            }
                            Err(Error::Abort(_)) => continue,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
                commits
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, threads * per_thread);
        // Serializability: the counter equals the number of committed
        // increments.
        let v = d.get(0, 0, 0).unwrap().read().row.field(0).unwrap().as_u64().unwrap();
        assert_eq!(v, threads * per_thread);
    }

    #[test]
    fn insert_through_commit_creates_record() {
        let d = db();
        let mut gen = TidGenerator::new();
        let mut ctx = TxnCtx::new(&d);
        ctx.insert(0, 0, 100, row([FieldValue::U64(1)]));
        let (rs, ws) = ctx.into_sets();
        commit_single_master(&d, rs, ws, 1, &mut gen).unwrap();
        assert_eq!(d.get(0, 0, 100).unwrap().read().row, row([FieldValue::U64(1)]));
    }

    #[test]
    fn partitioned_commit_skips_locks_but_assigns_tids() {
        let d = db();
        let mut gen = TidGenerator::new();
        let mut ctx = TxnCtx::new_single_threaded(&d);
        let cur = ctx.read(0, 0, 2).unwrap().field(0).unwrap().as_u64().unwrap();
        ctx.update(0, 0, 2, row([FieldValue::U64(cur + 1)]));
        let (rs, ws) = ctx.into_sets();
        let out = commit_partitioned(&d, rs, ws, 3, &mut gen).unwrap();
        assert_eq!(out.tid.epoch(), 3);
        let rec = d.get(0, 0, 2).unwrap();
        assert_eq!(rec.tid(), out.tid);
        assert_eq!(rec.read().row, row([FieldValue::U64(21)]));
    }

    #[test]
    fn commit_tid_exceeds_all_read_and_write_tids() {
        let d = db();
        let mut gen = TidGenerator::new();
        // Seed a record with a high TID.
        d.apply_value_write(0, 0, 6, row([FieldValue::U64(1)]), Tid::new(1, 500)).unwrap();
        let (rs, ws) = read_update(&d, 6, 2);
        let out = commit_single_master(&d, rs, ws, 1, &mut gen).unwrap();
        assert!(out.tid > Tid::new(1, 500));
    }

    #[test]
    fn duplicate_write_entries_are_tolerated() {
        let d = db();
        let mut gen = TidGenerator::new();
        let ws: WriteSet = vec![
            WriteEntry {
                table: 0,
                partition: 0,
                key: 8,
                row: row([FieldValue::U64(1)]),
                operation: None,
                insert: false,
            },
            WriteEntry {
                table: 0,
                partition: 0,
                key: 8,
                row: row([FieldValue::U64(2)]),
                operation: None,
                insert: false,
            },
        ];
        let out = commit_single_master(&d, Vec::new(), ws, 1, &mut gen).unwrap();
        let rec = d.get(0, 0, 8).unwrap();
        assert!(!rec.is_locked());
        assert_eq!(rec.tid(), out.tid);
        // Last write wins.
        assert_eq!(rec.read().row, row([FieldValue::U64(2)]));
    }
}
