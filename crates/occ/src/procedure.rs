//! The stored-procedure abstraction.
//!
//! As in most high-performance transactional systems (H-Store, Silo, TicToc),
//! clients interact with STAR by invoking pre-defined stored procedures with
//! parameters. A workload crate implements [`Procedure`] for each transaction
//! type (YCSB multi-get/put, TPC-C NewOrder, TPC-C Payment) and the engines
//! execute them through a [`crate::TxnCtx`].

use crate::context::TxnCtx;
use star_common::{PartitionId, Result};

/// Outcome of running a stored procedure body once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcedureOutcome {
    /// The body ran to completion; the engine should try to commit.
    Completed,
    /// The body requested an application abort (counted separately from
    /// concurrency-control aborts and never retried).
    UserAbort,
}

/// A transaction expressed as a stored procedure.
///
/// Procedures must be deterministic given the database state: engines may
/// execute a procedure more than once (OCC retries after validation failure,
/// Calvin re-executes deterministically), so any randomness must be fixed in
/// the procedure's parameters at generation time.
pub trait Procedure: Send + Sync {
    /// A short label for statistics (e.g. `"NewOrder"`).
    fn name(&self) -> &'static str;

    /// The partitions this procedure will touch. The router uses this to
    /// decide whether it is a single-partition transaction (runs in the
    /// partitioned phase on the partition's primary) or a cross-partition
    /// transaction (deferred to the single-master phase).
    fn partitions(&self) -> Vec<PartitionId>;

    /// Convenience: whether the procedure touches a single partition.
    fn is_single_partition(&self) -> bool {
        self.partitions().len() == 1
    }

    /// The "home" partition of the procedure — the first touched partition,
    /// used to route single-partition transactions to a worker.
    fn home_partition(&self) -> PartitionId {
        *self.partitions().first().unwrap_or(&0)
    }

    /// Executes the procedure body against a transaction context.
    ///
    /// Returning `Err` with an abort error maps to [`ProcedureOutcome`]
    /// according to the abort reason; other errors are surfaced to the
    /// engine.
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{Error, FieldValue};
    use star_storage::{Database, DatabaseBuilder, TableSpec};

    struct Transfer {
        from: (PartitionId, u64),
        to: (PartitionId, u64),
        amount: u64,
    }

    impl Procedure for Transfer {
        fn name(&self) -> &'static str {
            "Transfer"
        }

        fn partitions(&self) -> Vec<PartitionId> {
            let mut ps = vec![self.from.0, self.to.0];
            ps.sort_unstable();
            ps.dedup();
            ps
        }

        fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<()> {
            let src = ctx.read(0, self.from.0, self.from.1)?;
            let balance = src.field(0).unwrap().as_u64().unwrap();
            if balance < self.amount {
                return Err(ctx.abort());
            }
            let dst = ctx.read(0, self.to.0, self.to.1)?;
            let dst_balance = dst.field(0).unwrap().as_u64().unwrap();
            ctx.update(0, self.from.0, self.from.1, row([FieldValue::U64(balance - self.amount)]));
            ctx.update(0, self.to.0, self.to.1, row([FieldValue::U64(dst_balance + self.amount)]));
            Ok(())
        }
    }

    fn db() -> Database {
        let d = DatabaseBuilder::new(2).table(TableSpec::new("accounts")).build();
        d.insert(0, 0, 1, row([FieldValue::U64(100)])).unwrap();
        d.insert(0, 1, 2, row([FieldValue::U64(0)])).unwrap();
        d
    }

    #[test]
    fn partition_classification() {
        let single = Transfer { from: (0, 1), to: (0, 1), amount: 1 };
        assert!(single.is_single_partition());
        assert_eq!(single.home_partition(), 0);
        let cross = Transfer { from: (0, 1), to: (1, 2), amount: 1 };
        assert!(!cross.is_single_partition());
        assert_eq!(cross.partitions(), vec![0, 1]);
    }

    #[test]
    fn execute_builds_read_and_write_sets() {
        let d = db();
        let p = Transfer { from: (0, 1), to: (1, 2), amount: 30 };
        let mut ctx = TxnCtx::new(&d);
        p.execute(&mut ctx).unwrap();
        assert_eq!(ctx.read_set().len(), 2);
        assert_eq!(ctx.write_set().len(), 2);
    }

    #[test]
    fn user_abort_propagates() {
        let d = db();
        let p = Transfer { from: (0, 1), to: (1, 2), amount: 1000 };
        let mut ctx = TxnCtx::new(&d);
        let err = p.execute(&mut ctx).unwrap_err();
        assert!(matches!(err, Error::Abort(star_common::AbortReason::User)));
    }
}
