//! The transaction execution context handed to stored procedures.

use crate::rwset::{ReadEntry, ReadSet, WriteEntry, WriteSet};
use star_common::{AbortReason, Error, Key, Operation, PartitionId, Result, Row, TableId};
use star_storage::{Database, ReadResult};

/// Source of record reads during the execution (read) phase of a transaction.
///
/// The local implementation reads the node's own replica; the distributed
/// baselines implement this trait with a client that performs remote reads
/// over the simulated network. Stored procedures are written once against
/// [`TxnCtx`] and run unchanged on either.
pub trait DataSource {
    /// Reads the current version of a record, returning its row and TID.
    fn read_record(&self, table: TableId, partition: PartitionId, key: Key) -> Result<ReadResult>;

    /// Reads a record that the caller knows cannot be concurrently written
    /// (partitioned-phase accesses). Defaults to the consistent read.
    fn read_record_unsynchronized(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
    ) -> Result<ReadResult> {
        self.read_record(table, partition, key)
    }

    /// Looks up primary keys via a table's secondary index, if the source
    /// supports it. The default implementation reports an unsupported
    /// operation.
    fn secondary_lookup(
        &self,
        _table: TableId,
        _index: usize,
        _secondary: Key,
    ) -> Result<Vec<Key>> {
        Err(Error::Config("secondary index lookup not supported by this data source".into()))
    }
}

impl DataSource for Database {
    fn read_record(&self, table: TableId, partition: PartitionId, key: Key) -> Result<ReadResult> {
        Ok(self.get(table, partition, key)?.read())
    }

    fn read_record_unsynchronized(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
    ) -> Result<ReadResult> {
        Ok(self.get(table, partition, key)?.read_unsynchronized())
    }

    fn secondary_lookup(&self, table: TableId, index: usize, secondary: Key) -> Result<Vec<Key>> {
        let t = self.table(table)?;
        let idx = t.secondary_index(index).ok_or_else(|| {
            Error::Config(format!("table {table} has no secondary index {index}"))
        })?;
        Ok(idx.lookup(secondary))
    }
}

/// Execution context for one transaction attempt.
///
/// The context records every read in the read set (with the TID observed) and
/// every write in the write set, and serves re-reads of written keys from the
/// write set so that a stored procedure sees its own updates.
pub struct TxnCtx<'a> {
    source: &'a dyn DataSource,
    read_set: ReadSet,
    write_set: WriteSet,
    /// True when the engine guarantees single-threaded access to the touched
    /// partitions (partitioned phase); reads then skip the consistency loop.
    single_threaded: bool,
}

impl<'a> TxnCtx<'a> {
    /// Creates a context for the single-master phase / OCC execution (reads
    /// use the consistent protocol).
    pub fn new(source: &'a dyn DataSource) -> Self {
        TxnCtx { source, read_set: Vec::new(), write_set: Vec::new(), single_threaded: false }
    }

    /// Creates a context for the partitioned phase, where partitions are
    /// guaranteed to be accessed by a single worker thread.
    pub fn new_single_threaded(source: &'a dyn DataSource) -> Self {
        TxnCtx { source, read_set: Vec::new(), write_set: Vec::new(), single_threaded: true }
    }

    /// Whether this context was created for single-threaded (partitioned
    /// phase) execution.
    pub fn is_single_threaded(&self) -> bool {
        self.single_threaded
    }

    fn find_in_write_set(&self, table: TableId, partition: PartitionId, key: Key) -> Option<usize> {
        self.write_set
            .iter()
            .position(|w| w.table == table && w.partition == partition && w.key == key)
    }

    /// Reads a record, recording it in the read set. Re-reads of a key this
    /// transaction already wrote return the pending value.
    pub fn read(&mut self, table: TableId, partition: PartitionId, key: Key) -> Result<Row> {
        if let Some(idx) = self.find_in_write_set(table, partition, key) {
            return Ok(self.write_set[idx].row.clone());
        }
        let result = if self.single_threaded {
            self.source.read_record_unsynchronized(table, partition, key)?
        } else {
            self.source.read_record(table, partition, key)?
        };
        self.read_set.push(ReadEntry { table, partition, key, tid: result.tid });
        Ok(result.row)
    }

    /// Looks up primary keys through a secondary index. Index traversals are
    /// not validated (as in Silo, phantom protection is out of scope); the
    /// records subsequently read through the returned keys are.
    pub fn secondary_lookup(
        &mut self,
        table: TableId,
        index: usize,
        secondary: Key,
    ) -> Result<Vec<Key>> {
        self.source.secondary_lookup(table, index, secondary)
    }

    /// Registers a full-row update of an existing record.
    pub fn update(&mut self, table: TableId, partition: PartitionId, key: Key, row: Row) {
        self.update_inner(table, partition, key, row, None, false);
    }

    /// Registers an update together with the cheap [`Operation`] that
    /// produced it. The operation is what operation replication will ship in
    /// the partitioned phase; the full row is still kept for the local write
    /// and the WAL.
    pub fn update_with_operation(
        &mut self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        row: Row,
        operation: Operation,
    ) {
        self.update_inner(table, partition, key, row, Some(operation), false);
    }

    /// Registers an insert of a new record.
    pub fn insert(&mut self, table: TableId, partition: PartitionId, key: Key, row: Row) {
        self.update_inner(table, partition, key, row, None, true);
    }

    fn update_inner(
        &mut self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        row: Row,
        operation: Option<Operation>,
        insert: bool,
    ) {
        if let Some(idx) = self.find_in_write_set(table, partition, key) {
            let entry = &mut self.write_set[idx];
            entry.row = row;
            // Two operations on the same key in one transaction cannot be
            // replayed independently; fall back to whole-row replication.
            entry.operation = None;
            entry.insert = entry.insert || insert;
        } else {
            self.write_set.push(WriteEntry { table, partition, key, row, operation, insert });
        }
    }

    /// Signals an application-level abort (e.g. TPC-C NewOrder with an
    /// invalid item id).
    pub fn abort(&self) -> Error {
        Error::Abort(AbortReason::User)
    }

    /// The read set accumulated so far.
    pub fn read_set(&self) -> &ReadSet {
        &self.read_set
    }

    /// The write set accumulated so far.
    pub fn write_set(&self) -> &WriteSet {
        &self.write_set
    }

    /// Partitions touched by either the read set or the write set.
    pub fn partitions_touched(&self) -> Vec<PartitionId> {
        let mut ps: Vec<PartitionId> = self
            .read_set
            .iter()
            .map(|r| r.partition)
            .chain(self.write_set.iter().map(|w| w.partition))
            .collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Consumes the context, returning the read and write sets for the commit
    /// protocol.
    pub fn into_sets(self) -> (ReadSet, WriteSet) {
        (self.read_set, self.write_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;
    use star_storage::{DatabaseBuilder, TableSpec};

    fn db() -> Database {
        let d = DatabaseBuilder::new(2).table(TableSpec::with_secondary("t", 1)).build();
        d.insert(0, 0, 1, row([FieldValue::U64(10)])).unwrap();
        d.insert(0, 1, 2, row([FieldValue::U64(20)])).unwrap();
        d.table(0).unwrap().secondary_index(0).unwrap().insert(99, 1);
        d
    }

    #[test]
    fn reads_populate_read_set() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        let r1 = ctx.read(0, 0, 1).unwrap();
        assert_eq!(r1.field(0).unwrap().as_u64(), Some(10));
        assert_eq!(ctx.read_set().len(), 1);
        assert!(ctx.read(0, 0, 42).is_err());
    }

    #[test]
    fn read_your_own_writes() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        ctx.update(0, 0, 1, row([FieldValue::U64(11)]));
        let r = ctx.read(0, 0, 1).unwrap();
        assert_eq!(r.field(0).unwrap().as_u64(), Some(11));
        // The re-read of a written key does not add a read-set entry.
        assert!(ctx.read_set().is_empty());
    }

    #[test]
    fn double_update_collapses_and_drops_operation() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        ctx.update_with_operation(
            0,
            0,
            1,
            row([FieldValue::U64(11)]),
            Operation::SetField { field: 0, value: FieldValue::U64(11) },
        );
        ctx.update(0, 0, 1, row([FieldValue::U64(12)]));
        assert_eq!(ctx.write_set().len(), 1);
        assert_eq!(ctx.write_set()[0].row, row([FieldValue::U64(12)]));
        assert!(ctx.write_set()[0].operation.is_none());
    }

    #[test]
    fn insert_is_tracked() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        ctx.insert(0, 1, 77, row([FieldValue::U64(7)]));
        assert!(ctx.write_set()[0].insert);
        assert_eq!(ctx.read(0, 1, 77).unwrap(), row([FieldValue::U64(7)]));
    }

    #[test]
    fn partitions_touched_covers_reads_and_writes() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        ctx.read(0, 0, 1).unwrap();
        ctx.update(0, 1, 2, row([FieldValue::U64(21)]));
        assert_eq!(ctx.partitions_touched(), vec![0, 1]);
    }

    #[test]
    fn secondary_lookup_through_context() {
        let d = db();
        let mut ctx = TxnCtx::new(&d);
        assert_eq!(ctx.secondary_lookup(0, 0, 99).unwrap(), vec![1]);
        assert!(ctx.secondary_lookup(0, 3, 99).is_err());
    }

    #[test]
    fn single_threaded_context_reads() {
        let d = db();
        let mut ctx = TxnCtx::new_single_threaded(&d);
        assert!(ctx.is_single_threaded());
        assert_eq!(ctx.read(0, 0, 1).unwrap(), row([FieldValue::U64(10)]));
        assert_eq!(ctx.read_set().len(), 1);
    }

    #[test]
    fn user_abort_error() {
        let d = db();
        let ctx = TxnCtx::new(&d);
        assert_eq!(ctx.abort(), Error::Abort(AbortReason::User));
    }
}
