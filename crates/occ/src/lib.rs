//! Silo-variant optimistic concurrency control for the STAR reproduction.
//!
//! This crate provides the transaction-execution building blocks shared by
//! the STAR engine and by the baselines:
//!
//! * [`procedure::Procedure`] — the stored-procedure abstraction: workloads
//!   (YCSB, TPC-C) express their transactions against this trait, engines
//!   execute them.
//! * [`context::TxnCtx`] — the execution context handed to a stored
//!   procedure; it accumulates the read set and write set, provides
//!   read-your-own-writes, and reads records through a [`context::DataSource`]
//!   so that the same procedure code runs on a local replica (STAR, PB. OCC)
//!   or over the network (distributed baselines).
//! * [`silo`] — the commit protocols:
//!   [`silo::commit_single_master`] implements the Silo OCC commit used in
//!   STAR's single-master phase and in PB. OCC (lock write set in global
//!   order → validate reads → assign TID → install writes), while
//!   [`silo::commit_partitioned`] implements the partitioned-phase commit,
//!   which needs neither locks nor validation because each partition is
//!   touched by exactly one worker thread.
//!
//! The TID assignment rules and the Thomas write rule live in
//! `star-common`/`star-storage`; this crate glues them into full commit
//! paths and is where the serializability argument of Section 4.4 is
//! enforced in code.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod procedure;
pub mod rwset;
pub mod silo;

pub use context::{DataSource, TxnCtx};
pub use procedure::{Procedure, ProcedureOutcome};
pub use rwset::{ReadEntry, ReadSet, WriteEntry, WriteSet};
pub use silo::{commit_partitioned, commit_single_master, CommitOutput};
