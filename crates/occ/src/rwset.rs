//! Read and write sets accumulated during transaction execution.

use star_common::{Key, Operation, PartitionId, Row, TableId, Tid};

/// One entry of the read set: which version of which record the transaction
/// observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadEntry {
    /// Table the record belongs to.
    pub table: TableId,
    /// Partition the record lives in.
    pub partition: PartitionId,
    /// Primary key.
    pub key: Key,
    /// TID of the version that was read; validated at commit time.
    pub tid: Tid,
}

/// One entry of the write set: the new full row plus, optionally, the cheaper
/// operation that produced it (used by operation replication in the
/// partitioned phase).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteEntry {
    /// Table the record belongs to.
    pub table: TableId,
    /// Partition the record lives in.
    pub partition: PartitionId,
    /// Primary key.
    pub key: Key,
    /// Full new row (always present; what value replication ships and what
    /// the WAL logs).
    pub row: Row,
    /// The operation that produced the new row, when the stored procedure
    /// registered one; `None` means "whole row changed".
    pub operation: Option<Operation>,
    /// Whether this write creates the record (insert) rather than updating an
    /// existing one.
    pub insert: bool,
}

/// The ordered list of reads performed by a transaction.
pub type ReadSet = Vec<ReadEntry>;

/// The ordered list of writes performed by a transaction.
pub type WriteSet = Vec<WriteEntry>;

/// Sort key used to lock the write set in a deadlock-free global order.
pub fn write_lock_order(entry: &WriteEntry) -> (TableId, PartitionId, Key) {
    (entry.table, entry.partition, entry.key)
}

/// The largest TID observed across a read set (the floor for the commit TID,
/// rule (a) of the TID assignment).
pub fn max_read_tid(reads: &ReadSet) -> Tid {
    reads.iter().map(|r| r.tid).max().unwrap_or(Tid::ZERO)
}

/// Number of distinct partitions touched by a write set.
pub fn partitions_written(writes: &WriteSet) -> Vec<PartitionId> {
    let mut ps: Vec<PartitionId> = writes.iter().map(|w| w.partition).collect();
    ps.sort_unstable();
    ps.dedup();
    ps
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;

    fn w(table: TableId, partition: PartitionId, key: Key) -> WriteEntry {
        WriteEntry {
            table,
            partition,
            key,
            row: row([FieldValue::U64(key)]),
            operation: None,
            insert: false,
        }
    }

    #[test]
    fn lock_order_is_table_partition_key() {
        let mut ws = [w(1, 0, 5), w(0, 3, 1), w(0, 1, 9), w(0, 1, 2)];
        ws.sort_by_key(write_lock_order);
        let order: Vec<_> = ws.iter().map(|e| (e.table, e.partition, e.key)).collect();
        assert_eq!(order, vec![(0, 1, 2), (0, 1, 9), (0, 3, 1), (1, 0, 5)]);
    }

    #[test]
    fn max_read_tid_of_empty_set_is_zero() {
        assert_eq!(max_read_tid(&Vec::new()), Tid::ZERO);
    }

    #[test]
    fn max_read_tid_picks_largest() {
        let reads = vec![
            ReadEntry { table: 0, partition: 0, key: 1, tid: Tid::new(1, 5) },
            ReadEntry { table: 0, partition: 1, key: 2, tid: Tid::new(2, 1) },
            ReadEntry { table: 1, partition: 0, key: 3, tid: Tid::new(1, 9) },
        ];
        assert_eq!(max_read_tid(&reads), Tid::new(2, 1));
    }

    #[test]
    fn partitions_written_deduplicates() {
        let ws = vec![w(0, 3, 1), w(0, 1, 2), w(1, 3, 3), w(0, 1, 4)];
        assert_eq!(partitions_written(&ws), vec![1, 3]);
    }
}
