//! The baselines' replication path, routed through the shared fault plane.
//!
//! Every baseline replicates the writes of committed transactions to a
//! backup replica — PB. OCC and the partitioning-based engines apply them at
//! the epoch group commit (or synchronously per transaction), Calvin at the
//! end of each sequenced batch. [`ReplicaLink`] models that primary→backup
//! stream as one directed link of the same seeded [`FaultPlane`] the chaos
//! harness drives the STAR engine with, so drop / duplicate / reorder faults
//! can be injected into the baselines' replication paths too:
//!
//! * **duplicate** — the entry is applied twice; the second application is a
//!   TID-gated no-op (Thomas write rule), so duplicates are always safe;
//! * **reorder** — the entry is stashed and released after a later entry on
//!   the link (or at the group commit); all baselines replicate full rows
//!   (value payloads), which the Thomas write rule makes order-insensitive;
//! * **drop** — the entry is lost silently. Nothing in a baseline's
//!   protocol can detect this, so the backup diverges — which is exactly
//!   what the chaos harness's backup-vs-oracle comparison must catch (the
//!   negative control for the baselines' fault coverage);
//! * **corrupt** — the entry's row payload is bit-flipped in flight
//!   (byzantine). Like drops, never protocol-safe: the backup applies the
//!   garbage silently and the backup-vs-oracle comparison must flag it.

use parking_lot::Mutex;
use star_net::{FaultPlane, FaultVerdict, LinkFaults};
use star_replication::{LogEntry, Payload};
use star_storage::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The synthetic link id of the primary side of the stream.
const PRIMARY: usize = 0;
/// The synthetic link id of the backup side of the stream.
const BACKUP: usize = 1;

/// A fault-injectable primary→backup replication stream.
///
/// Without configured faults the link is transparent (the fault plane's
/// fast path makes a fault-free link byte-for-byte identical to no link at
/// all), so engines pay nothing for routing their replication through it.
#[derive(Debug, Default)]
pub struct ReplicaLink {
    plane: FaultPlane,
    /// Whether any faults are configured. When false, `offer`/`deliver_now`
    /// skip the per-entry fault roll (and its lock on the shared plane)
    /// entirely, so the benchmark hot path pays one buffer lock per batch,
    /// exactly as before the link existed.
    faulted: AtomicBool,
    /// Entries delivered but not yet applied (async group-commit mode).
    pending: Mutex<Vec<LogEntry>>,
    /// Entries held back by reorder faults; released by the next delivered
    /// entry or by the group commit.
    stash: Mutex<Vec<LogEntry>>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
}

/// Corrupts one entry's payload with the shared salt-driven mutation
/// (`star_common`'s `Row::corrupt` / `Operation::corrupt`), so the STAR and
/// baseline harnesses inject identical byzantine faults for the same salt.
fn corrupt_entry(entry: &mut LogEntry, salt: u64) -> bool {
    match &mut entry.payload {
        Payload::Value(row) => row.corrupt(salt),
        Payload::Operation(op) => op.corrupt(salt),
    }
}

impl ReplicaLink {
    /// A transparent link (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the link's fault RNG and applies `faults` to the stream.
    /// Existing RNG state is discarded, so the fault decisions reproduce
    /// from `(seed, faults, entry sequence)` alone.
    pub fn set_faults(&self, seed: u64, faults: LinkFaults) {
        self.plane.seed(seed);
        self.plane.set_link_faults(PRIMARY, BACKUP, faults);
        self.faulted.store(!faults.is_none(), Ordering::Release);
    }

    /// Entries silently lost so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Entries delivered twice so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Entries that were overtaken by a later entry so far.
    pub fn reordered(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }

    /// Entries delivered with a bit-flipped payload so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Rolls the fate of one entry, pushing the survivors onto `out`.
    fn admit(&self, entry: LogEntry, out: &mut Vec<LogEntry>) {
        match self.plane.roll(PRIMARY, BACKUP) {
            FaultVerdict::Deliver { .. } => {
                out.push(entry);
                // The link made progress: anything stashed behind this entry
                // has now been overtaken.
                out.append(&mut self.stash.lock());
            }
            FaultVerdict::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                out.append(&mut self.stash.lock());
            }
            FaultVerdict::Duplicate { .. } => {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                out.push(entry.clone());
                out.push(entry);
                out.append(&mut self.stash.lock());
            }
            FaultVerdict::Reorder => {
                self.reordered.fetch_add(1, Ordering::Relaxed);
                self.stash.lock().push(entry);
            }
            FaultVerdict::Corrupt { salt, .. } => {
                let mut entry = entry;
                if corrupt_entry(&mut entry, salt) {
                    self.corrupted.fetch_add(1, Ordering::Relaxed);
                }
                out.push(entry);
                out.append(&mut self.stash.lock());
            }
        }
    }

    /// Offers committed entries to the link for asynchronous replication:
    /// the survivors are buffered until [`group_commit`](Self::group_commit)
    /// applies them to the backup.
    pub fn offer(&self, entries: Vec<LogEntry>) {
        if !self.faulted.load(Ordering::Acquire) {
            self.pending.lock().extend(entries);
            return;
        }
        let mut delivered = Vec::with_capacity(entries.len());
        for entry in entries {
            self.admit(entry, &mut delivered);
        }
        self.pending.lock().extend(delivered);
    }

    /// Synchronous replication: rolls each entry's fate and applies the
    /// survivors to `backup` immediately.
    pub fn deliver_now(&self, entries: &[LogEntry], backup: &Database) {
        if !self.faulted.load(Ordering::Acquire) {
            for entry in entries {
                let _ = entry.apply(backup);
            }
            return;
        }
        let mut delivered = Vec::with_capacity(entries.len());
        for entry in entries {
            self.admit(entry.clone(), &mut delivered);
        }
        for entry in &delivered {
            let _ = entry.apply(backup);
        }
    }

    /// The epoch / batch group commit: releases the reorder stash, applies
    /// every buffered entry to `backup` and returns how many were applied.
    pub fn group_commit(&self, backup: &Database) -> usize {
        let mut entries = std::mem::take(&mut *self.pending.lock());
        entries.append(&mut self.stash.lock());
        for entry in &entries {
            let _ = entry.apply(backup);
        }
        entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::{FieldValue, Tid};
    use star_replication::Payload;
    use star_storage::{DatabaseBuilder, TableSpec};

    fn backup() -> Database {
        DatabaseBuilder::new(1).table(TableSpec::new("t")).build()
    }

    fn entry(key: u64, seq: u64, value: u64) -> LogEntry {
        LogEntry {
            table: 0,
            partition: 0,
            key,
            tid: Tid::new(1, seq),
            payload: Payload::Value(row([FieldValue::U64(value)])),
        }
    }

    #[test]
    fn transparent_link_applies_everything_at_group_commit() {
        let link = ReplicaLink::new();
        let db = backup();
        link.offer(vec![entry(1, 1, 10), entry(2, 2, 20)]);
        assert_eq!(db.len(), 0, "async entries wait for the group commit");
        assert_eq!(link.group_commit(&db), 2);
        assert_eq!(db.len(), 2);
        assert_eq!(link.dropped() + link.duplicated() + link.reordered(), 0);
    }

    #[test]
    fn dropping_link_loses_entries_silently() {
        let link = ReplicaLink::new();
        link.set_faults(7, LinkFaults::dropping(1.0));
        let db = backup();
        link.offer(vec![entry(1, 1, 10), entry(2, 2, 20)]);
        assert_eq!(link.group_commit(&db), 0);
        assert_eq!(db.len(), 0);
        assert_eq!(link.dropped(), 2);
    }

    #[test]
    fn duplicates_are_tid_gated_no_ops() {
        let link = ReplicaLink::new();
        link.set_faults(7, LinkFaults::duplicating(1.0));
        let db = backup();
        link.offer(vec![entry(1, 1, 10)]);
        assert_eq!(link.group_commit(&db), 2, "both copies are delivered");
        assert_eq!(link.duplicated(), 1);
        let rec = db.get(0, 0, 1).unwrap();
        assert_eq!(rec.read().row, row([FieldValue::U64(10)]));
    }

    #[test]
    fn reordered_entries_are_released_by_the_group_commit() {
        let link = ReplicaLink::new();
        link.set_faults(7, LinkFaults::reordering(1.0));
        let db = backup();
        link.offer(vec![entry(1, 1, 10), entry(1, 2, 11)]);
        // Every entry was stashed (reorder probability 1.0), so nothing is
        // pending yet — the group commit must still deliver them all.
        link.group_commit(&db);
        assert_eq!(link.reordered(), 2);
        // The Thomas write rule keeps the newest version regardless of the
        // apply order.
        let rec = db.get(0, 0, 1).unwrap();
        assert_eq!(rec.read().tid, Tid::new(1, 2));
    }

    #[test]
    fn fault_decisions_reproduce_from_the_seed() {
        let outcomes = |seed: u64| -> (u64, u64, u64) {
            let link = ReplicaLink::new();
            link.set_faults(
                seed,
                LinkFaults {
                    drop_probability: 0.3,
                    duplicate_probability: 0.3,
                    reorder_probability: 0.2,
                    ..LinkFaults::none()
                },
            );
            let db = backup();
            for i in 0..100u64 {
                link.offer(vec![entry(i % 8, i + 1, i)]);
            }
            link.group_commit(&db);
            (link.dropped(), link.duplicated(), link.reordered())
        };
        assert_eq!(outcomes(3), outcomes(3));
        assert_ne!(outcomes(3), outcomes(4), "different seeds should diverge");
    }
}
