//! PB. OCC: the non-partitioned primary/backup baseline.
//!
//! A single primary node holds the whole database and runs every transaction
//! under the Silo-variant OCC protocol; a backup node receives the writes of
//! committed transactions. Only two nodes are used (Section 7.1.2). With
//! asynchronous replication the backup is brought up to date at each
//! epoch-based group commit; with synchronous replication every transaction
//! holds its write locks for a replication round trip.

use crate::driver::{build_full_database, BaselineConfig};
use crate::replication::ReplicaLink;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::stats::{LatencyHistogram, RunCounters, RunReport};
use star_common::{Epoch, Error, ReplicationMode, Result, TidGenerator};
use star_core::history::{CommittedTxn, HistoryRecorder};
use star_core::Workload;
use star_net::LinkFaults;
use star_occ::{commit_single_master, TxnCtx};
use star_replication::{build_log_entries, ExecutionPhase, LogEntry};
use star_storage::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The primary/backup OCC engine.
pub struct PbOcc {
    config: BaselineConfig,
    workload: Arc<dyn Workload>,
    primary: Arc<Database>,
    backup: Arc<Database>,
    /// The primary→backup replication stream (buffers entries between group
    /// commits; fault-injectable through the shared fault plane).
    link: Arc<ReplicaLink>,
    counters: Arc<RunCounters>,
    epoch: Epoch,
    history: Option<Arc<HistoryRecorder>>,
    last_report: Option<RunReport>,
}

impl PbOcc {
    /// Builds the engine: a primary and a backup replica, both loaded with
    /// the workload's data.
    pub fn new(config: BaselineConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        config.cluster.validate().map_err(Error::Config)?;
        let primary = build_full_database(workload.as_ref());
        let backup = build_full_database(workload.as_ref());
        Ok(PbOcc {
            config,
            workload,
            primary,
            backup,
            link: Arc::new(ReplicaLink::new()),
            counters: Arc::new(RunCounters::new()),
            epoch: 1,
            history: None,
            last_report: None,
        })
    }

    fn engine_label(&self) -> &'static str {
        match self.config.replication {
            ReplicationMode::Sync => "PB. OCC (sync)",
            ReplicationMode::Async => "PB. OCC",
        }
    }

    /// Attaches a committed-history recorder. PB. OCC never reverts an
    /// epoch, so every commit is recorded as final immediately.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.history = Some(recorder);
    }

    /// Injects faults into the primary→backup replication stream, seeded
    /// from the cluster seed (see [`ReplicaLink`]).
    pub fn set_replication_faults(&mut self, faults: LinkFaults) {
        self.link.set_faults(self.config.cluster.seed, faults);
    }

    /// The replication link (fault counters).
    pub fn replica_link(&self) -> &Arc<ReplicaLink> {
        &self.link
    }

    /// The primary replica (for inspection in tests).
    pub fn primary(&self) -> &Arc<Database> {
        &self.primary
    }

    /// The backup replica.
    pub fn backup(&self) -> &Arc<Database> {
        &self.backup
    }

    /// The shared counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Applies all buffered replication entries to the backup (the group
    /// commit of asynchronous replication) and advances the epoch.
    fn group_commit(&mut self) {
        let start = Instant::now();
        self.link.group_commit(&self.backup);
        // The whole group commit is one synchronous stall (fence wait), and
        // its body is the replication apply to the backup (flush slice).
        self.counters.add_replication_flush(start.elapsed());
        self.epoch += 1;
        self.counters.add_fence(start.elapsed());
    }

    /// Runs the engine for (at least) `duration`.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        let workers = self.config.cluster.workers_per_node;
        let base_seed = self.config.cluster.rng_seed_base();
        let sync = self.config.replication == ReplicationMode::Sync;
        let round_trip = self.config.round_trip();
        let epoch_interval = self.config.epoch_interval();
        let start = Instant::now();
        let before = self.counters.snapshot();
        let latency = Arc::new(Mutex::new(LatencyHistogram::new()));

        while start.elapsed() < duration {
            let epoch = self.epoch;
            let epoch_deadline = Instant::now() + epoch_interval;
            let primary = &self.primary;
            let backup = &self.backup;
            let link = &self.link;
            let counters = &self.counters;
            let workload = &self.workload;
            let latency = &latency;
            let history = &self.history;
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let primary = Arc::clone(primary);
                    let backup = Arc::clone(backup);
                    let link = Arc::clone(link);
                    let counters = Arc::clone(counters);
                    let workload = Arc::clone(workload);
                    let latency = Arc::clone(latency);
                    let history = history.clone();
                    let partitions = workload.num_partitions();
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(
                            base_seed ^ 0x9B0C ^ (worker as u64) ^ epoch as u64,
                        );
                        let mut tid_gen = TidGenerator::new();
                        let mut attempts = 0u64;
                        let mut local_latency = LatencyHistogram::new();
                        while attempts == 0 || Instant::now() < epoch_deadline {
                            attempts += 1;
                            let txn_start = Instant::now();
                            let home = rng.gen_range(0..partitions);
                            let proc = workload.mixed_transaction(&mut rng, home);
                            let mut ctx = TxnCtx::new(primary.as_ref());
                            let result = proc.execute(&mut ctx);
                            counters.add_execution(txn_start.elapsed());
                            match result {
                                Ok(()) => {}
                                Err(Error::Abort(star_common::AbortReason::User)) => {
                                    counters.add_user_abort();
                                    continue;
                                }
                                Err(_) => {
                                    counters.add_abort();
                                    continue;
                                }
                            }
                            let (rs, ws) = ctx.into_sets();
                            let recorded_reads = history.as_ref().map(|_| rs.clone());
                            let validate_start = Instant::now();
                            let outcome =
                                commit_single_master(&primary, rs, ws, epoch, &mut tid_gen);
                            counters.add_lock_or_validate(validate_start.elapsed());
                            let output = match outcome {
                                Ok(output) => output,
                                Err(_) => {
                                    counters.add_abort();
                                    continue;
                                }
                            };
                            if let Some(history) = &history {
                                history.record_final(CommittedTxn::from_sets(
                                    epoch,
                                    ExecutionPhase::SingleMaster,
                                    worker as u64,
                                    output.tid,
                                    recorded_reads.as_deref().unwrap_or(&[]),
                                    &output.write_set,
                                ));
                            }
                            let entries = build_log_entries(
                                &output.write_set,
                                output.tid,
                                star_common::ReplicationStrategy::Value,
                                ExecutionPhase::SingleMaster,
                            );
                            let bytes: usize = entries.iter().map(LogEntry::wire_size).sum();
                            counters.add_replication_bytes(bytes as u64);
                            if sync {
                                // Synchronous replication: apply on the
                                // backup and pay the round trip while the
                                // write locks are (logically) held.
                                let flush_start = Instant::now();
                                link.deliver_now(&entries, &backup);
                                std::thread::sleep(round_trip);
                                counters.add_replication_flush(flush_start.elapsed());
                                local_latency.record(txn_start.elapsed());
                            } else {
                                link.offer(entries);
                                // Under async replication + group commit the
                                // result is only released at the epoch's
                                // group commit, which fires at the epoch
                                // deadline: sample each commit's real wait
                                // until that release point.
                                local_latency
                                    .record(epoch_deadline.saturating_duration_since(txn_start));
                            }
                            counters.add_commit();
                        }
                        latency.lock().merge(&local_latency);
                    });
                }
            });
            self.group_commit();
        }

        let elapsed = start.elapsed();
        let after = self.counters.snapshot();
        let mut window = after;
        window.committed -= before.committed;
        window.aborted -= before.aborted;
        window.user_aborted -= before.user_aborted;
        window.replication_bytes -= before.replication_bytes;
        window.fences -= before.fences;
        window.fence_time_us -= before.fence_time_us;
        window.execution_us -= before.execution_us;
        window.replication_flush_us -= before.replication_flush_us;
        window.wal_fsync_us -= before.wal_fsync_us;
        window.lock_or_validate_us -= before.lock_or_validate_us;
        let report = RunReport::new(
            self.engine_label(),
            self.workload.name(),
            self.workload.mix().percentage(),
            elapsed,
            window,
            Arc::try_unwrap(latency).map(Mutex::into_inner).unwrap_or_default(),
        );
        self.last_report = Some(report.clone());
        report
    }

    /// Checks that the backup replica has caught up with the primary (valid
    /// after a `run_for`, which always ends with a group commit).
    pub fn verify_backup_consistency(&self) -> Result<()> {
        let mut divergence = None;
        self.primary.for_each_record(|table, partition, key, rec| {
            if divergence.is_some() {
                return;
            }
            let primary_read = rec.read();
            match self.backup.try_get(table, partition, key) {
                Ok(Some(backup_rec)) => {
                    let backup_read = backup_rec.read();
                    if backup_read.tid != primary_read.tid {
                        divergence = Some(format!(
                            "key {key} tid mismatch ({} vs {})",
                            primary_read.tid, backup_read.tid
                        ));
                    }
                }
                _ => divergence = Some(format!("key {key} missing on backup")),
            }
        });
        match divergence {
            None => Ok(()),
            Some(msg) => Err(Error::Config(format!("backup divergence: {msg}"))),
        }
    }
}

impl star_core::Engine for PbOcc {
    fn name(&self) -> String {
        self.engine_label().to_string()
    }

    fn run_for(&mut self, duration: Duration) -> RunReport {
        PbOcc::run_for(self, duration)
    }

    fn counters(&self) -> &RunCounters {
        PbOcc::counters(self)
    }

    fn report(&self) -> RunReport {
        match &self.last_report {
            Some(report) => report.clone(),
            None => RunReport::new(
                self.engine_label(),
                self.workload.name(),
                self.workload.mix().percentage(),
                Duration::ZERO,
                self.counters.snapshot(),
                LatencyHistogram::new(),
            ),
        }
    }

    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        PbOcc::set_history_recorder(self, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::ClusterConfig;
    use star_core::testing::KvWorkload;

    fn config(sync: bool) -> BaselineConfig {
        let cluster = ClusterConfig::builder()
            .nodes(2)
            .partitions(4)
            .workers_per_node(2)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .replication_mode(if sync { ReplicationMode::Sync } else { ReplicationMode::Async })
            .build()
            .unwrap();
        BaselineConfig::new(cluster)
    }

    fn workload() -> Arc<KvWorkload> {
        Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 32,
            cross_partition_fraction: 0.3,
        })
    }

    #[test]
    fn async_mode_commits_and_backup_converges() {
        let mut engine = PbOcc::new(config(false), workload()).unwrap();
        let report = engine.run_for(Duration::from_millis(30));
        assert!(report.counters.committed > 0);
        assert!(report.counters.replication_bytes > 0);
        engine.verify_backup_consistency().unwrap();
        assert_eq!(report.engine, "PB. OCC");
    }

    #[test]
    fn sync_mode_commits_with_lower_throughput() {
        let _serial = crate::test_sync::PERF_TEST_LOCK.lock();
        let mut async_engine = PbOcc::new(config(false), workload()).unwrap();
        let async_report = async_engine.run_for(Duration::from_millis(150));
        let mut sync_engine = PbOcc::new(config(true), workload()).unwrap();
        let sync_report = sync_engine.run_for(Duration::from_millis(150));
        assert!(sync_report.counters.committed > 0);
        sync_engine.verify_backup_consistency().unwrap();
        // The paper's Figure 11 vs 11(c): synchronous replication is far
        // slower because every transaction pays a round trip.
        assert!(
            sync_report.throughput < async_report.throughput,
            "sync {} >= async {}",
            sync_report.throughput,
            async_report.throughput
        );
    }

    #[test]
    fn throughput_is_insensitive_to_cross_partition_fraction() {
        // The defining property of a non-partitioned system (Figure 11).
        let _serial = crate::test_sync::PERF_TEST_LOCK.lock();
        let wl_low = Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 32,
            cross_partition_fraction: 0.0,
        });
        let wl_high = Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 32,
            cross_partition_fraction: 1.0,
        });
        let mut low = PbOcc::new(config(false), wl_low).unwrap();
        let mut high = PbOcc::new(config(false), wl_high).unwrap();
        let low_report = low.run_for(Duration::from_millis(150));
        let high_report = high.run_for(Duration::from_millis(150));
        let ratio = low_report.throughput / high_report.throughput.max(1.0);
        assert!(ratio < 4.0 && ratio > 1.0 / 4.0, "ratio={ratio}");
    }
}
