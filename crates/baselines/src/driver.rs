//! Shared configuration and helpers for the baseline engines.

use star_common::{ClusterConfig, ReplicationMode};
use star_core::Workload;
use star_storage::{Database, DatabaseBuilder};
use std::sync::Arc;
use std::time::Duration;

/// Configuration shared by all baselines. It deliberately reuses
/// [`ClusterConfig`] so a benchmark sweep can hand the *same* configuration
/// to STAR and to every baseline.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// The cluster layout (nodes, workers, partitions, latency, iteration).
    pub cluster: ClusterConfig,
    /// Synchronous or asynchronous (epoch group commit) replication.
    pub replication: ReplicationMode,
}

impl BaselineConfig {
    /// Builds a baseline configuration from a cluster configuration.
    pub fn new(cluster: ClusterConfig) -> Self {
        let replication = cluster.replication_mode;
        BaselineConfig { cluster, replication }
    }

    /// The epoch/group-commit interval (the same iteration time STAR uses).
    pub fn epoch_interval(&self) -> Duration {
        self.cluster.iteration
    }

    /// One network round trip under the configured latency.
    pub fn round_trip(&self) -> Duration {
        self.cluster.network_latency * 2
    }
}

/// Builds a full (all partitions) database loaded with the workload, used by
/// the non-partitioned baseline and as the sharded store of the partitioned
/// baselines (each partition's primary copy).
pub fn build_full_database(workload: &dyn Workload) -> Arc<Database> {
    let mut builder = DatabaseBuilder::new(workload.num_partitions());
    for spec in workload.catalog() {
        builder = builder.table(spec);
    }
    let db = builder.build();
    for partition in 0..workload.num_partitions() {
        workload.load_partition(&db, partition);
    }
    Arc::new(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_core::testing::KvWorkload;

    #[test]
    fn baseline_config_derives_intervals_from_cluster() {
        let cluster = ClusterConfig::builder()
            .nodes(4)
            .network_latency(Duration::from_micros(250))
            .iteration(Duration::from_millis(7))
            .build()
            .unwrap();
        let config = BaselineConfig::new(cluster);
        assert_eq!(config.round_trip(), Duration::from_micros(500));
        assert_eq!(config.epoch_interval(), Duration::from_millis(7));
    }

    #[test]
    fn full_database_holds_every_partition() {
        let wl = KvWorkload::new(4);
        let db = build_full_database(&wl);
        assert!(db.is_full_replica());
        assert_eq!(db.len() as u64, 4 * wl.rows_per_partition);
    }
}
