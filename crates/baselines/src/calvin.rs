//! Calvin: a deterministic database with a multi-threaded lock manager
//! (Section 7.3 of the paper).
//!
//! Calvin sequences a batch of transactions before execution, replicates the
//! *inputs* to every replica group, and then executes the batch
//! deterministically: lock-manager threads grant locks in the sequenced
//! order and worker threads execute transactions once their locks are held.
//! Cross-partition transactions still need communication during execution
//! because participants must exchange the values of remote reads.
//!
//! The paper's `Calvin-x` configurations dedicate `x` of the 12 threads per
//! node to the lock manager; the rest execute transactions. This
//! implementation models the same trade-off: each transaction's lock grant is
//! serialised through one of `x` lock-manager queues (fewer queues → more
//! grant contention), executor parallelism is `total workers − x·nodes`, and
//! every cross-partition transaction pays one network round trip for the
//! remote-read exchange. Input replication is charged per batch to every
//! other node.

use crate::driver::{build_full_database, BaselineConfig};
use crate::replication::ReplicaLink;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use star_common::stats::{LatencyHistogram, RunCounters, RunReport};
use star_common::{Epoch, Error, Result, TidGenerator};
use star_core::history::{CommittedTxn, HistoryRecorder};
use star_core::Workload;
use star_net::LinkFaults;
use star_occ::{Procedure, TxnCtx};
use star_replication::{build_log_entries, ExecutionPhase};
use star_storage::{Database, Record};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Calvin-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalvinConfig {
    /// Lock-manager threads per node (`x` in `Calvin-x`).
    pub lock_managers_per_node: usize,
    /// Transactions sequenced into each batch.
    pub batch_size: usize,
}

impl Default for CalvinConfig {
    fn default() -> Self {
        CalvinConfig { lock_managers_per_node: 2, batch_size: 200 }
    }
}

impl CalvinConfig {
    /// The `Calvin-x` configuration with `x` lock-manager threads per node.
    pub fn with_lock_managers(x: usize) -> Self {
        CalvinConfig { lock_managers_per_node: x.max(1), ..Default::default() }
    }
}

/// The Calvin engine.
pub struct Calvin {
    config: BaselineConfig,
    calvin: CalvinConfig,
    workload: Arc<dyn Workload>,
    store: Arc<Database>,
    /// Optional replica of the store, brought up to date at the end of each
    /// batch through the fault-injectable [`ReplicaLink`]. Calvin proper
    /// replicates *inputs* and the second replica group re-executes them; the
    /// backup here materialises that group's applied state, both for the
    /// chaos harness (replica comparison under faults) and for the benchmark
    /// suite, which attaches it so Calvin-2 pays its replica group's apply
    /// work like every other engine in the comparison.
    backup: Option<Arc<Database>>,
    link: Arc<ReplicaLink>,
    counters: Arc<RunCounters>,
    epoch: Epoch,
    sequence: u64,
    history: Option<Arc<HistoryRecorder>>,
    last_report: Option<RunReport>,
}

impl Calvin {
    /// Builds the engine.
    pub fn new(
        config: BaselineConfig,
        calvin: CalvinConfig,
        workload: Arc<dyn Workload>,
    ) -> Result<Self> {
        config.cluster.validate().map_err(Error::Config)?;
        let store = build_full_database(workload.as_ref());
        Ok(Calvin {
            config,
            calvin,
            workload,
            store,
            backup: None,
            link: Arc::new(ReplicaLink::new()),
            counters: Arc::new(RunCounters::new()),
            epoch: 1,
            sequence: 0,
            history: None,
            last_report: None,
        })
    }

    /// The shared counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Attaches a backup replica: from now on the writes of every committed
    /// transaction are streamed through the [`ReplicaLink`] and applied to
    /// the backup at the end of each batch.
    pub fn attach_backup(&mut self) {
        if self.backup.is_none() {
            self.backup = Some(build_full_database(self.workload.as_ref()));
        }
    }

    /// Injects faults into the replication stream (attaching the backup if
    /// necessary), seeded from the cluster seed.
    pub fn set_replication_faults(&mut self, faults: LinkFaults) {
        self.attach_backup();
        self.link.set_faults(self.config.cluster.seed, faults);
    }

    /// The backup replica, if one has been attached.
    pub fn backup(&self) -> Option<&Arc<Database>> {
        self.backup.as_ref()
    }

    /// The replication link (fault counters).
    pub fn replica_link(&self) -> &Arc<ReplicaLink> {
        &self.link
    }

    /// Attaches a committed-history recorder. Calvin releases a batch's
    /// results when the whole batch finishes and never reverts one, so every
    /// commit is recorded as final immediately.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.history = Some(recorder);
    }

    /// The engine label, e.g. `"Calvin-2"`.
    pub fn label(&self) -> String {
        format!("Calvin-{}", self.calvin.lock_managers_per_node)
    }

    /// Number of executor threads available after dedicating lock-manager
    /// threads.
    fn executors(&self) -> usize {
        let total = self.config.cluster.total_workers();
        let lock_managers = self.calvin.lock_managers_per_node * self.config.cluster.num_nodes;
        total.saturating_sub(lock_managers).max(1)
    }

    /// Runs one sequenced batch; returns the number of committed
    /// transactions. Each commit's latency — from its start until the
    /// batch-release boundary — is sampled into `latency`.
    fn run_batch(&mut self, latency: &mut LatencyHistogram) -> u64 {
        let batch_size = self.calvin.batch_size;
        let epoch = self.epoch;
        let cluster = &self.config.cluster;
        // The sequencer replicates the batch inputs to every other node
        // before execution (Calvin replicates inputs, not writes).
        let input_bytes = (batch_size as u64) * 64 * (cluster.num_nodes.saturating_sub(1) as u64);
        self.counters.add_coordination_bytes(input_bytes);

        // Sequence the batch deterministically.
        let mut rng = StdRng::seed_from_u64(cluster.rng_seed_base() ^ 0xCA1517 ^ self.sequence);
        self.sequence += 1;
        let batch: Vec<Box<dyn Procedure>> = (0..batch_size)
            .map(|i| self.workload.mixed_transaction(&mut rng, i % cluster.partitions))
            .collect();

        let executors = self.executors();
        let lock_manager_queues: Vec<Mutex<()>> =
            (0..self.calvin.lock_managers_per_node.max(1)).map(|_| Mutex::new(())).collect();
        let lock_manager_queues = Arc::new(lock_manager_queues);
        let committed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let round_trip = self.config.round_trip();
        let store = &self.store;
        let counters = &self.counters;
        let history = &self.history;
        let link = &self.link;
        let replicate = self.backup.is_some();
        // Start instants of every committed transaction; their latency runs
        // until the batch-release boundary below.
        let commit_times: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            let chunks: Vec<&[Box<dyn Procedure>]> =
                batch.chunks(batch.len().div_ceil(executors)).collect();
            for (worker, chunk) in chunks.into_iter().enumerate() {
                let store = Arc::clone(store);
                let counters = Arc::clone(counters);
                let committed = Arc::clone(&committed);
                let queues = Arc::clone(&lock_manager_queues);
                let history = history.clone();
                let link = Arc::clone(link);
                let commit_times = Arc::clone(&commit_times);
                scope.spawn(move || {
                    let mut tid_gen = TidGenerator::new();
                    for proc in chunk {
                        let txn_start = Instant::now();
                        // The lock manager for this transaction's home
                        // partition grants its locks; with fewer lock-manager
                        // threads more transactions serialise on one queue.
                        let queue = &queues[proc.home_partition() % queues.len()];
                        let locked: Vec<Arc<Record>> = {
                            let grant_start = Instant::now();
                            let _grant = queue.lock();
                            counters.add_lock_or_validate(grant_start.elapsed());
                            // Deterministic ordering means lock acquisition
                            // never deadlocks; model it by locking the home
                            // record set eagerly (records become known during
                            // execution, so the grant here is the queue delay
                            // itself).
                            Vec::new()
                        };
                        drop(locked);
                        if !proc.is_single_partition() {
                            // Participants exchange remote read values.
                            counters.add_coordination_bytes(128);
                            std::thread::sleep(round_trip);
                        }
                        let mut ctx = TxnCtx::new(store.as_ref());
                        let exec_start = Instant::now();
                        let result = proc.execute(&mut ctx);
                        counters.add_execution(exec_start.elapsed());
                        match result {
                            Ok(()) => {}
                            Err(Error::Abort(star_common::AbortReason::User)) => {
                                counters.add_user_abort();
                                continue;
                            }
                            Err(_) => {
                                counters.add_abort();
                                continue;
                            }
                        }
                        let (rs, ws) = ctx.into_sets();
                        let recorded_reads = history.as_ref().map(|_| rs.clone());
                        let validate_start = Instant::now();
                        let outcome =
                            star_occ::commit_single_master(&store, rs, ws, epoch, &mut tid_gen);
                        counters.add_lock_or_validate(validate_start.elapsed());
                        match outcome {
                            Ok(output) => {
                                if let Some(history) = &history {
                                    history.record_final(CommittedTxn::from_sets(
                                        epoch,
                                        ExecutionPhase::SingleMaster,
                                        worker as u64,
                                        output.tid,
                                        recorded_reads.as_deref().unwrap_or(&[]),
                                        &output.write_set,
                                    ));
                                }
                                if replicate {
                                    link.offer(build_log_entries(
                                        &output.write_set,
                                        output.tid,
                                        star_common::ReplicationStrategy::Value,
                                        ExecutionPhase::SingleMaster,
                                    ));
                                }
                                counters.add_commit();
                                committed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                commit_times.lock().push(txn_start);
                            }
                            Err(_) => counters.add_abort(),
                        }
                        let _ = worker;
                    }
                });
            }
        });
        // The batch's results are released together; the replica group
        // applies the batch's writes at the same boundary.
        if let Some(backup) = &self.backup {
            let flush_start = Instant::now();
            self.link.group_commit(backup);
            self.counters.add_replication_flush(flush_start.elapsed());
            self.counters.add_fence(flush_start.elapsed());
        }
        self.epoch += 1;
        // Every commit is released here: its latency is the real span from
        // its start to this batch boundary (no per-batch averaging).
        let release = Instant::now();
        for txn_start in commit_times.lock().drain(..) {
            latency.record(release.saturating_duration_since(txn_start));
        }
        committed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs the engine for (at least) `duration`.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        let start = Instant::now();
        let before = self.counters.snapshot();
        let mut latency = LatencyHistogram::new();
        while start.elapsed() < duration {
            self.run_batch(&mut latency);
        }
        let elapsed = start.elapsed();
        let after = self.counters.snapshot();
        let mut window = after;
        window.committed -= before.committed;
        window.aborted -= before.aborted;
        window.user_aborted -= before.user_aborted;
        window.coordination_bytes -= before.coordination_bytes;
        window.fences -= before.fences;
        window.fence_time_us -= before.fence_time_us;
        window.execution_us -= before.execution_us;
        window.replication_flush_us -= before.replication_flush_us;
        window.wal_fsync_us -= before.wal_fsync_us;
        window.lock_or_validate_us -= before.lock_or_validate_us;
        let report = RunReport::new(
            self.label(),
            self.workload.name(),
            self.workload.mix().percentage(),
            elapsed,
            window,
            latency,
        );
        self.last_report = Some(report.clone());
        report
    }
}

impl star_core::Engine for Calvin {
    fn name(&self) -> String {
        self.label()
    }

    fn run_for(&mut self, duration: Duration) -> RunReport {
        Calvin::run_for(self, duration)
    }

    fn counters(&self) -> &RunCounters {
        Calvin::counters(self)
    }

    fn report(&self) -> RunReport {
        match &self.last_report {
            Some(report) => report.clone(),
            None => RunReport::new(
                self.label(),
                self.workload.name(),
                self.workload.mix().percentage(),
                Duration::ZERO,
                self.counters.snapshot(),
                LatencyHistogram::new(),
            ),
        }
    }

    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        Calvin::set_history_recorder(self, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::ClusterConfig;
    use star_core::testing::{kv_key, KvWorkload};

    fn config() -> BaselineConfig {
        let cluster = ClusterConfig::builder()
            .nodes(4)
            .partitions(4)
            .workers_per_node(3)
            .network_latency(Duration::from_micros(20))
            .build()
            .unwrap();
        BaselineConfig::new(cluster)
    }

    fn workload(cross: f64) -> Arc<KvWorkload> {
        Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 64,
            cross_partition_fraction: cross,
        })
    }

    #[test]
    fn calvin_commits_batches_and_counts_input_replication() {
        let mut engine =
            Calvin::new(config(), CalvinConfig::with_lock_managers(2), workload(0.1)).unwrap();
        let report = engine.run_for(Duration::from_millis(30));
        assert!(report.counters.committed > 0);
        assert!(report.counters.coordination_bytes > 0);
        assert_eq!(report.engine, "Calvin-2");
    }

    #[test]
    fn executor_count_reflects_lock_manager_threads() {
        let engine =
            Calvin::new(config(), CalvinConfig::with_lock_managers(2), workload(0.1)).unwrap();
        // 4 nodes × 3 workers − 4 nodes × 2 lock managers = 4 executors.
        assert_eq!(engine.executors(), 4);
        let engine =
            Calvin::new(config(), CalvinConfig::with_lock_managers(3), workload(0.1)).unwrap();
        assert_eq!(engine.executors(), 1, "executor count never drops below one");
    }

    #[test]
    fn batch_execution_preserves_counter_integrity() {
        let wl = workload(0.2);
        let mut engine = Calvin::new(config(), CalvinConfig::default(), wl.clone()).unwrap();
        let report = engine.run_for(Duration::from_millis(30));
        let store = engine.store.clone();
        let mut total = 0u64;
        for p in 0..4usize {
            for offset in 0..wl.rows_per_partition {
                let rec = store.get(0, p, kv_key(p, offset)).unwrap();
                assert!(!rec.is_locked());
                total += rec.read().row.field(0).unwrap().as_u64().unwrap();
            }
        }
        assert_eq!(total, report.counters.committed * 2);
    }
}
