//! Baseline engines from the STAR evaluation (Section 7.1.2).
//!
//! The paper compares STAR against four systems, all re-implemented in the
//! authors' framework so the comparison is apples-to-apples; this crate does
//! the same on top of the shared substrates (`star-storage`, `star-occ`,
//! `star-net`, `star-replication`):
//!
//! * [`PbOcc`] — a **non-partitioned** primary/backup system: a variant of
//!   Silo's OCC protocol on a single primary node (which holds the whole
//!   database) with one backup replica. Two nodes are used, as in the paper.
//! * [`DistOcc`] — a **partitioning-based** system running distributed
//!   optimistic concurrency control with two-phase commit.
//! * [`DistS2pl`] — a partitioning-based system running distributed strict
//!   two-phase locking with the NO_WAIT deadlock-prevention policy and
//!   two-phase commit.
//! * [`Calvin`] — a deterministic database with a multi-threaded lock manager
//!   (`Calvin-x` uses `x` lock-manager threads per node; the remaining
//!   threads execute transactions).
//!
//! ## Modelling note
//!
//! The distributed baselines execute against a sharded in-process store (one
//! primary copy of each partition) and charge network costs explicitly
//! through the simulated network's latency parameter: a remote read costs one
//! round trip, a two-phase commit costs two rounds to every remote
//! participant, and synchronous replication costs one round trip per commit.
//! This reproduces the *relative* behaviour the paper reports (round trips
//! dominate the baselines as the cross-partition fraction grows) without a
//! full RPC server per node; see `DESIGN.md` for the substitution table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calvin;
pub mod driver;
pub mod partitioned;
pub mod pb_occ;
pub mod replication;

pub use calvin::{Calvin, CalvinConfig};
pub use driver::BaselineConfig;
pub use partitioned::{DistOcc, DistS2pl};
pub use pb_occ::PbOcc;
pub use replication::ReplicaLink;

#[cfg(test)]
pub(crate) mod test_sync {
    //! Comparative-performance tests measure wall-clock throughput, so they
    //! must not run concurrently with each other inside this test binary.
    use parking_lot::Mutex;
    pub static PERF_TEST_LOCK: Mutex<()> = Mutex::new(());
}
