//! Partitioning-based baselines: Dist. OCC and Dist. S2PL (NO_WAIT), both
//! committing cross-partition transactions with two-phase commit.
//!
//! Each partition has a primary copy owned by one node (the sharded store)
//! and a backup on another node. A transaction executes on its home node;
//! every read of a record whose partition is owned by another node pays one
//! network round trip, and a commit involving remote partitions pays the two
//! rounds of 2PC. Replication follows the same two flavours as the other
//! engines: asynchronous with an epoch-based group commit, or synchronous
//! with a round trip per commit.

use crate::driver::{build_full_database, BaselineConfig};
use crate::replication::ReplicaLink;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::stats::{LatencyHistogram, RunCounters, RunReport};
use star_common::{
    AbortReason, Epoch, Error, Key, PartitionId, ReplicationMode, Result, TableId, TidGenerator,
};
use star_core::history::{CommittedTxn, HistoryRecorder};
use star_core::Workload;
use star_net::LinkFaults;
use star_occ::{commit_single_master, DataSource, TxnCtx};
use star_replication::{build_log_entries, ExecutionPhase, LogEntry};
use star_storage::{Database, ReadResult, Record};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which distributed concurrency-control protocol the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistCc {
    /// Distributed OCC: optimistic execution, write locks + read validation
    /// at commit.
    Occ,
    /// Distributed strict two-phase locking with the NO_WAIT policy: locks
    /// are taken at access time and a conflict aborts immediately.
    S2plNoWait,
}

/// A data source that charges a network round trip for reads of partitions
/// owned by a remote node, and (for S2PL) takes NO_WAIT locks at access time.
struct ShardedSource<'a> {
    db: &'a Database,
    config: &'a BaselineConfig,
    home_node: usize,
    counters: &'a RunCounters,
    locking: bool,
    locked: Mutex<Vec<Arc<Record>>>,
}

impl<'a> ShardedSource<'a> {
    fn new(
        db: &'a Database,
        config: &'a BaselineConfig,
        home_node: usize,
        counters: &'a RunCounters,
        locking: bool,
    ) -> Self {
        ShardedSource { db, config, home_node, counters, locking, locked: Mutex::new(Vec::new()) }
    }

    fn charge_remote_access(&self, partition: PartitionId) {
        if self.config.cluster.partition_primary(partition) != self.home_node {
            self.counters.add_coordination_bytes(96);
            std::thread::sleep(self.config.round_trip());
        }
    }

    fn take_locks(self) -> Vec<Arc<Record>> {
        self.locked.into_inner()
    }

    fn release_locks(&self) {
        for rec in self.locked.lock().drain(..) {
            rec.unlock();
        }
    }
}

impl DataSource for ShardedSource<'_> {
    fn read_record(&self, table: TableId, partition: PartitionId, key: Key) -> Result<ReadResult> {
        self.charge_remote_access(partition);
        let rec = self.db.get(table, partition, key)?;
        if self.locking {
            let already_ours = self.locked.lock().iter().any(|r| Arc::ptr_eq(r, &rec));
            if !already_ours {
                if !rec.try_lock() {
                    // NO_WAIT: a lock conflict aborts immediately.
                    return Err(Error::Abort(AbortReason::LockConflict));
                }
                self.locked.lock().push(Arc::clone(&rec));
            }
            Ok(rec.read_unsynchronized())
        } else {
            Ok(rec.read())
        }
    }

    fn secondary_lookup(&self, table: TableId, index: usize, secondary: Key) -> Result<Vec<Key>> {
        self.db.secondary_lookup(table, index, secondary)
    }
}

/// A partitioning-based engine (shared by Dist. OCC and Dist. S2PL).
pub struct PartitionedEngine {
    config: BaselineConfig,
    cc: DistCc,
    workload: Arc<dyn Workload>,
    /// Primary copies of every partition (sharded across nodes logically).
    store: Arc<Database>,
    /// Backup copies (one logical backup replica).
    backup: Arc<Database>,
    /// The store→backup replication stream (fault-injectable).
    link: Arc<ReplicaLink>,
    counters: Arc<RunCounters>,
    epoch: Epoch,
    history: Option<Arc<HistoryRecorder>>,
    last_report: Option<RunReport>,
}

impl PartitionedEngine {
    /// Builds the engine with the requested concurrency-control protocol.
    pub fn new(config: BaselineConfig, cc: DistCc, workload: Arc<dyn Workload>) -> Result<Self> {
        config.cluster.validate().map_err(Error::Config)?;
        if workload.num_partitions() != config.cluster.partitions {
            return Err(Error::Config(format!(
                "workload has {} partitions but the cluster is configured for {}",
                workload.num_partitions(),
                config.cluster.partitions
            )));
        }
        let store = build_full_database(workload.as_ref());
        let backup = build_full_database(workload.as_ref());
        Ok(PartitionedEngine {
            config,
            cc,
            workload,
            store,
            backup,
            link: Arc::new(ReplicaLink::new()),
            counters: Arc::new(RunCounters::new()),
            epoch: 1,
            history: None,
            last_report: None,
        })
    }

    /// Attaches a committed-history recorder. The partitioned baselines
    /// never revert an epoch, so every commit is recorded as final
    /// immediately.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.history = Some(recorder);
    }

    /// Injects faults into the store→backup replication stream, seeded from
    /// the cluster seed (see [`ReplicaLink`]).
    pub fn set_replication_faults(&mut self, faults: LinkFaults) {
        self.link.set_faults(self.config.cluster.seed, faults);
    }

    /// The replication link (fault counters).
    pub fn replica_link(&self) -> &Arc<ReplicaLink> {
        &self.link
    }

    /// The sharded primary store.
    pub fn store(&self) -> &Arc<Database> {
        &self.store
    }

    /// The backup replica.
    pub fn backup(&self) -> &Arc<Database> {
        &self.backup
    }

    /// The shared counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    fn engine_label(&self) -> &'static str {
        match (self.cc, self.config.replication) {
            (DistCc::Occ, ReplicationMode::Async) => "Dist. OCC",
            (DistCc::Occ, ReplicationMode::Sync) => "Dist. OCC (sync)",
            (DistCc::S2plNoWait, ReplicationMode::Async) => "Dist. S2PL",
            (DistCc::S2plNoWait, ReplicationMode::Sync) => "Dist. S2PL (sync)",
        }
    }

    fn group_commit(&mut self) {
        let start = Instant::now();
        self.link.group_commit(&self.backup);
        // The whole group commit is one synchronous stall (fence wait), and
        // its body is the replication apply to the backup (flush slice).
        self.counters.add_replication_flush(start.elapsed());
        self.epoch += 1;
        self.counters.add_fence(start.elapsed());
    }

    /// Runs the engine for (at least) `duration`.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        let cluster = self.config.cluster.clone();
        let sync = self.config.replication == ReplicationMode::Sync;
        let total_workers = cluster.total_workers();
        let epoch_interval = self.config.epoch_interval();
        let round_trip = self.config.round_trip();
        let start = Instant::now();
        let before = self.counters.snapshot();
        let latency = Arc::new(Mutex::new(LatencyHistogram::new()));

        while start.elapsed() < duration {
            let epoch = self.epoch;
            let epoch_deadline = Instant::now() + epoch_interval;
            let store = &self.store;
            let backup = &self.backup;
            let link = &self.link;
            let counters = &self.counters;
            let workload = &self.workload;
            let config = &self.config;
            let cc = self.cc;
            let latency = &latency;
            let history = &self.history;
            std::thread::scope(|scope| {
                for worker in 0..total_workers {
                    let store = Arc::clone(store);
                    let backup = Arc::clone(backup);
                    let link = Arc::clone(link);
                    let counters = Arc::clone(counters);
                    let workload = Arc::clone(workload);
                    let latency = Arc::clone(latency);
                    let history = history.clone();
                    let cluster = cluster.clone();
                    let home_node = worker % cluster.num_nodes;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(
                            cluster.rng_seed_base()
                                ^ 0xD157
                                ^ (worker as u64)
                                ^ ((epoch as u64) << 16),
                        );
                        let mut tid_gen = TidGenerator::new();
                        let mut attempts = 0u64;
                        let mut local_latency = LatencyHistogram::new();
                        // Home partitions of this worker's node.
                        let home_partitions = cluster.partitions_of(home_node);
                        while attempts == 0 || Instant::now() < epoch_deadline {
                            attempts += 1;
                            let txn_start = Instant::now();
                            let home_partition = home_partitions[rng
                                .gen_range(0..home_partitions.len().max(1))
                                % home_partitions.len().max(1)];
                            let proc = workload.mixed_transaction(&mut rng, home_partition);
                            let baseline_config = BaselineConfig {
                                cluster: cluster.clone(),
                                replication: config.replication,
                            };
                            let source = ShardedSource::new(
                                &store,
                                &baseline_config,
                                home_node,
                                &counters,
                                cc == DistCc::S2plNoWait,
                            );
                            let mut ctx = TxnCtx::new(&source);
                            let result = proc.execute(&mut ctx);
                            counters.add_execution(txn_start.elapsed());
                            match result {
                                Ok(()) => {}
                                Err(Error::Abort(AbortReason::User)) => {
                                    counters.add_user_abort();
                                    source.release_locks();
                                    continue;
                                }
                                Err(_) => {
                                    counters.add_abort();
                                    source.release_locks();
                                    continue;
                                }
                            }
                            let (rs, ws) = ctx.into_sets();
                            let recorded_reads = history.as_ref().map(|_| rs.clone());
                            // Two-phase commit: one prepare and one commit
                            // round to every remote participant.
                            let participants: Vec<usize> = {
                                let mut nodes: Vec<usize> = rs
                                    .iter()
                                    .map(|r| cluster.partition_primary(r.partition))
                                    .chain(
                                        ws.iter().map(|w| cluster.partition_primary(w.partition)),
                                    )
                                    .collect();
                                nodes.sort_unstable();
                                nodes.dedup();
                                nodes
                            };
                            let remote_participants =
                                participants.iter().filter(|&&n| n != home_node).count();
                            let commit_start = Instant::now();
                            let outcome = match cc {
                                DistCc::Occ => {
                                    commit_single_master(&store, rs, ws, epoch, &mut tid_gen)
                                        .map(|o| o.write_set)
                                }
                                DistCc::S2plNoWait => {
                                    // Locks were taken at access time; lock
                                    // any write-only records (inserts), then
                                    // install the writes under a fresh TID
                                    // and release every lock — each lock
                                    // exactly once. A record must never be
                                    // probed with `is_locked()` to decide
                                    // whether to unlock it: the instant
                                    // `write_and_unlock` releases a write
                                    // record, a concurrent NO_WAIT
                                    // transaction can acquire it, and a
                                    // second unlock from this transaction
                                    // would free the *other* transaction's
                                    // lock (a real lock-discipline collapse
                                    // the serializability checker caught as
                                    // intermittent cycles). Instead, track
                                    // which held record is written (last
                                    // write wins for duplicate keys) and
                                    // release write locks via the install
                                    // and read-only locks separately.
                                    let locked = source.take_locks();
                                    let mut extra_locked: Vec<Arc<Record>> = Vec::new();
                                    // (record, index in `ws` of its last write)
                                    let mut write_recs: Vec<(Arc<Record>, usize)> = Vec::new();
                                    let mut ok = true;
                                    for (i, w) in ws.iter().enumerate() {
                                        // get_or_insert_with is the race-safe
                                        // insert path: Database::insert would
                                        // *replace* a record a concurrent
                                        // worker just inserted and locked,
                                        // leaving two transactions committed
                                        // against two distinct record handles
                                        // for one key.
                                        let rec = match store.get_or_insert_with(
                                            w.table,
                                            w.partition,
                                            w.key,
                                            || star_storage::Record::new(star_common::Row::empty()),
                                        ) {
                                            Ok(rec) => rec,
                                            Err(_) => {
                                                ok = false;
                                                break;
                                            }
                                        };
                                        let held = locked
                                            .iter()
                                            .chain(extra_locked.iter())
                                            .any(|r| Arc::ptr_eq(r, &rec));
                                        if !held {
                                            if rec.try_lock() {
                                                extra_locked.push(Arc::clone(&rec));
                                            } else {
                                                ok = false;
                                                break;
                                            }
                                        }
                                        match write_recs
                                            .iter_mut()
                                            .find(|(r, _)| Arc::ptr_eq(r, &rec))
                                        {
                                            Some(entry) => entry.1 = i,
                                            None => write_recs.push((rec, i)),
                                        }
                                    }
                                    if ok {
                                        let max_tid = locked
                                            .iter()
                                            .chain(extra_locked.iter())
                                            .map(|r| r.tid())
                                            .max()
                                            .unwrap_or(star_common::Tid::ZERO);
                                        let tid = tid_gen.generate(epoch, max_tid);
                                        for (rec, last) in &write_recs {
                                            rec.write_and_unlock(ws[*last].row.clone(), tid);
                                        }
                                        for rec in locked.iter().chain(extra_locked.iter()) {
                                            let written =
                                                write_recs.iter().any(|(r, _)| Arc::ptr_eq(r, rec));
                                            if !written {
                                                rec.unlock();
                                            }
                                        }
                                        let mut ws_out = ws;
                                        for w in &mut ws_out {
                                            w.operation = None;
                                        }
                                        Ok(ws_out)
                                    } else {
                                        // Abort: nothing has been written or
                                        // unlocked yet, so every lock in
                                        // `locked`/`extra_locked` is still
                                        // ours to release.
                                        for rec in locked.iter().chain(extra_locked.iter()) {
                                            rec.unlock();
                                        }
                                        Err(Error::Abort(AbortReason::LockConflict))
                                    }
                                }
                            };
                            counters.add_lock_or_validate(commit_start.elapsed());
                            let write_set = match outcome {
                                Ok(ws) => ws,
                                Err(Error::Abort(_)) => {
                                    counters.add_abort();
                                    continue;
                                }
                                Err(_) => {
                                    counters.add_abort();
                                    continue;
                                }
                            };
                            if let Some(history) = &history {
                                // Both protocols assign exactly one TID per
                                // commit, so the generator's last TID is this
                                // transaction's commit TID.
                                history.record_final(CommittedTxn::from_sets(
                                    epoch,
                                    ExecutionPhase::SingleMaster,
                                    worker as u64,
                                    tid_gen.last(),
                                    recorded_reads.as_deref().unwrap_or(&[]),
                                    &write_set,
                                ));
                            }
                            if remote_participants > 0 {
                                // 2PC: prepare + commit rounds.
                                counters.add_coordination_bytes((remote_participants as u64) * 128);
                                std::thread::sleep(round_trip * 2);
                            }
                            if !write_set.is_empty() {
                                let entries = build_log_entries(
                                    &write_set,
                                    tid_gen.last(),
                                    star_common::ReplicationStrategy::Value,
                                    ExecutionPhase::SingleMaster,
                                );
                                let bytes: usize = entries.iter().map(LogEntry::wire_size).sum();
                                counters.add_replication_bytes(bytes as u64);
                                if sync {
                                    let flush_start = Instant::now();
                                    link.deliver_now(&entries, &backup);
                                    std::thread::sleep(round_trip);
                                    counters.add_replication_flush(flush_start.elapsed());
                                } else {
                                    link.offer(entries);
                                }
                            }
                            counters.add_commit();
                            if sync {
                                local_latency.record(txn_start.elapsed());
                            } else {
                                // Async replication releases the result at
                                // the epoch's group commit, which fires at
                                // the epoch deadline: sample each commit's
                                // real wait until that release point.
                                local_latency
                                    .record(epoch_deadline.saturating_duration_since(txn_start));
                            }
                        }
                        latency.lock().merge(&local_latency);
                    });
                }
            });
            self.group_commit();
        }

        let elapsed = start.elapsed();
        let after = self.counters.snapshot();
        let mut window = after;
        window.committed -= before.committed;
        window.aborted -= before.aborted;
        window.user_aborted -= before.user_aborted;
        window.replication_bytes -= before.replication_bytes;
        window.coordination_bytes -= before.coordination_bytes;
        window.fences -= before.fences;
        window.fence_time_us -= before.fence_time_us;
        window.execution_us -= before.execution_us;
        window.replication_flush_us -= before.replication_flush_us;
        window.wal_fsync_us -= before.wal_fsync_us;
        window.lock_or_validate_us -= before.lock_or_validate_us;
        let report = RunReport::new(
            self.engine_label(),
            self.workload.name(),
            self.workload.mix().percentage(),
            elapsed,
            window,
            Arc::try_unwrap(latency).map(Mutex::into_inner).unwrap_or_default(),
        );
        self.last_report = Some(report.clone());
        report
    }

    fn report(&self) -> RunReport {
        match &self.last_report {
            Some(report) => report.clone(),
            None => RunReport::new(
                self.engine_label(),
                self.workload.name(),
                self.workload.mix().percentage(),
                Duration::ZERO,
                self.counters.snapshot(),
                LatencyHistogram::new(),
            ),
        }
    }
}

/// Distributed OCC with two-phase commit.
pub struct DistOcc(PartitionedEngine);

impl DistOcc {
    /// Builds the engine.
    pub fn new(config: BaselineConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        PartitionedEngine::new(config, DistCc::Occ, workload).map(DistOcc)
    }

    /// Runs the engine for (at least) `duration`.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        self.0.run_for(duration)
    }

    /// The shared counters.
    pub fn counters(&self) -> &RunCounters {
        self.0.counters()
    }

    /// Attaches a committed-history recorder.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.0.set_history_recorder(recorder);
    }

    /// Injects faults into the store→backup replication stream.
    pub fn set_replication_faults(&mut self, faults: LinkFaults) {
        self.0.set_replication_faults(faults);
    }

    /// The replication link (fault counters).
    pub fn replica_link(&self) -> &Arc<ReplicaLink> {
        self.0.replica_link()
    }

    /// The backup replica.
    pub fn backup(&self) -> &Arc<Database> {
        self.0.backup()
    }
}

impl star_core::Engine for DistOcc {
    fn name(&self) -> String {
        self.0.engine_label().to_string()
    }

    fn run_for(&mut self, duration: Duration) -> RunReport {
        DistOcc::run_for(self, duration)
    }

    fn counters(&self) -> &RunCounters {
        DistOcc::counters(self)
    }

    fn report(&self) -> RunReport {
        self.0.report()
    }

    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        DistOcc::set_history_recorder(self, recorder)
    }
}

/// Distributed strict 2PL (NO_WAIT) with two-phase commit.
pub struct DistS2pl(PartitionedEngine);

impl DistS2pl {
    /// Builds the engine.
    pub fn new(config: BaselineConfig, workload: Arc<dyn Workload>) -> Result<Self> {
        PartitionedEngine::new(config, DistCc::S2plNoWait, workload).map(DistS2pl)
    }

    /// Runs the engine for (at least) `duration`.
    pub fn run_for(&mut self, duration: Duration) -> RunReport {
        self.0.run_for(duration)
    }

    /// The shared counters.
    pub fn counters(&self) -> &RunCounters {
        self.0.counters()
    }

    /// Attaches a committed-history recorder.
    pub fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        self.0.set_history_recorder(recorder);
    }

    /// Injects faults into the store→backup replication stream.
    pub fn set_replication_faults(&mut self, faults: LinkFaults) {
        self.0.set_replication_faults(faults);
    }

    /// The replication link (fault counters).
    pub fn replica_link(&self) -> &Arc<ReplicaLink> {
        self.0.replica_link()
    }

    /// The backup replica.
    pub fn backup(&self) -> &Arc<Database> {
        self.0.backup()
    }
}

impl star_core::Engine for DistS2pl {
    fn name(&self) -> String {
        self.0.engine_label().to_string()
    }

    fn run_for(&mut self, duration: Duration) -> RunReport {
        DistS2pl::run_for(self, duration)
    }

    fn counters(&self) -> &RunCounters {
        DistS2pl::counters(self)
    }

    fn report(&self) -> RunReport {
        self.0.report()
    }

    fn set_history_recorder(&mut self, recorder: Arc<HistoryRecorder>) {
        DistS2pl::set_history_recorder(self, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::ClusterConfig;
    use star_core::testing::{kv_key, KvWorkload};

    fn config() -> BaselineConfig {
        let cluster = ClusterConfig::builder()
            .nodes(4)
            .partitions(4)
            .workers_per_node(1)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .build()
            .unwrap();
        BaselineConfig::new(cluster)
    }

    fn workload(cross: f64) -> Arc<KvWorkload> {
        Arc::new(KvWorkload {
            partitions: 4,
            rows_per_partition: 64,
            cross_partition_fraction: cross,
        })
    }

    #[test]
    fn dist_occ_commits_and_counts_coordination() {
        let mut engine = DistOcc::new(config(), workload(0.5)).unwrap();
        let report = engine.run_for(Duration::from_millis(40));
        assert!(report.counters.committed > 0);
        assert!(report.counters.coordination_bytes > 0, "2PC traffic must be charged");
        assert_eq!(report.engine, "Dist. OCC");
    }

    #[test]
    fn dist_s2pl_commits_and_preserves_counter_integrity() {
        let wl = workload(0.3);
        let mut engine = DistS2pl::new(config(), wl.clone()).unwrap();
        let report = engine.run_for(Duration::from_millis(40));
        assert!(report.counters.committed > 0);
        // All counters must add up: every KvRmw increments two counters.
        let mut total = 0u64;
        for p in 0..4usize {
            for offset in 0..wl.rows_per_partition {
                let rec = engine.0.store().get(0, p, kv_key(p, offset)).unwrap();
                assert!(!rec.is_locked(), "no lock may leak after a run");
                total += rec.read().row.field(0).unwrap().as_u64().unwrap();
            }
        }
        assert_eq!(total, report.counters.committed * 2);
    }

    #[test]
    fn cross_partition_transactions_hurt_partitioned_systems() {
        // The core shape of Figure 11: partitioning-based systems slow down
        // as the cross-partition fraction grows. A higher latency makes the
        // gap robust to scheduling noise on a loaded test host.
        let _serial = crate::test_sync::PERF_TEST_LOCK.lock();
        let mut cfg = config();
        cfg.cluster =
            cfg.cluster.to_builder().network_latency(Duration::from_micros(200)).build().unwrap();
        let mut local_engine = DistOcc::new(cfg.clone(), workload(0.0)).unwrap();
        let local = local_engine.run_for(Duration::from_millis(150));
        let mut remote_engine = DistOcc::new(cfg, workload(1.0)).unwrap();
        let remote = remote_engine.run_for(Duration::from_millis(150));
        assert!(
            remote.throughput < local.throughput,
            "remote {} >= local {}",
            remote.throughput,
            local.throughput
        );
    }
}
