//! Seeded YCSB driver for a running `star-serverd` cluster.
//!
//! ```text
//! star-client --bootstrap cluster.toml --iterations 3 \
//!     --partitioned-txns 200 --single-master-txns 50
//! ```
//!
//! Sends one `Run` request to the master node (which coordinates the stepped
//! partitioned / single-master schedule across the cluster), then samples a
//! pipelined batch of point reads across every partition to show the
//! replicated state, and prints commit statistics.

use star_client::{Client, Pool};
use star_proto::{AdminQuery, Request, Response, Role};
use star_serverd::Bootstrap;
use star_workloads::ycsb::{ycsb_key, YCSB_TABLE};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: star-client --bootstrap <file> [--iterations N] \
         [--partitioned-txns N] [--single-master-txns N] [--samples N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bootstrap_path: Option<String> = None;
    let mut iterations: u32 = 3;
    let mut partitioned_txns: u64 = 100;
    let mut single_master_txns: u64 = 20;
    let mut samples: u64 = 4;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next().unwrap_or_default();
        let ok = match arg.as_str() {
            "--bootstrap" => {
                bootstrap_path = Some(value);
                true
            }
            "--iterations" => value.parse().map(|n| iterations = n).is_ok(),
            "--partitioned-txns" => value.parse().map(|n| partitioned_txns = n).is_ok(),
            "--single-master-txns" => value.parse().map(|n| single_master_txns = n).is_ok(),
            "--samples" => value.parse().map(|n| samples = n).is_ok(),
            _ => return usage(),
        };
        if !ok {
            eprintln!("star-client: bad value for {arg}");
            return usage();
        }
    }
    let Some(path) = bootstrap_path else {
        return usage();
    };
    let boot = match Bootstrap::from_file(&path) {
        Ok(boot) => boot,
        Err(e) => {
            eprintln!("star-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = drive(&boot, iterations, partitioned_txns, single_master_txns, samples) {
        eprintln!("star-client: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn drive(
    boot: &Bootstrap,
    iterations: u32,
    partitioned_txns: u64,
    single_master_txns: u64,
    samples: u64,
) -> std::io::Result<()> {
    let master = boot.config.master_node();
    let mut coordinator = Client::connect(&boot.addrs[master], Role::Client)?;
    println!(
        "star-client: driving {iterations} iteration(s) of YCSB \
         ({partitioned_txns} partitioned + {single_master_txns} single-master txns each) \
         via node {master}"
    );
    let started = Instant::now();
    let run =
        coordinator.request(Request::Run { iterations, partitioned_txns, single_master_txns })?;
    let elapsed = started.elapsed();
    let (committed, epochs) = match run {
        Response::RunDone { committed, epochs } => (committed, epochs),
        Response::Error(e) => return Err(std::io::Error::other(e)),
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected RunDone, got {other:?}"),
            ));
        }
    };
    let per_sec = committed as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "star-client: committed {committed} txn(s) across {epochs} epoch(s) \
         in {elapsed:.2?} ({per_sec:.0} txn/s)"
    );

    // Sample point reads across every partition, pipelined per node through
    // the pool; a node answers only for partitions it holds a replica of.
    let mut pool = Pool::connect(&boot.addrs, Role::Client)?;
    let rows = boot.workload.rows_per_partition;
    for node in 0..pool.len() {
        let client = pool.node(node).expect("pooled node");
        let batch: Vec<Request> = (0..boot.config.partitions)
            .flat_map(|p| {
                (0..samples.min(rows)).map(move |offset| Request::Get {
                    table: YCSB_TABLE,
                    partition: p as u32,
                    key: ycsb_key(p, offset),
                })
            })
            .collect();
        let total = batch.len();
        let responses = client.pipeline(batch)?;
        let found =
            responses.iter().filter(|r| matches!(r, Response::Record { row: Some(_), .. })).count();
        let errors = responses.iter().filter(|r| matches!(r, Response::Error(_))).count();
        println!(
            "star-client: node {node}: {found}/{total} sampled rows present, \
             {}/{total} reads served locally",
            total - errors
        );
    }

    // Close with the cluster status from the coordinator's point of view.
    match coordinator.request(Request::Admin(AdminQuery::Status))? {
        Response::Status(status) => {
            println!(
                "star-client: node {} at epoch {} (last committed {}), master {}, \
                 generation {}, {} committed txn(s)",
                status.node,
                status.epoch,
                status.last_committed,
                status.master,
                status.generation,
                status.committed
            );
            Ok(())
        }
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected Status, got {other:?}"),
        )),
    }
}
