//! Live cluster inspection for `star-serverd`.
//!
//! ```text
//! star-admin --bootstrap cluster.toml status      # epoch/master per node
//! star-admin --bootstrap cluster.toml elections   # full election log per node
//! star-admin --bootstrap cluster.toml digest      # replica state digest per node
//! star-admin --bootstrap cluster.toml history     # committed-txn counts per node
//! star-admin --bootstrap cluster.toml shutdown    # stop every node
//! ```
//!
//! Every command queries each node in the bootstrap file in turn, so a
//! diverged node stands out by inspection (`digest` makes divergence a
//! one-line diff).

use star_client::Client;
use star_proto::{AdminQuery, Request, Response, Role};
use star_serverd::Bootstrap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: star-admin --bootstrap <file> <status|elections|digest|history|shutdown>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bootstrap_path: Option<String> = None;
    let mut command: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bootstrap" => bootstrap_path = args.next(),
            "--help" | "-h" => return usage(),
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    let (Some(path), Some(command)) = (bootstrap_path, command) else {
        return usage();
    };
    let boot = match Bootstrap::from_file(&path) {
        Ok(boot) => boot,
        Err(e) => {
            eprintln!("star-admin: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = match command.as_str() {
        "status" => Request::Admin(AdminQuery::Status),
        "elections" => Request::Admin(AdminQuery::Elections),
        "digest" => Request::Admin(AdminQuery::ReplicaDigest),
        "history" => Request::Admin(AdminQuery::History),
        "shutdown" => Request::Shutdown,
        other => {
            eprintln!("unknown command: {other}");
            return usage();
        }
    };
    let mut failed = false;
    for (node, addr) in boot.addrs.iter().enumerate() {
        match query(addr, request.clone()) {
            Ok(response) => print_response(node, addr, &response),
            Err(e) => {
                eprintln!("node {node} ({addr}): unreachable: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn query(addr: &str, request: Request) -> std::io::Result<Response> {
    let mut client = Client::connect(addr, Role::Admin)?;
    client.request(request)
}

fn print_response(node: usize, addr: &str, response: &Response) {
    match response {
        Response::Status(status) => {
            println!(
                "node {node} ({addr}): epoch {} (last committed {}), master {}, \
                 generation {}, {} committed txn(s), {}",
                status.epoch,
                status.last_committed,
                status.master,
                status.generation,
                status.committed,
                if status.full_replica { "full replica" } else { "partial replica" }
            );
        }
        Response::Elections(log) => {
            println!("node {node} ({addr}): {} election record(s)", log.len());
            for election in log {
                let master = if election.master < 0 {
                    "none".to_string()
                } else {
                    format!("node {}", election.master)
                };
                println!(
                    "  epoch {:>6}: master {master}, generation {}",
                    election.epoch, election.generation
                );
            }
        }
        Response::Digest { records, digest } => {
            println!("node {node} ({addr}): {records} record(s), digest {digest:#018x}");
        }
        Response::History(txns) => {
            let epochs: std::collections::BTreeSet<u32> = txns.iter().map(|t| t.epoch).collect();
            println!(
                "node {node} ({addr}): {} committed txn(s) across {} epoch(s)",
                txns.len(),
                epochs.len()
            );
        }
        Response::Ok => println!("node {node} ({addr}): ok"),
        Response::Error(e) => println!("node {node} ({addr}): error: {e}"),
        other => println!("node {node} ({addr}): unexpected response {other:?}"),
    }
}
