//! `star-client`: connection-pooled, pipelined client for `star-serverd`.
//!
//! [`Client`] is one connection: requests carry correlation ids, so many can
//! be written before any response is read — [`Client::pipeline`] ships a
//! whole batch in one write burst and then collects the responses, which is
//! what makes a point-read driver fast over a real network. [`Pool`] holds
//! one client per cluster node and routes point reads to a node that
//! actually holds the partition.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use star_proto::{read_message, write_message, Request, Response, Role, WireMessage};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long connecting retries while the target node boots.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// One connection to one node.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Node id the server reported in its `HelloAck`.
    node: u32,
    /// Cluster size the server reported.
    num_nodes: u32,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").field("node", &self.node).finish()
    }
}

impl Client {
    /// Connects to `addr` and performs the handshake, retrying while the
    /// node is still booting.
    pub fn connect(addr: &str, role: Role) -> io::Result<Client> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut client = Client { stream, next_id: 0, node: 0, num_nodes: 0 };
        write_message(&mut client.stream, &WireMessage::Hello { role, node: 0 })?;
        client.stream.flush()?;
        match read_message(&mut client.stream)? {
            WireMessage::HelloAck { node, num_nodes } => {
                client.node = node;
                client.num_nodes = num_nodes;
                Ok(client)
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            )),
        }
    }

    /// The node id of the server this client is connected to.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The cluster size the server reported at handshake.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, body: Request) -> io::Result<Response> {
        let mut responses = self.pipeline(vec![body])?;
        responses.pop().ok_or_else(|| io::ErrorKind::UnexpectedEof.into())
    }

    /// Pipelines a batch: writes every request back-to-back in one burst,
    /// flushes once, then reads until every response has arrived. Responses
    /// are returned in request order regardless of arrival order.
    pub fn pipeline(&mut self, bodies: Vec<Request>) -> io::Result<Vec<Response>> {
        let ids: Vec<u64> = bodies
            .iter()
            .map(|_| {
                self.next_id += 1;
                self.next_id
            })
            .collect();
        for (id, body) in ids.iter().zip(bodies) {
            write_message(&mut self.stream, &WireMessage::Request { id: *id, body })?;
        }
        self.stream.flush()?;
        let mut by_id: BTreeMap<u64, Response> = BTreeMap::new();
        while by_id.len() < ids.len() {
            match read_message(&mut self.stream)? {
                WireMessage::Response { id, body } => {
                    by_id.insert(id, body);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Response, got {other:?}"),
                    ))
                }
            }
        }
        ids.iter()
            .map(|id| by_id.remove(id).ok_or_else(|| io::ErrorKind::InvalidData.into()))
            .collect()
    }
}

/// One client per cluster node, with round-robin selection for queries any
/// node can answer and partition-aware routing for point reads.
pub struct Pool {
    clients: Vec<Client>,
    next: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("nodes", &self.clients.len()).finish()
    }
}

impl Pool {
    /// Connects to every node address.
    pub fn connect(addrs: &[String], role: Role) -> io::Result<Pool> {
        let clients =
            addrs.iter().map(|addr| Client::connect(addr, role)).collect::<io::Result<Vec<_>>>()?;
        Ok(Pool { clients, next: 0 })
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The client for one specific node.
    pub fn node(&mut self, node: usize) -> Option<&mut Client> {
        self.clients.get_mut(node)
    }

    /// The next client in round-robin order.
    pub fn any(&mut self) -> &mut Client {
        let pick = self.next % self.clients.len();
        self.next = self.next.wrapping_add(1);
        &mut self.clients[pick]
    }
}
