//! End-to-end coverage for the pooled, pipelined client against a live
//! localhost cluster.

use star_client::{Client, Pool};
use star_proto::{AdminQuery, Request, Response, Role};
use star_serverd::{Bootstrap, NodeServer};
use star_workloads::ycsb::{ycsb_key, YCSB_TABLE};
use std::net::TcpListener;

fn boot_cluster() -> (Vec<NodeServer>, Bootstrap) {
    let listeners: Vec<TcpListener> =
        (0..3).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let text = format!(
        "[cluster]\nnodes = [{}]\nfull_replicas = 1\nworkers_per_node = 1\n\
         partitions = 6\nseed = 7\n\n[workload]\nrows_per_partition = 32\n\
         ops_per_transaction = 4\nread_pct = 80.0\ncross_partition_pct = 10.0\n",
        addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", ")
    );
    let boot = Bootstrap::parse(&text).expect("bootstrap parses");
    let servers: Vec<NodeServer> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| NodeServer::start_on(listener, &boot, id).expect("start node"))
        .collect();
    (servers, boot)
}

#[test]
fn handshake_reports_node_identity() {
    let (servers, boot) = boot_cluster();
    for (id, server) in servers.iter().enumerate() {
        let client = Client::connect(server.local_addr(), Role::Client).expect("connect");
        assert_eq!(client.node(), id as u32);
        assert_eq!(client.num_nodes() as usize, boot.config.num_nodes);
    }
    for server in &servers {
        server.shutdown();
    }
}

#[test]
fn pipelined_batch_returns_responses_in_request_order() {
    let (servers, _boot) = boot_cluster();
    // Node 0 is the primary for partition 0; interleave pings with reads of
    // loaded and absent keys so each slot has a distinct expected response.
    let mut client = Client::connect(servers[0].local_addr(), Role::Client).expect("connect");
    let batch = vec![
        Request::Ping,
        Request::Get { table: YCSB_TABLE, partition: 0, key: ycsb_key(0, 0) },
        Request::Ping,
        Request::Get { table: YCSB_TABLE, partition: 0, key: ycsb_key(0, 1_000_000) },
        Request::Ping,
    ];
    let responses = client.pipeline(batch).expect("pipeline");
    assert_eq!(responses.len(), 5);
    assert_eq!(responses[0], Response::Pong);
    assert!(matches!(responses[1], Response::Record { row: Some(_), .. }), "{:?}", responses[1]);
    assert_eq!(responses[2], Response::Pong);
    assert!(
        matches!(responses[3], Response::Record { row: None, .. }),
        "unloaded key should read as absent: {:?}",
        responses[3]
    );
    assert_eq!(responses[4], Response::Pong);
    for server in &servers {
        server.shutdown();
    }
}

#[test]
fn pool_runs_workload_and_inspects_every_node() {
    let (servers, boot) = boot_cluster();
    let mut addrs = boot.addrs.clone();
    // The pool must work from the actual bound addresses.
    for (server, addr) in servers.iter().zip(addrs.iter_mut()) {
        *addr = server.local_addr().to_string();
    }
    let mut pool = Pool::connect(&addrs, Role::Client).expect("pool");
    assert_eq!(pool.len(), 3);
    assert!(!pool.is_empty());

    // Round-robin distributes across connections.
    let first = pool.any().node();
    let second = pool.any().node();
    assert_ne!(first, second, "round-robin should advance");

    // Drive a run through the master node, then confirm every node reports
    // the same advanced epoch via its own pooled connection.
    let master = boot.config.master_node();
    let committed = match pool
        .node(master)
        .expect("master conn")
        .request(Request::Run { iterations: 2, partitioned_txns: 10, single_master_txns: 5 })
        .expect("run")
    {
        Response::RunDone { committed, epochs } => {
            assert_eq!(epochs, 4);
            committed
        }
        other => panic!("expected RunDone, got {other:?}"),
    };
    assert!(committed > 0);
    for node in 0..pool.len() {
        match pool
            .node(node)
            .expect("node conn")
            .request(Request::Admin(AdminQuery::Status))
            .expect("status")
        {
            Response::Status(status) => {
                assert_eq!(status.node as usize, node);
                assert_eq!(status.last_committed, 4, "node {node} lags the run");
            }
            other => panic!("expected Status, got {other:?}"),
        }
    }
    for server in &servers {
        server.shutdown();
    }
}
