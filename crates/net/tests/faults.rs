//! Integration tests for the simulated network's ordering guarantees and for
//! the fault plane's accounting semantics — the properties the chaos
//! harness's correctness argument rests on.

use star_net::{LinkFaults, Message, NetworkConfig, SimNetwork};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
struct Msg(u64, usize);

impl Message for Msg {
    fn wire_size(&self) -> usize {
        self.1
    }
}

/// A payload that opts into byzantine corruption: the fault plane's salt
/// flips one bit of the value, like `ReplicationBatch` does for row data.
#[derive(Debug, Clone, PartialEq)]
struct CorruptibleMsg(u64);

impl Message for CorruptibleMsg {
    fn wire_size(&self) -> usize {
        8
    }

    fn corrupt(&mut self, salt: u64) -> bool {
        self.0 ^= 1 << (salt % 64);
        true
    }
}

#[test]
fn delivery_is_fifo_per_link_under_nonzero_latency() {
    // Operation replication requires per-link FIFO; latency must delay
    // messages without letting them overtake each other.
    let config = NetworkConfig::with_latency(Duration::from_millis(1));
    let (_net, eps) = SimNetwork::new::<Msg>(3, config);
    let start = Instant::now();
    for i in 0..16u64 {
        eps[0].send(2, Msg(i, 1)).unwrap();
        eps[1].send(2, Msg(100 + i, 1)).unwrap();
    }
    let mut from_0 = Vec::new();
    let mut from_1 = Vec::new();
    for _ in 0..32 {
        let env = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(1), "latency was not applied");
        match env.from {
            0 => from_0.push(env.payload.0),
            1 => from_1.push(env.payload.0),
            other => panic!("unexpected sender {other}"),
        }
    }
    // Per-sender streams arrive in send order even though the two senders
    // interleave on the shared destination queue.
    assert_eq!(from_0, (0..16).collect::<Vec<_>>());
    assert_eq!(from_1, (100..116).collect::<Vec<_>>());
}

#[test]
fn dropped_messages_still_count_as_sent_bytes() {
    let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
    net.seed_faults(1);
    net.set_link_faults(0, 1, LinkFaults::dropping(1.0));
    for i in 0..5u64 {
        eps[0].send(1, Msg(i, 100)).unwrap();
    }
    // The packets were transmitted (and paid for), then lost in flight.
    assert_eq!(net.stats().bytes(), 500);
    assert_eq!(net.stats().messages(), 5);
    assert_eq!(net.stats().dropped_messages(), 5);
    assert!(eps[1].try_recv().is_err(), "dropped messages must not be delivered");
}

#[test]
fn duplicated_messages_are_delivered_and_accounted_twice() {
    let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
    net.seed_faults(2);
    net.set_link_faults(0, 1, LinkFaults::duplicating(1.0));
    eps[0].send(1, Msg(7, 40)).unwrap();
    assert_eq!(net.stats().duplicated_messages(), 1);
    // Two transmissions, two payments.
    assert_eq!(net.stats().bytes(), 80);
    let first = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
    let second = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(first.payload, Msg(7, 40));
    assert_eq!(second.payload, Msg(7, 40));
    assert!(eps[1].try_recv().is_err());
}

#[test]
fn reordered_messages_are_overtaken_then_released() {
    let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
    net.seed_faults(3);
    net.set_link_faults(0, 1, LinkFaults::reordering(1.0));
    eps[0].send(1, Msg(1, 10)).unwrap();
    assert_eq!(net.stats().reordered_messages(), 1);
    assert!(eps[1].try_recv().is_err(), "stashed message must not be visible yet");
    // Bytes were accounted at the original send.
    assert_eq!(net.stats().bytes(), 10);
    // A later fault-free message overtakes the stashed one.
    net.set_link_faults(0, 1, LinkFaults::none());
    eps[0].send(1, Msg(2, 10)).unwrap();
    let order: Vec<u64> = eps[1].drain().into_iter().map(|e| e.payload.0).collect();
    assert_eq!(order, vec![2, 1], "the second message must overtake the first");
    assert_eq!(net.stats().bytes(), 20, "the release must not re-account bytes");
}

#[test]
fn flush_stash_releases_reordered_messages_without_new_traffic() {
    let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
    net.seed_faults(4);
    net.set_link_faults(0, 1, LinkFaults::reordering(1.0));
    eps[0].send(1, Msg(9, 5)).unwrap();
    assert!(eps[1].try_recv().is_err());
    // This is what the replication fence does before draining receivers.
    eps[0].flush_stash();
    assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(9, 5));
}

#[test]
fn corrupted_messages_are_delivered_mutated_and_accounted() {
    let (net, eps) = SimNetwork::new::<CorruptibleMsg>(2, NetworkConfig::instantaneous());
    net.seed_faults(5);
    net.set_link_faults(0, 1, LinkFaults::corrupting(1.0));
    eps[0].send(1, CorruptibleMsg(0)).unwrap();
    let env = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
    assert_ne!(env.payload, CorruptibleMsg(0), "the payload must arrive bit-flipped");
    assert_eq!(env.payload.0.count_ones(), 1, "exactly one bit must have flipped");
    assert_eq!(net.stats().corrupted_messages(), 1);
    // Bytes are accounted once: the message was transmitted normally, the
    // corruption happened in flight.
    assert_eq!(net.stats().bytes(), 8);
}

#[test]
fn corruption_is_a_noop_for_payloads_that_do_not_opt_in() {
    // `Msg` keeps the default `corrupt` (returns false): a Corrupt verdict
    // degrades to a plain delivery and the counter stays at zero.
    let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
    net.seed_faults(6);
    net.set_link_faults(0, 1, LinkFaults::corrupting(1.0));
    eps[0].send(1, Msg(11, 4)).unwrap();
    assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(11, 4));
    assert_eq!(net.stats().corrupted_messages(), 0);
}

#[test]
fn cut_links_drop_silently_and_heal() {
    let (net, eps) = SimNetwork::new::<Msg>(3, NetworkConfig::instantaneous());
    net.cut_link(0, 1);
    assert!(net.is_link_cut(0, 1) && net.is_link_cut(1, 0));
    // Sends succeed (the sender cannot tell) but nothing arrives.
    eps[0].send(1, Msg(1, 8)).unwrap();
    eps[1].send(0, Msg(2, 8)).unwrap();
    assert!(eps[1].try_recv().is_err());
    assert!(eps[0].try_recv().is_err());
    assert_eq!(net.stats().dropped_messages(), 2);
    assert_eq!(net.stats().bytes(), 16);
    // Unrelated links are unaffected.
    eps[0].send(2, Msg(3, 8)).unwrap();
    assert_eq!(eps[2].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(3, 8));
    net.heal_link(0, 1);
    eps[0].send(1, Msg(4, 8)).unwrap();
    assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(4, 8));
}

#[test]
fn partition_isolates_an_island() {
    let (net, eps) = SimNetwork::new::<Msg>(4, NetworkConfig::instantaneous());
    net.partition(&[2, 3]);
    // Across the partition: silent loss, both directions.
    eps[0].send(2, Msg(1, 1)).unwrap();
    eps[3].send(1, Msg(2, 1)).unwrap();
    assert!(eps[2].try_recv().is_err());
    assert!(eps[1].try_recv().is_err());
    // Within each side: unaffected.
    eps[0].send(1, Msg(3, 1)).unwrap();
    eps[2].send(3, Msg(4, 1)).unwrap();
    assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(3, 1));
    assert_eq!(eps[3].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(4, 1));
    net.heal_all_links();
    eps[0].send(2, Msg(5, 1)).unwrap();
    assert_eq!(eps[2].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(5, 1));
}

#[test]
fn fault_decisions_reproduce_from_the_seed() {
    let run = |seed: u64| -> (u64, u64, u64, Vec<u64>) {
        let (net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
        net.seed_faults(seed);
        net.set_link_faults(
            0,
            1,
            LinkFaults {
                drop_probability: 0.2,
                duplicate_probability: 0.2,
                reorder_probability: 0.2,
                ..LinkFaults::none()
            },
        );
        for i in 0..64u64 {
            eps[0].send(1, Msg(i, 1)).unwrap();
        }
        eps[0].flush_stash();
        let delivered: Vec<u64> = eps[1].drain().into_iter().map(|e| e.payload.0).collect();
        (
            net.stats().dropped_messages(),
            net.stats().duplicated_messages(),
            net.stats().reordered_messages(),
            delivered,
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).3, run(43).3, "different seeds should produce different histories");
}
