//! The transport seam between the engine and the network substrate.
//!
//! The engine's transaction-execution paths replicate through this trait
//! instead of a concrete endpoint, so the same execution code runs over the
//! deterministic in-memory simulation ([`Endpoint`]) and over a real TCP
//! mesh (`star-serverd`). The simulation twin and the wire deployment being
//! *the same code* on either side of this seam is what makes transport-parity
//! testing meaningful: any divergence is in the transport, not the engine.

use crate::endpoint::{Endpoint, Message, SendError};

/// A one-way, per-link-FIFO message fabric connecting the nodes of a cluster.
///
/// Implementations must preserve per-link send order for delivered messages
/// (the operation-replication stream relies on it); cross-link ordering is
/// unspecified.
pub trait Transport<M: Message>: Send + Sync {
    /// The node id this transport handle sends from.
    fn node(&self) -> usize;

    /// Number of nodes in the cluster.
    fn num_nodes(&self) -> usize;

    /// Sends `payload` to node `to`.
    fn send(&self, to: usize, payload: M) -> Result<(), SendError>;
}

impl<M: Message + Clone> Transport<M> for Endpoint<M> {
    fn node(&self) -> usize {
        Endpoint::node(self)
    }

    fn num_nodes(&self) -> usize {
        Endpoint::num_nodes(self)
    }

    fn send(&self, to: usize, payload: M) -> Result<(), SendError> {
        Endpoint::send(self, to, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{NetworkConfig, SimNetwork};
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(u64);

    impl Message for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn endpoint_implements_transport() {
        let (_net, eps) = SimNetwork::new::<Msg>(2, NetworkConfig::instantaneous());
        let transport: &dyn Transport<Msg> = &eps[0];
        assert_eq!(transport.node(), 0);
        assert_eq!(transport.num_nodes(), 2);
        transport.send(1, Msg(5)).unwrap();
        assert_eq!(eps[1].recv_timeout(Duration::from_secs(1)).unwrap().payload, Msg(5));
    }
}
