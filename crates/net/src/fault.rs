//! Seeded fault injection for the simulated network.
//!
//! The chaos harness (`star-chaos`) drives the cluster through message
//! drops, delays, duplicates, reorders and link partitions. All fault
//! decisions are drawn from per-link RNGs seeded deterministically from a
//! single base seed, so a run is exactly reproducible from `(seed, fault
//! configuration, message sequence)` alone — the FoundationDB-style
//! "re-run the seed to reproduce the bug" workflow.
//!
//! Fault semantics (what the protocol layer may assume):
//!
//! * **drop / cut link** — the message is lost silently; the sender still
//!   pays the wire bytes (the packet was transmitted, then lost in flight).
//!   STAR's replication fence cannot detect silent loss, so schedules must
//!   confine losses to epochs that end in a failure detection (the epoch
//!   revert of Figure 6 discards every in-flight message of the epoch), or
//!   to links whose receiver is later rebuilt via node recovery.
//! * **delay** — delivery is postponed by `extra_delay`; ordering within the
//!   link is preserved, so this is always protocol-safe.
//! * **duplicate** — the message is enqueued (and the bytes accounted)
//!   twice. Safe for value *and* operation payloads because replica
//!   application is TID-gated (the Thomas write rule rejects the replay).
//! * **reorder** — the message is stashed and released only after a later
//!   message on the same link, so one message overtakes another. Safe only
//!   under value replication (Thomas write rule); operation replication
//!   requires per-link FIFO and a reordered delta stream diverges.
//! * **corrupt** — the message is delivered with its payload bit-flipped
//!   (byzantine corruption; the concrete flip is the payload type's
//!   [`crate::Message::corrupt`]). *Never* protocol-safe: no layer in this
//!   repository checksums its payloads, so schedules enabling it are planted
//!   bugs that the serializability checker, the replica comparison or disk
//!   recovery must catch — a corruption surviving to a green verdict is a
//!   harness bug.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Duration;

/// Per-link fault probabilities. All probabilities are independent and
/// evaluated in the order drop → duplicate → reorder → corrupt; a delay roll
/// is added on top of any delivered (or duplicated) message.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability that a message is silently lost.
    pub drop_probability: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability that a message is stashed until a later message on the
    /// same link overtakes it.
    pub reorder_probability: f64,
    /// Probability that the payload is delivered *corrupted* (a byzantine
    /// bit-flip; see [`crate::Message::corrupt`]). No protocol layer in this
    /// repository claims to survive corruption — schedules that enable it
    /// are planted bugs the downstream checkers must catch.
    pub corrupt_probability: f64,
    /// Probability that `extra_delay` is added to the delivery deadline.
    pub delay_probability: f64,
    /// The additional latency applied when the delay roll hits.
    pub extra_delay: Duration,
}

impl LinkFaults {
    /// No faults at all (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if every probability is zero (the fast path skips the RNG
    /// entirely, so enabling and later clearing faults does not perturb
    /// unrelated runs).
    pub fn is_none(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.reorder_probability <= 0.0
            && self.corrupt_probability <= 0.0
            && self.delay_probability <= 0.0
    }

    /// Convenience constructor: drop messages with probability `p`.
    pub fn dropping(p: f64) -> Self {
        LinkFaults { drop_probability: p, ..Self::default() }
    }

    /// Convenience constructor: duplicate messages with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        LinkFaults { duplicate_probability: p, ..Self::default() }
    }

    /// Convenience constructor: reorder messages with probability `p`.
    pub fn reordering(p: f64) -> Self {
        LinkFaults { reorder_probability: p, ..Self::default() }
    }

    /// Convenience constructor: corrupt messages with probability `p`.
    pub fn corrupting(p: f64) -> Self {
        LinkFaults { corrupt_probability: p, ..Self::default() }
    }

    /// Convenience constructor: delay messages with probability `p` by
    /// `extra`.
    pub fn delaying(p: f64, extra: Duration) -> Self {
        LinkFaults { delay_probability: p, extra_delay: extra, ..Self::default() }
    }
}

/// What the fault plane decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver normally, with an optional extra delay.
    Deliver {
        /// Additional latency on top of the configured link latency.
        extra_delay: Duration,
    },
    /// Lose the message silently.
    Drop,
    /// Deliver the message twice.
    Duplicate {
        /// Additional latency applied to both copies.
        extra_delay: Duration,
    },
    /// Stash the message until a later message on the link releases it.
    Reorder,
    /// Deliver the message with its payload bit-flipped (byzantine
    /// corruption). `salt` seeds the deterministic choice of which bit the
    /// payload's [`crate::Message::corrupt`] implementation flips.
    Corrupt {
        /// Seed for the payload's corruption (drawn from the link RNG).
        salt: u64,
        /// Additional latency on top of the configured link latency.
        extra_delay: Duration,
    },
}

#[derive(Debug, Default)]
struct FaultState {
    seed: u64,
    default_faults: LinkFaults,
    /// Per-link overrides, keyed by `(from, to)`.
    links: BTreeMap<(usize, usize), LinkFaults>,
    /// Directed links that are cut (partitioned): every message is dropped.
    cut: BTreeSet<(usize, usize)>,
    /// Lazily created per-link RNGs, seeded from `seed` and the link id so
    /// fault decisions on one link are independent of traffic on another.
    rngs: BTreeMap<(usize, usize), StdRng>,
}

/// Shared fault-injection state of one [`crate::SimNetwork`].
///
/// The plane is also usable standalone: the baseline engines route their
/// primary→backup replication stream through one (see
/// `star_baselines::replication`), so the same seeded drop / duplicate /
/// reorder decisions drive every replication path in the repository.
#[derive(Debug, Default)]
pub struct FaultPlane {
    state: Mutex<FaultState>,
}

fn link_rng_seed(base: u64, from: usize, to: usize) -> u64 {
    // Spread the link id across the word so nearby links get unrelated
    // streams even for small base seeds.
    (base ^ ((from as u64) << 32) ^ (to as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl FaultPlane {
    /// Re-seeds every per-link RNG. Existing RNG state is discarded, so a
    /// fresh seed restarts the fault stream deterministically.
    pub fn seed(&self, seed: u64) {
        let mut state = self.state.lock().unwrap();
        state.seed = seed;
        state.rngs.clear();
    }

    /// Applies `faults` to every link without a per-link override.
    pub fn set_default_faults(&self, faults: LinkFaults) {
        self.state.lock().unwrap().default_faults = faults;
    }

    /// Applies `faults` to the directed link `from → to`.
    pub fn set_link_faults(&self, from: usize, to: usize, faults: LinkFaults) {
        self.state.lock().unwrap().links.insert((from, to), faults);
    }

    /// Removes every fault configuration: defaults, per-link overrides and
    /// cut links. Per-link RNG state is kept.
    pub fn clear_faults(&self) {
        let mut state = self.state.lock().unwrap();
        state.default_faults = LinkFaults::none();
        state.links.clear();
        state.cut.clear();
    }

    /// Cuts the bidirectional link between `a` and `b` (silent loss).
    pub fn cut_link(&self, a: usize, b: usize) {
        let mut state = self.state.lock().unwrap();
        state.cut.insert((a, b));
        state.cut.insert((b, a));
    }

    /// Restores a previously cut link.
    pub fn heal_link(&self, a: usize, b: usize) {
        let mut state = self.state.lock().unwrap();
        state.cut.remove(&(a, b));
        state.cut.remove(&(b, a));
    }

    /// Restores every cut link.
    pub fn heal_all_links(&self) {
        self.state.lock().unwrap().cut.clear();
    }

    /// Whether the directed link `from → to` is currently cut.
    pub fn is_link_cut(&self, from: usize, to: usize) -> bool {
        self.state.lock().unwrap().cut.contains(&(from, to))
    }

    /// Rolls the fate of one message on `from → to`.
    pub fn roll(&self, from: usize, to: usize) -> FaultVerdict {
        let mut state = self.state.lock().unwrap();
        if state.cut.contains(&(from, to)) {
            return FaultVerdict::Drop;
        }
        let faults = *state.links.get(&(from, to)).unwrap_or(&state.default_faults);
        if faults.is_none() {
            // Fast path: no RNG draw, so fault-free traffic is byte-for-byte
            // identical to a network without a fault plane.
            return FaultVerdict::Deliver { extra_delay: Duration::ZERO };
        }
        let base = state.seed;
        let rng = state
            .rngs
            .entry((from, to))
            .or_insert_with(|| StdRng::seed_from_u64(link_rng_seed(base, from, to)));
        let fate: f64 = rng.gen();
        let extra_delay =
            if faults.delay_probability > 0.0 && rng.gen::<f64>() < faults.delay_probability {
                faults.extra_delay
            } else {
                Duration::ZERO
            };
        if fate < faults.drop_probability {
            FaultVerdict::Drop
        } else if fate < faults.drop_probability + faults.duplicate_probability {
            FaultVerdict::Duplicate { extra_delay }
        } else if fate
            < faults.drop_probability + faults.duplicate_probability + faults.reorder_probability
        {
            FaultVerdict::Reorder
        } else if fate
            < faults.drop_probability
                + faults.duplicate_probability
                + faults.reorder_probability
                + faults.corrupt_probability
        {
            FaultVerdict::Corrupt { salt: rng.gen(), extra_delay }
        } else {
            FaultVerdict::Deliver { extra_delay }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plane_always_delivers() {
        let plane = FaultPlane::default();
        for _ in 0..100 {
            assert_eq!(plane.roll(0, 1), FaultVerdict::Deliver { extra_delay: Duration::ZERO });
        }
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let collect = |seed: u64| -> Vec<FaultVerdict> {
            let plane = FaultPlane::default();
            plane.seed(seed);
            plane.set_default_faults(LinkFaults {
                drop_probability: 0.25,
                duplicate_probability: 0.25,
                reorder_probability: 0.25,
                delay_probability: 0.5,
                extra_delay: Duration::from_micros(5),
                ..LinkFaults::none()
            });
            (0..200).map(|i| plane.roll(i % 3, 3)).collect()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8), "different seeds should diverge");
    }

    #[test]
    fn cut_links_drop_both_directions() {
        let plane = FaultPlane::default();
        plane.cut_link(0, 2);
        assert_eq!(plane.roll(0, 2), FaultVerdict::Drop);
        assert_eq!(plane.roll(2, 0), FaultVerdict::Drop);
        assert!(plane.is_link_cut(0, 2));
        assert_eq!(plane.roll(0, 1), FaultVerdict::Deliver { extra_delay: Duration::ZERO });
        plane.heal_link(2, 0);
        assert_eq!(plane.roll(0, 2), FaultVerdict::Deliver { extra_delay: Duration::ZERO });
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let plane = FaultPlane::default();
        plane.set_default_faults(LinkFaults::dropping(1.0));
        plane.set_link_faults(0, 1, LinkFaults::none());
        assert_eq!(plane.roll(0, 1), FaultVerdict::Deliver { extra_delay: Duration::ZERO });
        assert_eq!(plane.roll(0, 2), FaultVerdict::Drop);
        plane.clear_faults();
        assert_eq!(plane.roll(0, 2), FaultVerdict::Deliver { extra_delay: Duration::ZERO });
    }

    #[test]
    fn probability_one_faults_always_fire() {
        let plane = FaultPlane::default();
        plane.seed(1);
        plane.set_default_faults(LinkFaults::duplicating(1.0));
        for _ in 0..20 {
            assert!(matches!(plane.roll(0, 1), FaultVerdict::Duplicate { .. }));
        }
        plane.set_default_faults(LinkFaults::reordering(1.0));
        for _ in 0..20 {
            assert_eq!(plane.roll(0, 1), FaultVerdict::Reorder);
        }
        plane.set_default_faults(LinkFaults::corrupting(1.0));
        for _ in 0..20 {
            assert!(matches!(plane.roll(0, 1), FaultVerdict::Corrupt { .. }));
        }
    }

    #[test]
    fn corrupt_salts_are_deterministic_per_seed() {
        let collect = |seed: u64| -> Vec<u64> {
            let plane = FaultPlane::default();
            plane.seed(seed);
            plane.set_default_faults(LinkFaults::corrupting(1.0));
            (0..32)
                .map(|_| match plane.roll(0, 1) {
                    FaultVerdict::Corrupt { salt, .. } => salt,
                    other => panic!("expected Corrupt, got {other:?}"),
                })
                .collect()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
