//! Byte and message accounting for the simulated network.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative traffic counters for one [`crate::SimNetwork`].
///
/// Counters are global (not reset between phases); callers snapshot before
/// and after a measured window and subtract.
#[derive(Debug)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    /// Bytes indexed by sending node (flattened `from` dimension).
    per_node_bytes: Vec<AtomicU64>,
    /// Messages lost by the fault plane (drops and cut links). Their bytes
    /// still count as sent: the packet was transmitted, then lost in flight.
    dropped: AtomicU64,
    /// Messages delivered twice by the fault plane. Each duplicate is a
    /// second transmission, so its bytes are accounted a second time.
    duplicated: AtomicU64,
    /// Messages stashed for reordering by the fault plane. Bytes are
    /// accounted once, at the original send.
    reordered: AtomicU64,
    /// Messages that received an extra fault-plane delay.
    delayed: AtomicU64,
    /// Messages delivered with a corrupted payload (byzantine bit-flips).
    corrupted: AtomicU64,
}

impl NetStats {
    /// Creates zeroed counters for a cluster of `num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        NetStats {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            per_node_bytes: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
        }
    }

    /// Records a message of `bytes` bytes sent by `from`.
    pub fn record(&self, from: usize, bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(counter) = self.per_node_bytes.get(from) {
            counter.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent by one node.
    pub fn bytes_from(&self, node: usize) -> u64 {
        self.per_node_bytes.get(node).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records a message lost by the fault plane.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message duplicated by the fault plane.
    pub fn record_duplicated(&self) {
        self.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message stashed for reordering by the fault plane.
    pub fn record_reordered(&self) {
        self.reordered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message delayed by the fault plane.
    pub fn record_delayed(&self) {
        self.delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages lost by the fault plane (drops + cut links).
    pub fn dropped_messages(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages duplicated by the fault plane.
    pub fn duplicated_messages(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Messages stashed for reordering by the fault plane.
    pub fn reordered_messages(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }

    /// Messages that received an extra fault-plane delay.
    pub fn delayed_messages(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Records a message delivered with a corrupted payload.
    pub fn record_corrupted(&self) {
        self.corrupted.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages delivered with a corrupted payload.
    pub fn corrupted_messages(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::new(3);
        s.record(0, 100);
        s.record(0, 50);
        s.record(2, 25);
        assert_eq!(s.messages(), 3);
        assert_eq!(s.bytes(), 175);
        assert_eq!(s.bytes_from(0), 150);
        assert_eq!(s.bytes_from(1), 0);
        assert_eq!(s.bytes_from(2), 25);
        // out-of-range node is tolerated
        s.record(9, 10);
        assert_eq!(s.bytes_from(9), 0);
        assert_eq!(s.bytes(), 185);
    }
}
