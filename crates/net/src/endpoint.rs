//! Endpoints of the simulated network.

use crate::fault::{FaultPlane, FaultVerdict, LinkFaults};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use star_common::clock::{Clock, WallClock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Converts a latency [`Duration`] to clock nanoseconds, saturating.
fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Anything that can be shipped over the simulated network.
///
/// `wire_size` is the number of bytes the message would occupy on a real
/// network; it feeds the bandwidth accounting used to reproduce the
/// replication-cost results.
pub trait Message: Send + 'static {
    /// Serialized size of the message in bytes.
    fn wire_size(&self) -> usize;

    /// Corrupts the payload in place (a byzantine bit-flip), as decided by a
    /// [`crate::FaultVerdict::Corrupt`] verdict. `salt` selects which bit to
    /// flip so the mutation is deterministic per seed. Returns `true` if the
    /// payload actually changed; the default implementation leaves the
    /// message untouched and returns `false` (corruption then degrades to a
    /// plain delivery), so only payload types that opt in can be corrupted.
    fn corrupt(&mut self, salt: u64) -> bool {
        let _ = salt;
        false
    }
}

/// Latency model of the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// One-way latency between two distinct nodes.
    pub latency: Duration,
    /// Latency for a node sending to itself (loopback). Defaults to zero.
    pub loopback_latency: Duration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { latency: Duration::from_micros(100), loopback_latency: Duration::ZERO }
    }
}

impl NetworkConfig {
    /// A network with the given one-way latency and zero loopback latency.
    pub fn with_latency(latency: Duration) -> Self {
        NetworkConfig { latency, loopback_latency: Duration::ZERO }
    }

    /// An idealised zero-latency network (useful in unit tests).
    pub fn instantaneous() -> Self {
        NetworkConfig { latency: Duration::ZERO, loopback_latency: Duration::ZERO }
    }
}

/// A message in flight, tagged with its origin and delivery deadline.
///
/// The deadline is expressed in nanoseconds on the owning network's
/// [`Clock`] axis, so a simulation run under a
/// [`star_common::clock::VirtualClock`] is fully deterministic.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: usize,
    /// The payload.
    pub payload: M,
    deliver_at: u64,
}

impl<M> Envelope<M> {
    /// Creates an envelope with an explicit delivery deadline (clock
    /// nanoseconds). Alternative transport backends use this to feed
    /// received messages into endpoint-shaped plumbing.
    pub fn new(from: usize, payload: M, deliver_at_nanos: u64) -> Self {
        Envelope { from, payload, deliver_at: deliver_at_nanos }
    }

    /// The delivery deadline, in nanoseconds on the owning clock's axis.
    pub fn deliver_at_nanos(&self) -> u64 {
        self.deliver_at
    }
}

/// Error returned by [`Endpoint::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The destination node id is not part of the cluster.
    NoSuchNode(usize),
    /// The destination (or the sender itself) has been marked failed.
    NodeFailed(usize),
    /// The destination endpoint has been dropped.
    Disconnected(usize),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            SendError::NodeFailed(n) => write!(f, "node {n} is marked failed"),
            SendError::Disconnected(n) => write!(f, "node {n} endpoint disconnected"),
        }
    }
}

impl std::error::Error for SendError {}

/// Error returned by the receive calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message was available before the timeout elapsed.
    Timeout,
    /// All senders have been dropped.
    Disconnected,
}

/// Shared state of a simulated cluster network.
///
/// Construction hands out one [`Endpoint`] per node; the `SimNetwork` handle
/// itself is kept by the test / engine driver for failure injection and for
/// reading traffic statistics.
#[derive(Debug)]
pub struct SimNetwork {
    config: NetworkConfig,
    stats: Arc<NetStats>,
    failed: Arc<Vec<AtomicBool>>,
    faults: Arc<FaultPlane>,
    clock: Arc<dyn Clock>,
    num_nodes: usize,
}

impl SimNetwork {
    /// Creates a network of `num_nodes` nodes, returning the shared handle
    /// and one endpoint per node (in node-id order). Delivery deadlines are
    /// stamped by a [`WallClock`], so configured latency is real latency.
    pub fn new<M: Message>(num_nodes: usize, config: NetworkConfig) -> (Self, Vec<Endpoint<M>>) {
        Self::new_with_clock(num_nodes, config, Arc::new(WallClock::new()))
    }

    /// Like [`SimNetwork::new`], but with an injected time source. Pass a
    /// [`star_common::clock::VirtualClock`] to make delivery timing fully
    /// deterministic (no wall-clock reads anywhere on the message path).
    pub fn new_with_clock<M: Message>(
        num_nodes: usize,
        config: NetworkConfig,
        clock: Arc<dyn Clock>,
    ) -> (Self, Vec<Endpoint<M>>) {
        let stats = Arc::new(NetStats::new(num_nodes));
        let failed: Arc<Vec<AtomicBool>> =
            Arc::new((0..num_nodes).map(|_| AtomicBool::new(false)).collect());
        let faults = Arc::new(FaultPlane::default());
        let mut senders = Vec::with_capacity(num_nodes);
        let mut receivers = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(node, receiver)| Endpoint {
                node,
                config,
                senders: senders.clone(),
                receiver,
                stats: Arc::clone(&stats),
                failed: Arc::clone(&failed),
                faults: Arc::clone(&faults),
                clock: Arc::clone(&clock),
                reorder_stash: Mutex::new(BTreeMap::new()),
            })
            .collect();
        (SimNetwork { config, stats, failed, faults, clock, num_nodes }, endpoints)
    }

    /// The latency model in use.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// The time source stamping delivery deadlines.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Marks a node as failed: subsequent sends to or from it fail, modelling
    /// a crashed process or a partitioned machine.
    pub fn fail_node(&self, node: usize) {
        if let Some(flag) = self.failed.get(node) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Clears the failure flag of a node (the node has been repaired and is
    /// rejoining the cluster).
    pub fn heal_node(&self, node: usize) {
        if let Some(flag) = self.failed.get(node) {
            flag.store(false, Ordering::SeqCst);
        }
    }

    /// Whether a node is currently marked failed.
    pub fn is_failed(&self, node: usize) -> bool {
        self.failed.get(node).map(|f| f.load(Ordering::SeqCst)).unwrap_or(false)
    }

    /// Re-seeds the fault plane's per-link RNGs. Call before (re)configuring
    /// faults so a run's fault decisions reproduce from the seed alone.
    pub fn seed_faults(&self, seed: u64) {
        self.faults.seed(seed);
    }

    /// Applies `faults` to every link without a per-link override.
    pub fn set_default_link_faults(&self, faults: LinkFaults) {
        self.faults.set_default_faults(faults);
    }

    /// Applies `faults` to the directed link `from → to`, overriding the
    /// default.
    pub fn set_link_faults(&self, from: usize, to: usize, faults: LinkFaults) {
        self.faults.set_link_faults(from, to, faults);
    }

    /// Removes every fault configuration (defaults, per-link overrides and
    /// cut links). Per-link RNG state is kept so a later re-enable continues
    /// the deterministic stream.
    pub fn clear_link_faults(&self) {
        self.faults.clear_faults();
    }

    /// Cuts the (bidirectional) link between `a` and `b`: messages in either
    /// direction are silently lost, modelling a network partition between the
    /// two nodes.
    pub fn cut_link(&self, a: usize, b: usize) {
        self.faults.cut_link(a, b);
    }

    /// Restores a previously cut link.
    pub fn heal_link(&self, a: usize, b: usize) {
        self.faults.heal_link(a, b);
    }

    /// Restores every cut link.
    pub fn heal_all_links(&self) {
        self.faults.heal_all_links();
    }

    /// Whether the directed link `from → to` is currently cut.
    pub fn is_link_cut(&self, from: usize, to: usize) -> bool {
        self.faults.is_link_cut(from, to)
    }

    /// Isolates `island` from the rest of the cluster: every link between an
    /// island node and a non-island node is cut, in both directions.
    pub fn partition(&self, island: &[usize]) {
        for &inside in island {
            for outside in 0..self.num_nodes {
                if !island.contains(&outside) {
                    self.faults.cut_link(inside, outside);
                }
            }
        }
    }
}

/// One node's handle onto the simulated network.
#[derive(Debug)]
pub struct Endpoint<M> {
    node: usize,
    config: NetworkConfig,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    stats: Arc<NetStats>,
    failed: Arc<Vec<AtomicBool>>,
    faults: Arc<FaultPlane>,
    clock: Arc<dyn Clock>,
    /// Messages held back by reorder faults, keyed by destination. A stashed
    /// message is released after the next message on the same link (so it is
    /// overtaken), or by [`Endpoint::flush_stash`].
    reorder_stash: Mutex<BTreeMap<usize, Vec<Envelope<M>>>>,
}

impl<M: Message> Endpoint<M> {
    /// The node id this endpoint belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.senders.len()
    }

    fn node_failed(&self, node: usize) -> bool {
        self.failed.get(node).map(|f| f.load(Ordering::SeqCst)).unwrap_or(false)
    }

    fn enqueue(&self, to: usize, envelope: Envelope<M>) -> Result<(), SendError> {
        self.senders[to].send(envelope).map_err(|_| SendError::Disconnected(to))
    }

    fn release_stash_for(&self, to: usize) -> Result<(), SendError> {
        let stashed = self.reorder_stash.lock().unwrap().remove(&to);
        if let Some(stashed) = stashed {
            for envelope in stashed {
                self.enqueue(to, envelope)?;
            }
        }
        Ok(())
    }

    /// Sends a message to `to`, applying the latency model, the fault plane
    /// and recording the traffic.
    ///
    /// Fault-plane byte accounting: a dropped message still counts as sent
    /// (it was transmitted, then lost); a duplicated message counts twice
    /// (two transmissions); a reordered message counts once, at the original
    /// send.
    pub fn send(&self, to: usize, payload: M) -> Result<(), SendError>
    where
        M: Clone,
    {
        if to >= self.senders.len() {
            return Err(SendError::NoSuchNode(to));
        }
        if self.node_failed(self.node) {
            return Err(SendError::NodeFailed(self.node));
        }
        if self.node_failed(to) {
            return Err(SendError::NodeFailed(to));
        }
        let latency =
            if to == self.node { self.config.loopback_latency } else { self.config.latency };
        let bytes = payload.wire_size() as u64;
        if to == self.node {
            // Loopback traffic never touches the wire: no bytes, no faults.
            let deliver_at = self.clock.now_nanos().saturating_add(nanos(latency));
            return self.enqueue(to, Envelope { from: self.node, payload, deliver_at });
        }
        self.stats.record(self.node, bytes);
        match self.faults.roll(self.node, to) {
            FaultVerdict::Deliver { extra_delay } => {
                if !extra_delay.is_zero() {
                    self.stats.record_delayed();
                }
                let deliver_at = self
                    .clock
                    .now_nanos()
                    .saturating_add(nanos(latency))
                    .saturating_add(nanos(extra_delay));
                self.enqueue(to, Envelope { from: self.node, payload, deliver_at })?;
                self.release_stash_for(to)
            }
            FaultVerdict::Drop => {
                self.stats.record_dropped();
                // The link still made progress, so anything stashed behind
                // the lost message has now been overtaken.
                self.release_stash_for(to)
            }
            FaultVerdict::Duplicate { extra_delay } => {
                self.stats.record_duplicated();
                // The duplicate is a second transmission.
                self.stats.record(self.node, bytes);
                let deliver_at = self
                    .clock
                    .now_nanos()
                    .saturating_add(nanos(latency))
                    .saturating_add(nanos(extra_delay));
                self.enqueue(
                    to,
                    Envelope { from: self.node, payload: payload.clone(), deliver_at },
                )?;
                self.enqueue(to, Envelope { from: self.node, payload, deliver_at })?;
                self.release_stash_for(to)
            }
            FaultVerdict::Reorder => {
                self.stats.record_reordered();
                let deliver_at = self.clock.now_nanos().saturating_add(nanos(latency));
                let envelope = Envelope { from: self.node, payload, deliver_at };
                self.reorder_stash.lock().unwrap().entry(to).or_default().push(envelope);
                Ok(())
            }
            FaultVerdict::Corrupt { salt, extra_delay } => {
                let mut payload = payload;
                if payload.corrupt(salt) {
                    self.stats.record_corrupted();
                }
                let deliver_at = self
                    .clock
                    .now_nanos()
                    .saturating_add(nanos(latency))
                    .saturating_add(nanos(extra_delay));
                self.enqueue(to, Envelope { from: self.node, payload, deliver_at })?;
                self.release_stash_for(to)
            }
        }
    }

    /// Releases every message held back by reorder faults. The replication
    /// fence calls this on every endpoint before draining receivers, so the
    /// fence's "apply all outstanding writes" guarantee holds even under
    /// reorder faults.
    pub fn flush_stash(&self) {
        // BTreeMap iteration is already in destination order, which keeps
        // the flush deterministic.
        let stashed = std::mem::take(&mut *self.reorder_stash.lock().unwrap());
        for (to, envelopes) in stashed {
            for envelope in envelopes {
                let _ = self.enqueue(to, envelope);
            }
        }
    }

    /// Sends a message to every other node (not to itself). Returns the list
    /// of nodes the message could not be delivered to (failed nodes), which
    /// the replication fence uses for failure detection.
    pub fn broadcast(&self, payload: M) -> Vec<usize>
    where
        M: Clone,
    {
        let mut unreachable = Vec::new();
        for to in 0..self.senders.len() {
            if to == self.node {
                continue;
            }
            if self.send(to, payload.clone()).is_err() {
                unreachable.push(to);
            }
        }
        unreachable
    }

    fn wait_for_delivery(&self, envelope: Envelope<M>) -> Envelope<M> {
        self.clock.sleep_until_nanos(envelope.deliver_at);
        envelope
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        match self.receiver.recv() {
            Ok(env) => Ok(self.wait_for_delivery(env)),
            Err(_) => Err(RecvError::Disconnected),
        }
    }

    /// Receive with a timeout. The timeout covers queue wait only; an already
    /// queued message may add up to one latency of sleep on top.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => Ok(self.wait_for_delivery(env)),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Non-blocking receive; returns `Timeout` when the queue is empty.
    pub fn try_recv(&self) -> Result<Envelope<M>, RecvError> {
        match self.receiver.try_recv() {
            Ok(env) => Ok(self.wait_for_delivery(env)),
            Err(TryRecvError::Empty) => Err(RecvError::Timeout),
            Err(TryRecvError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Drains every currently queued message without waiting for more.
    pub fn drain(&self) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Ok(env) = self.receiver.try_recv() {
            out.push(self.wait_for_delivery(env));
        }
        out
    }

    /// Whether this endpoint's own node has been marked failed.
    pub fn is_self_failed(&self) -> bool {
        self.node_failed(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::clock::VirtualClock;
    use std::time::Instant;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u64, usize);

    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    fn cluster(n: usize) -> (SimNetwork, Vec<Endpoint<TestMsg>>) {
        SimNetwork::new(n, NetworkConfig::instantaneous())
    }

    #[test]
    fn point_to_point_delivery() {
        let (_net, eps) = cluster(3);
        eps[0].send(1, TestMsg(42, 10)).unwrap();
        let env = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.payload, TestMsg(42, 10));
    }

    #[test]
    fn bytes_are_accounted_per_sender() {
        let (net, eps) = cluster(2);
        eps[0].send(1, TestMsg(1, 100)).unwrap();
        eps[0].send(1, TestMsg(2, 50)).unwrap();
        eps[1].send(0, TestMsg(3, 25)).unwrap();
        assert_eq!(net.stats().bytes(), 175);
        assert_eq!(net.stats().bytes_from(0), 150);
        assert_eq!(net.stats().bytes_from(1), 25);
        assert_eq!(net.stats().messages(), 3);
    }

    #[test]
    fn loopback_is_free() {
        let (net, eps) = cluster(2);
        eps[0].send(0, TestMsg(1, 1000)).unwrap();
        assert_eq!(net.stats().bytes(), 0);
        assert!(eps[0].recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let (_net, eps) = cluster(4);
        let unreachable = eps[2].broadcast(TestMsg(7, 8));
        assert!(unreachable.is_empty());
        for (i, ep) in eps.iter().enumerate() {
            if i == 2 {
                assert!(ep.try_recv().is_err());
            } else {
                assert_eq!(ep.recv_timeout(Duration::from_secs(1)).unwrap().payload, TestMsg(7, 8));
            }
        }
    }

    #[test]
    fn failed_nodes_reject_traffic() {
        let (net, eps) = cluster(3);
        net.fail_node(1);
        assert!(net.is_failed(1));
        assert_eq!(eps[0].send(1, TestMsg(1, 1)), Err(SendError::NodeFailed(1)));
        assert_eq!(eps[1].send(0, TestMsg(1, 1)), Err(SendError::NodeFailed(1)));
        assert!(eps[1].is_self_failed());
        let unreachable = eps[0].broadcast(TestMsg(2, 2));
        assert_eq!(unreachable, vec![1]);
        net.heal_node(1);
        assert!(eps[0].send(1, TestMsg(1, 1)).is_ok());
    }

    #[test]
    fn send_to_unknown_node_errors() {
        let (_net, eps) = cluster(2);
        assert_eq!(eps[0].send(5, TestMsg(1, 1)), Err(SendError::NoSuchNode(5)));
    }

    #[test]
    fn latency_is_enforced_on_delivery() {
        let config = NetworkConfig::with_latency(Duration::from_millis(5));
        let (_net, eps) = SimNetwork::new::<TestMsg>(2, config);
        let start = Instant::now();
        eps[0].send(1, TestMsg(1, 1)).unwrap();
        let _ = eps[1].recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn virtual_clock_delivers_without_real_sleep() {
        // Even with a large configured latency, a virtual clock jumps to the
        // deadline instead of sleeping: delivery is immediate in real time
        // and the clock lands exactly on the deadline.
        let config = NetworkConfig::with_latency(Duration::from_secs(3600));
        let clock = Arc::new(VirtualClock::new());
        let (net, eps) =
            SimNetwork::new_with_clock::<TestMsg>(2, config, Arc::clone(&clock) as Arc<dyn Clock>);
        let start = Instant::now();
        eps[0].send(1, TestMsg(9, 1)).unwrap();
        let env = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.payload, TestMsg(9, 1));
        assert!(start.elapsed() < Duration::from_secs(60));
        assert_eq!(net.clock().now_nanos(), 3600 * 1_000_000_000);
        assert_eq!(env.deliver_at_nanos(), 3600 * 1_000_000_000);
    }

    #[test]
    fn envelope_constructor_round_trips() {
        let env = Envelope::new(3, TestMsg(1, 2), 77);
        assert_eq!(env.from, 3);
        assert_eq!(env.deliver_at_nanos(), 77);
    }

    #[test]
    fn drain_empties_the_queue() {
        let (_net, eps) = cluster(2);
        for i in 0..5 {
            eps[0].send(1, TestMsg(i, 1)).unwrap();
        }
        let drained = eps[1].drain();
        assert_eq!(drained.len(), 5);
        assert!(eps[1].try_recv().is_err());
        // FIFO order per link.
        let ids: Vec<u64> = drained.iter().map(|e| e.payload.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_recv_times_out_when_empty() {
        let (_net, eps) = cluster(2);
        assert_eq!(eps[0].try_recv().err(), Some(RecvError::Timeout));
        assert_eq!(eps[0].recv_timeout(Duration::from_millis(1)).err(), Some(RecvError::Timeout));
    }
}
