//! Simulated cluster network for the STAR reproduction.
//!
//! The paper runs on four EC2 nodes connected by a ~4.8 Gbit/s network; this
//! repository replaces that testbed with an in-process message-passing
//! substrate so that the same algorithms (replication streams, replication
//! fences, two-phase commit, Calvin input replication) run over an explicit
//! network abstraction with:
//!
//! * **configurable one-way latency** between distinct nodes (zero for a node
//!   talking to itself), applied at delivery time;
//! * **byte accounting** per node pair, so the replication-bandwidth results
//!   of Section 5 can be measured rather than estimated;
//! * **failure injection**: a node can be marked failed, after which sends to
//!   and from it error out — this is what the failure-detection and recovery
//!   tests drive;
//! * **seeded fault injection** (see [`fault`]): per-link drop / delay /
//!   duplicate / reorder probabilities and link partitions, all drawn from
//!   deterministic per-link RNGs so any chaos run reproduces from its seed —
//!   this is what the `star-chaos` harness drives.
//!
//! The substrate is deliberately simple: per-link FIFO channels built on
//! `crossbeam`, with latency enforced by the receiver sleeping until the
//! message's delivery deadline. This preserves ordering per link (which the
//! operation-replication correctness argument relies on) while modelling the
//! round-trip costs that dominate the baselines' behaviour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod fault;
pub mod stats;

pub use endpoint::{Endpoint, Envelope, Message, NetworkConfig, RecvError, SendError, SimNetwork};
pub use fault::{FaultPlane, FaultVerdict, LinkFaults};
pub use stats::NetStats;
