//! Simulated cluster network for the STAR reproduction.
//!
//! The paper runs on four EC2 nodes connected by a ~4.8 Gbit/s network; this
//! repository replaces that testbed with an in-process message-passing
//! substrate so that the same algorithms (replication streams, replication
//! fences, two-phase commit, Calvin input replication) run over an explicit
//! network abstraction with:
//!
//! * **configurable one-way latency** between distinct nodes (zero for a node
//!   talking to itself), applied at delivery time;
//! * **byte accounting** per node pair, so the replication-bandwidth results
//!   of Section 5 can be measured rather than estimated;
//! * **failure injection**: a node can be marked failed, after which sends to
//!   and from it error out — this is what the failure-detection and recovery
//!   tests drive;
//! * **seeded fault injection** (see [`fault`]): per-link drop / delay /
//!   duplicate / reorder probabilities and link partitions, all drawn from
//!   deterministic per-link RNGs so any chaos run reproduces from its seed —
//!   this is what the `star-chaos` harness drives.
//!
//! The substrate is deliberately simple: per-link FIFO channels built on
//! `crossbeam`, with latency enforced by the receiver sleeping until the
//! message's delivery deadline. This preserves ordering per link (which the
//! operation-replication correctness argument relies on) while modelling the
//! round-trip costs that dominate the baselines' behaviour. Delivery
//! deadlines come from an injected [`star_common::clock::Clock`] (wall clock
//! by default, virtual clock for fully deterministic runs), so no code on the
//! message path reads real time directly.
//!
//! The [`transport::Transport`] trait is the seam between the engine's
//! execution paths and the substrate: the in-memory [`Endpoint`] implements
//! it, and so does the TCP mesh in `star-serverd`, which is how the
//! transport-parity harness proves wire == simulation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod fault;
pub mod stats;
pub mod transport;

pub use endpoint::{Endpoint, Envelope, Message, NetworkConfig, RecvError, SendError, SimNetwork};
pub use fault::{FaultPlane, FaultVerdict, LinkFaults};
pub use stats::NetStats;
pub use transport::Transport;
