//! The YCSB workload (Section 7.1.1).

use rand::rngs::StdRng;
use rand::Rng;
use star_common::rng::{random_bytes, Zipf};
use star_common::{FieldValue, Operation, PartitionId, Result, Row};
use star_core::{Workload, WorkloadMix};
use star_occ::{Procedure, TxnCtx};
use star_storage::{Database, TableSpec};

/// Table id of the single YCSB table.
pub const YCSB_TABLE: u32 = 0;

/// Number of columns per YCSB record.
pub const COLUMNS: usize = 10;

/// Bytes per column.
pub const COLUMN_BYTES: usize = 10;

/// Key stride separating partitions in the key space.
const PARTITION_STRIDE: u64 = 1 << 32;

/// Encodes a `(partition, offset)` pair into a YCSB primary key.
pub fn ycsb_key(partition: PartitionId, offset: u64) -> u64 {
    (partition as u64) * PARTITION_STRIDE + offset
}

/// Configuration of the YCSB workload.
#[derive(Debug, Clone, PartialEq)]
pub struct YcsbConfig {
    /// Number of partitions.
    pub partitions: usize,
    /// Rows loaded per partition (the paper uses 200 000).
    pub rows_per_partition: u64,
    /// Operations per transaction (the paper uses 10).
    pub ops_per_transaction: usize,
    /// Fraction of operations that are reads (the paper's 90/10 mix = 0.9).
    pub read_fraction: f64,
    /// Zipfian skew of key accesses; 0.0 is the uniform distribution used in
    /// the paper's experiments.
    pub zipf_theta: f64,
    /// Fraction of cross-partition transactions.
    pub cross_partition_fraction: f64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            partitions: 8,
            rows_per_partition: 2_000,
            ops_per_transaction: 10,
            read_fraction: 0.9,
            zipf_theta: 0.0,
            cross_partition_fraction: 0.10,
        }
    }
}

impl YcsbConfig {
    /// A configuration with `partitions` partitions and the default knobs.
    pub fn with_partitions(partitions: usize) -> Self {
        YcsbConfig { partitions, ..Default::default() }
    }
}

/// One access of a YCSB transaction.
#[derive(Debug, Clone)]
struct YcsbOp {
    partition: PartitionId,
    key: u64,
    /// `Some(column, bytes)` for writes, `None` for reads.
    write: Option<(usize, Vec<u8>)>,
}

/// A YCSB multi-get/put transaction (10 operations by default).
#[derive(Debug)]
pub struct YcsbTransaction {
    ops: Vec<YcsbOp>,
}

impl Procedure for YcsbTransaction {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn partitions(&self) -> Vec<PartitionId> {
        let mut ps: Vec<PartitionId> = self.ops.iter().map(|op| op.partition).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<()> {
        for op in &self.ops {
            let current = ctx.read(YCSB_TABLE, op.partition, op.key)?;
            if let Some((column, bytes)) = &op.write {
                let mut new_row = current;
                new_row.set(*column, FieldValue::Bytes(bytes.clone()));
                // A single-column update is exactly the case where operation
                // replication saves bandwidth over shipping all 10 columns.
                ctx.update_with_operation(
                    YCSB_TABLE,
                    op.partition,
                    op.key,
                    new_row,
                    Operation::SetField { field: *column, value: FieldValue::Bytes(bytes.clone()) },
                );
            }
        }
        Ok(())
    }
}

/// The YCSB workload.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    config: YcsbConfig,
    zipf: Option<Zipf>,
}

impl YcsbWorkload {
    /// Creates the workload from a configuration.
    pub fn new(config: YcsbConfig) -> Self {
        let zipf = if config.zipf_theta > 0.0 {
            Some(Zipf::new(config.rows_per_partition, config.zipf_theta))
        } else {
            None
        };
        YcsbWorkload { config, zipf }
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    fn random_offset(&self, rng: &mut StdRng) -> u64 {
        match &self.zipf {
            Some(zipf) => zipf.sample(rng),
            None => rng.gen_range(0..self.config.rows_per_partition),
        }
    }

    fn initial_row(rng: &mut StdRng) -> Row {
        (0..COLUMNS).map(|_| FieldValue::Bytes(random_bytes(rng, COLUMN_BYTES))).collect()
    }

    fn make_transaction(
        &self,
        rng: &mut StdRng,
        home: PartitionId,
        remote: Option<PartitionId>,
    ) -> YcsbTransaction {
        let mut ops = Vec::with_capacity(self.config.ops_per_transaction);
        let write_slot = rng.gen_range(0..self.config.ops_per_transaction);
        for i in 0..self.config.ops_per_transaction {
            // For cross-partition transactions, roughly half of the accesses
            // go to the remote partition, mirroring the multi-partition YCSB
            // variant used in the paper.
            let partition = match remote {
                Some(remote) if rng.gen_bool(0.5) => remote,
                _ => home,
            };
            let key = ycsb_key(partition, self.random_offset(rng));
            let is_write = if self.config.read_fraction >= 1.0 {
                false
            } else {
                i == write_slot || rng.gen::<f64>() > self.config.read_fraction
            };
            let write = if is_write {
                Some((rng.gen_range(0..COLUMNS), random_bytes(rng, COLUMN_BYTES)))
            } else {
                None
            };
            ops.push(YcsbOp { partition, key, write });
        }
        YcsbTransaction { ops }
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn catalog(&self) -> Vec<TableSpec> {
        vec![TableSpec::new("usertable")]
    }

    fn num_partitions(&self) -> usize {
        self.config.partitions
    }

    fn mix(&self) -> WorkloadMix {
        WorkloadMix { cross_partition_fraction: self.config.cross_partition_fraction }
    }

    fn load_partition(&self, db: &Database, partition: PartitionId) {
        use rand::SeedableRng;
        // Deterministic per-partition seed so every replica loads identical
        // data for the partitions it holds.
        let mut rng = StdRng::seed_from_u64(0x9C5B_0000 ^ partition as u64);
        for offset in 0..self.config.rows_per_partition {
            let key = ycsb_key(partition, offset);
            db.insert(YCSB_TABLE, partition, key, Self::initial_row(&mut rng))
                .expect("loading a held partition cannot fail");
        }
    }

    fn single_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure> {
        Box::new(self.make_transaction(rng, partition, None))
    }

    fn cross_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure> {
        if self.config.partitions < 2 {
            return self.single_partition_transaction(rng, partition);
        }
        let remote =
            (partition + 1 + rng.gen_range(0..self.config.partitions - 1)) % self.config.partitions;
        Box::new(self.make_transaction(rng, partition, Some(remote)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use star_storage::DatabaseBuilder;

    fn small_config() -> YcsbConfig {
        YcsbConfig { partitions: 4, rows_per_partition: 100, ..Default::default() }
    }

    fn build_db(wl: &YcsbWorkload) -> Database {
        let mut builder = DatabaseBuilder::new(wl.num_partitions());
        for spec in wl.catalog() {
            builder = builder.table(spec);
        }
        let db = builder.build();
        for p in 0..wl.num_partitions() {
            wl.load_partition(&db, p);
        }
        db
    }

    #[test]
    fn loads_the_requested_number_of_rows() {
        let wl = YcsbWorkload::new(small_config());
        let db = build_db(&wl);
        assert_eq!(db.len(), 4 * 100);
        let rec = db.get(YCSB_TABLE, 2, ycsb_key(2, 50)).unwrap();
        assert_eq!(rec.read().row.len(), COLUMNS);
    }

    #[test]
    fn loading_is_deterministic_across_replicas() {
        let wl = YcsbWorkload::new(small_config());
        let a = build_db(&wl);
        let b = build_db(&wl);
        let key = ycsb_key(1, 7);
        assert_eq!(
            a.get(YCSB_TABLE, 1, key).unwrap().read().row,
            b.get(YCSB_TABLE, 1, key).unwrap().read().row
        );
    }

    #[test]
    fn single_partition_transactions_stay_home() {
        let wl = YcsbWorkload::new(small_config());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let txn = wl.single_partition_transaction(&mut rng, 3);
            assert_eq!(txn.partitions(), vec![3]);
        }
    }

    #[test]
    fn cross_partition_transactions_touch_two_partitions() {
        let wl = YcsbWorkload::new(small_config());
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_two = false;
        for _ in 0..50 {
            let txn = wl.cross_partition_transaction(&mut rng, 0);
            let ps = txn.partitions();
            assert!(ps.contains(&0));
            assert!(ps.len() <= 2);
            saw_two |= ps.len() == 2;
        }
        assert!(saw_two, "cross-partition generator never touched a second partition");
    }

    #[test]
    fn transactions_execute_and_write_one_column() {
        let wl = YcsbWorkload::new(small_config());
        let db = build_db(&wl);
        let mut rng = StdRng::seed_from_u64(3);
        let txn = wl.single_partition_transaction(&mut rng, 1);
        let mut ctx = TxnCtx::new(&db);
        txn.execute(&mut ctx).unwrap();
        assert!(!ctx.write_set().is_empty(), "the 90/10 mix must produce at least one write");
        assert!(ctx.read_set().len() + ctx.write_set().len() >= wl.config().ops_per_transaction);
        // Writes registered an operation so hybrid replication can ship the
        // single column instead of the whole row.
        assert!(ctx.write_set().iter().all(|w| w.operation.is_some()));
    }

    #[test]
    fn read_only_configuration_generates_no_writes() {
        let mut config = small_config();
        config.read_fraction = 1.0;
        let wl = YcsbWorkload::new(config);
        let db = build_db(&wl);
        let mut rng = StdRng::seed_from_u64(4);
        let txn = wl.single_partition_transaction(&mut rng, 0);
        let mut ctx = TxnCtx::new(&db);
        txn.execute(&mut ctx).unwrap();
        assert!(ctx.write_set().is_empty());
    }

    #[test]
    fn zipfian_configuration_skews_accesses() {
        let mut config = small_config();
        config.rows_per_partition = 10_000;
        config.zipf_theta = 0.99;
        let wl = YcsbWorkload::new(config);
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let txn = wl.make_transaction(&mut rng, 0, None);
            for op in &txn.ops {
                total += 1;
                if op.key - ycsb_key(0, 0) < 100 {
                    head += 1;
                }
            }
        }
        assert!(head as f64 / total as f64 > 0.1, "zipf skew not visible: {head}/{total}");
    }

    #[test]
    fn key_encoding_keeps_partitions_disjoint() {
        assert_ne!(ycsb_key(0, 123), ycsb_key(1, 123));
        assert!(ycsb_key(1, 0) > ycsb_key(0, u32::MAX as u64));
    }
}
