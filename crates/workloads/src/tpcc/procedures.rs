//! The TPC-C NewOrder and Payment stored procedures.
//!
//! Parameters are fully materialised at generation time (warehouse, district,
//! customer, item list, amounts), so the procedures themselves are
//! deterministic and can be re-executed by OCC retries or by deterministic
//! engines without consulting a random-number generator.

use super::schema::{self as s, table};
use star_common::{Error, FieldValue, Operation, PartitionId, Result};
use star_occ::{Procedure, TxnCtx};

/// Maximum length of the customer's `C_DATA` field (TPC-C clause 2.5.3.4 uses
/// 500 characters).
pub const C_DATA_MAX: usize = 500;

/// One order line requested by a NewOrder transaction.
#[derive(Debug, Clone)]
pub struct OrderLineInput {
    /// Item ordered. `None` models the 1% of NewOrders carrying an invalid
    /// item id, which must abort at the application level.
    pub item_id: Option<u64>,
    /// Warehouse supplying the item (may differ from the home warehouse for
    /// cross-partition orders).
    pub supply_warehouse: u64,
    /// Quantity ordered (1–10).
    pub quantity: u64,
}

/// The TPC-C NewOrder transaction.
#[derive(Debug, Clone)]
pub struct NewOrder {
    /// Home warehouse (and partition).
    pub warehouse: u64,
    /// District within the warehouse (1–10).
    pub district: u64,
    /// Customer placing the order.
    pub customer: u64,
    /// The requested order lines (5–15 of them).
    pub lines: Vec<OrderLineInput>,
}

impl NewOrder {
    fn is_all_local(&self) -> bool {
        self.lines.iter().all(|l| l.supply_warehouse == self.warehouse)
    }
}

impl Procedure for NewOrder {
    fn name(&self) -> &'static str {
        "NewOrder"
    }

    fn partitions(&self) -> Vec<PartitionId> {
        let mut ps = vec![s::warehouse_partition(self.warehouse)];
        ps.extend(self.lines.iter().map(|l| s::warehouse_partition(l.supply_warehouse)));
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<()> {
        let w = self.warehouse;
        let d = self.district;
        let home = s::warehouse_partition(w);

        // Warehouse and district reads; the district's next order id is
        // consumed and incremented.
        let _warehouse = ctx.read(table::WAREHOUSE, home, s::warehouse_key(w))?;
        let district_row = ctx.read(table::DISTRICT, home, s::district_key(w, d))?;
        let next_o_id = district_row
            .field(s::district::D_NEXT_O_ID)
            .and_then(FieldValue::as_u64)
            .ok_or_else(|| Error::Config("district row missing D_NEXT_O_ID".into()))?;
        let mut new_district = district_row.clone();
        new_district.set(s::district::D_NEXT_O_ID, FieldValue::U64(next_o_id + 1));
        ctx.update_with_operation(
            table::DISTRICT,
            home,
            s::district_key(w, d),
            new_district,
            Operation::SetField {
                field: s::district::D_NEXT_O_ID,
                value: FieldValue::U64(next_o_id + 1),
            },
        );

        let _customer = ctx.read(table::CUSTOMER, home, s::customer_key(w, d, self.customer))?;

        // Insert the Order and NewOrder rows.
        let o_id = next_o_id;
        ctx.insert(
            table::ORDER,
            home,
            s::order_key(w, d, o_id),
            [
                FieldValue::U64(o_id),
                FieldValue::U64(d),
                FieldValue::U64(w),
                FieldValue::U64(self.customer),
                FieldValue::U64(self.lines.len() as u64),
                FieldValue::U64(self.is_all_local() as u64),
            ]
            .into_iter()
            .collect(),
        );
        ctx.insert(
            table::NEW_ORDER,
            home,
            s::order_key(w, d, o_id),
            [FieldValue::U64(o_id), FieldValue::U64(d), FieldValue::U64(w)].into_iter().collect(),
        );

        // Order lines: read the item, update the supplying stock, insert the
        // order line.
        for (number, line) in self.lines.iter().enumerate() {
            let Some(item_id) = line.item_id else {
                // Invalid item id: the transaction must roll back at the
                // application level (counted as a user abort, not retried).
                return Err(ctx.abort());
            };
            let item_row = match ctx.read(table::ITEM, home, s::item_key(item_id)) {
                Ok(row) => row,
                Err(Error::KeyNotFound { .. }) => return Err(ctx.abort()),
                Err(e) => return Err(e),
            };
            let price =
                item_row.field(s::item::I_PRICE).and_then(FieldValue::as_f64).unwrap_or(1.0);

            let supply_w = line.supply_warehouse;
            let supply_partition = s::warehouse_partition(supply_w);
            let stock_key = s::stock_key(supply_w, item_id);
            let stock_row = ctx.read(table::STOCK, supply_partition, stock_key)?;
            let quantity =
                stock_row.field(s::stock::S_QUANTITY).and_then(FieldValue::as_i64).unwrap_or(0);
            let new_quantity = if quantity - (line.quantity as i64) >= 10 {
                quantity - line.quantity as i64
            } else {
                quantity - line.quantity as i64 + 91
            };
            let remote = supply_w != w;
            let mut new_stock = stock_row.clone();
            new_stock.set(s::stock::S_QUANTITY, FieldValue::I64(new_quantity));
            let ytd = new_stock.field(s::stock::S_YTD).and_then(FieldValue::as_f64).unwrap_or(0.0);
            new_stock.set(s::stock::S_YTD, FieldValue::F64(ytd + line.quantity as f64));
            let order_cnt =
                new_stock.field(s::stock::S_ORDER_CNT).and_then(FieldValue::as_u64).unwrap_or(0);
            new_stock.set(s::stock::S_ORDER_CNT, FieldValue::U64(order_cnt + 1));
            if remote {
                let remote_cnt = new_stock
                    .field(s::stock::S_REMOTE_CNT)
                    .and_then(FieldValue::as_u64)
                    .unwrap_or(0);
                new_stock.set(s::stock::S_REMOTE_CNT, FieldValue::U64(remote_cnt + 1));
            }
            let mut ops = vec![
                Operation::SetField {
                    field: s::stock::S_QUANTITY,
                    value: FieldValue::I64(new_quantity),
                },
                Operation::AddF64 { field: s::stock::S_YTD, delta: line.quantity as f64 },
                Operation::SetField {
                    field: s::stock::S_ORDER_CNT,
                    value: FieldValue::U64(order_cnt + 1),
                },
            ];
            if remote {
                let remote_cnt = new_stock
                    .field(s::stock::S_REMOTE_CNT)
                    .and_then(FieldValue::as_u64)
                    .unwrap_or(0);
                ops.push(Operation::SetField {
                    field: s::stock::S_REMOTE_CNT,
                    value: FieldValue::U64(remote_cnt),
                });
            }
            ctx.update_with_operation(
                table::STOCK,
                supply_partition,
                stock_key,
                new_stock,
                Operation::Multi { ops },
            );

            let amount = line.quantity as f64 * price;
            ctx.insert(
                table::ORDER_LINE,
                home,
                s::order_line_key(w, d, o_id, number as u64 + 1),
                [
                    FieldValue::U64(o_id),
                    FieldValue::U64(d),
                    FieldValue::U64(w),
                    FieldValue::U64(number as u64 + 1),
                    FieldValue::U64(item_id),
                    FieldValue::U64(supply_w),
                    FieldValue::U64(line.quantity),
                    FieldValue::F64(amount),
                ]
                .into_iter()
                .collect(),
            );
        }
        Ok(())
    }
}

/// The TPC-C Payment transaction.
#[derive(Debug, Clone)]
pub struct Payment {
    /// Home warehouse (and partition).
    pub warehouse: u64,
    /// District within the home warehouse.
    pub district: u64,
    /// Warehouse of the paying customer (differs from `warehouse` for the
    /// cross-partition 15%).
    pub customer_warehouse: u64,
    /// District of the paying customer.
    pub customer_district: u64,
    /// Customer id.
    pub customer: u64,
    /// Payment amount.
    pub amount: f64,
    /// Unique suffix for the History row inserted by this payment.
    pub history_seq: u64,
}

impl Procedure for Payment {
    fn name(&self) -> &'static str {
        "Payment"
    }

    fn partitions(&self) -> Vec<PartitionId> {
        let mut ps = vec![
            s::warehouse_partition(self.warehouse),
            s::warehouse_partition(self.customer_warehouse),
        ];
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<()> {
        let w = self.warehouse;
        let d = self.district;
        let home = s::warehouse_partition(w);
        let remote = s::warehouse_partition(self.customer_warehouse);

        // Warehouse YTD.
        let warehouse_row = ctx.read(table::WAREHOUSE, home, s::warehouse_key(w))?;
        let w_ytd =
            warehouse_row.field(s::warehouse::W_YTD).and_then(FieldValue::as_f64).unwrap_or(0.0);
        let mut new_warehouse = warehouse_row.clone();
        new_warehouse.set(s::warehouse::W_YTD, FieldValue::F64(w_ytd + self.amount));
        ctx.update_with_operation(
            table::WAREHOUSE,
            home,
            s::warehouse_key(w),
            new_warehouse,
            Operation::AddF64 { field: s::warehouse::W_YTD, delta: self.amount },
        );

        // District YTD.
        let district_row = ctx.read(table::DISTRICT, home, s::district_key(w, d))?;
        let d_ytd =
            district_row.field(s::district::D_YTD).and_then(FieldValue::as_f64).unwrap_or(0.0);
        let mut new_district = district_row.clone();
        new_district.set(s::district::D_YTD, FieldValue::F64(d_ytd + self.amount));
        ctx.update_with_operation(
            table::DISTRICT,
            home,
            s::district_key(w, d),
            new_district,
            Operation::AddF64 { field: s::district::D_YTD, delta: self.amount },
        );

        // Customer: balance, payment statistics and (for bad credit) C_DATA.
        let c_key = s::customer_key(self.customer_warehouse, self.customer_district, self.customer);
        let customer_row = ctx.read(table::CUSTOMER, remote, c_key)?;
        let balance =
            customer_row.field(s::customer::C_BALANCE).and_then(FieldValue::as_f64).unwrap_or(0.0);
        let ytd_payment = customer_row
            .field(s::customer::C_YTD_PAYMENT)
            .and_then(FieldValue::as_f64)
            .unwrap_or(0.0);
        let payment_cnt = customer_row
            .field(s::customer::C_PAYMENT_CNT)
            .and_then(FieldValue::as_u64)
            .unwrap_or(0);
        let bad_credit = customer_row
            .field(s::customer::C_CREDIT)
            .and_then(FieldValue::as_str)
            .map(|c| c == "BC")
            .unwrap_or(false);

        let mut new_customer = customer_row.clone();
        new_customer.set(s::customer::C_BALANCE, FieldValue::F64(balance - self.amount));
        new_customer.set(s::customer::C_YTD_PAYMENT, FieldValue::F64(ytd_payment + self.amount));
        new_customer.set(s::customer::C_PAYMENT_CNT, FieldValue::U64(payment_cnt + 1));
        let mut ops = vec![
            Operation::AddF64 { field: s::customer::C_BALANCE, delta: -self.amount },
            Operation::AddF64 { field: s::customer::C_YTD_PAYMENT, delta: self.amount },
            Operation::SetField {
                field: s::customer::C_PAYMENT_CNT,
                value: FieldValue::U64(payment_cnt + 1),
            },
        ];
        if bad_credit {
            // Clause 2.5.2.2: bad-credit customers have the payment details
            // prepended to C_DATA, truncated to 500 characters. Shipping just
            // the short prefix (operation replication) instead of the whole
            // 500-character field is the paper's motivating example for the
            // hybrid replication strategy.
            let prefix = format!(
                "{} {} {} {} {} {:.2}|",
                self.customer, self.customer_district, self.customer_warehouse, d, w, self.amount
            );
            let old_data =
                customer_row.field(s::customer::C_DATA).and_then(FieldValue::as_str).unwrap_or("");
            let mut new_data = String::with_capacity(C_DATA_MAX);
            new_data.push_str(&prefix);
            new_data.push_str(old_data);
            new_data.truncate(C_DATA_MAX);
            new_customer.set(s::customer::C_DATA, FieldValue::Str(new_data));
            ops.push(Operation::ConcatStr {
                field: s::customer::C_DATA,
                prefix,
                max_len: C_DATA_MAX,
            });
        }
        ctx.update_with_operation(
            table::CUSTOMER,
            remote,
            c_key,
            new_customer,
            Operation::Multi { ops },
        );

        // History insert (home warehouse side).
        ctx.insert(
            table::HISTORY,
            home,
            s::history_key(w, d, self.customer, self.history_seq),
            [
                FieldValue::U64(self.customer),
                FieldValue::U64(self.customer_district),
                FieldValue::U64(self.customer_warehouse),
                FieldValue::U64(d),
                FieldValue::U64(w),
                FieldValue::F64(self.amount),
                FieldValue::Str(format!("payment-{}", self.history_seq)),
            ]
            .into_iter()
            .collect(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TpccConfig, TpccWorkload};
    use star_core::Workload as _;
    use star_storage::{Database, DatabaseBuilder};

    fn build_db(config: &TpccConfig) -> (TpccWorkload, Database) {
        let wl = TpccWorkload::new(config.clone());
        let mut builder = DatabaseBuilder::new(wl.num_partitions());
        for spec in wl.catalog() {
            builder = builder.table(spec);
        }
        let db = builder.build();
        for p in 0..wl.num_partitions() {
            wl.load_partition(&db, p);
        }
        (wl, db)
    }

    fn config() -> TpccConfig {
        TpccConfig { warehouses: 2, ..TpccConfig::small() }
    }

    #[test]
    fn new_order_inserts_order_rows_and_updates_stock() {
        let (_wl, db) = build_db(&config());
        let proc = NewOrder {
            warehouse: 0,
            district: 1,
            customer: 1,
            lines: vec![
                OrderLineInput { item_id: Some(1), supply_warehouse: 0, quantity: 3 },
                OrderLineInput { item_id: Some(2), supply_warehouse: 0, quantity: 5 },
            ],
        };
        assert!(proc.is_single_partition());
        let mut ctx = TxnCtx::new(&db);
        proc.execute(&mut ctx).unwrap();
        let inserts = ctx.write_set().iter().filter(|w| w.insert).count();
        // Order + NewOrder + 2 OrderLines.
        assert_eq!(inserts, 4);
        // District next_o_id and 2 stock rows are updated.
        let updates = ctx.write_set().iter().filter(|w| !w.insert).count();
        assert_eq!(updates, 3);
    }

    #[test]
    fn new_order_with_remote_supplier_is_cross_partition() {
        let proc = NewOrder {
            warehouse: 0,
            district: 1,
            customer: 1,
            lines: vec![OrderLineInput { item_id: Some(1), supply_warehouse: 1, quantity: 1 }],
        };
        assert!(!proc.is_single_partition());
        assert_eq!(proc.partitions(), vec![0, 1]);
        assert!(!proc.is_all_local());
    }

    #[test]
    fn new_order_with_invalid_item_aborts() {
        let (_wl, db) = build_db(&config());
        let proc = NewOrder {
            warehouse: 0,
            district: 1,
            customer: 1,
            lines: vec![OrderLineInput { item_id: None, supply_warehouse: 0, quantity: 1 }],
        };
        let mut ctx = TxnCtx::new(&db);
        let err = proc.execute(&mut ctx).unwrap_err();
        assert_eq!(err, Error::Abort(star_common::AbortReason::User));
    }

    #[test]
    fn payment_updates_ytd_and_customer_balance() {
        let (_wl, db) = build_db(&config());
        let proc = Payment {
            warehouse: 0,
            district: 1,
            customer_warehouse: 0,
            customer_district: 1,
            customer: 2,
            amount: 42.5,
            history_seq: 7,
        };
        assert!(proc.is_single_partition());
        let mut ctx = TxnCtx::new(&db);
        proc.execute(&mut ctx).unwrap();
        let customer_write = ctx
            .write_set()
            .iter()
            .find(|w| w.table == table::CUSTOMER)
            .expect("payment must update the customer");
        let balance =
            customer_write.row.field(s::customer::C_BALANCE).and_then(FieldValue::as_f64).unwrap();
        // Customers are loaded with a -10.00 balance (TPC-C clause 4.3.3.1);
        // the payment decrements it further.
        assert!((balance - (-52.5)).abs() < 1e-9);
        // Warehouse + district + customer updates and one history insert.
        assert_eq!(ctx.write_set().len(), 4);
        assert_eq!(ctx.write_set().iter().filter(|w| w.insert).count(), 1);
    }

    #[test]
    fn payment_to_remote_customer_is_cross_partition() {
        let proc = Payment {
            warehouse: 0,
            district: 1,
            customer_warehouse: 1,
            customer_district: 2,
            customer: 3,
            amount: 1.0,
            history_seq: 1,
        };
        assert!(!proc.is_single_partition());
        assert_eq!(proc.partitions(), vec![0, 1]);
    }

    #[test]
    fn payment_operation_replication_is_much_cheaper_than_value() {
        // The C_DATA field makes the full customer row heavy; the registered
        // operation ships only the short prefix.
        let (_wl, db) = build_db(&config());
        // Find a bad-credit customer so C_DATA is actually updated.
        let mut bad_credit_customer = None;
        'outer: for d in 1..=3u64 {
            for c in 1..=10u64 {
                let key = s::customer_key(0, d, c);
                let row = db.get(table::CUSTOMER, 0, key).unwrap().read().row;
                if row.field(s::customer::C_CREDIT).and_then(FieldValue::as_str) == Some("BC") {
                    bad_credit_customer = Some((d, c));
                    break 'outer;
                }
            }
        }
        let (d, c) = bad_credit_customer.expect("loader must create some bad-credit customers");
        let proc = Payment {
            warehouse: 0,
            district: d,
            customer_warehouse: 0,
            customer_district: d,
            customer: c,
            amount: 10.0,
            history_seq: 1,
        };
        let mut ctx = TxnCtx::new(&db);
        proc.execute(&mut ctx).unwrap();
        let customer_write = ctx.write_set().iter().find(|w| w.table == table::CUSTOMER).unwrap();
        let op = customer_write.operation.as_ref().unwrap();
        assert!(op.wire_size() * 5 < customer_write.row.wire_size());
    }
}
