//! TPC-C schema: table ids, field indexes and primary-key encoding.
//!
//! All nine TPC-C tables are created; the two supported transactions
//! (NewOrder, Payment) touch Warehouse, District, Customer, History,
//! NewOrder, Order, OrderLine, Item and Stock. Every table is partitioned by
//! warehouse id (warehouse `w` lives in partition `w`); the read-only Item
//! table is replicated into every partition so that item lookups never leave
//! the home partition.
//!
//! Composite keys are bit-packed into a `u64`; the encodings below keep
//! distinct warehouses in disjoint key ranges so a key alone identifies its
//! partition.

#![allow(missing_docs)]

use star_common::{Key, PartitionId};
use star_storage::TableSpec;

/// Table ids, in catalog order.
pub mod table {
    pub const WAREHOUSE: u32 = 0;
    pub const DISTRICT: u32 = 1;
    pub const CUSTOMER: u32 = 2;
    pub const HISTORY: u32 = 3;
    pub const NEW_ORDER: u32 = 4;
    pub const ORDER: u32 = 5;
    pub const ORDER_LINE: u32 = 6;
    pub const ITEM: u32 = 7;
    pub const STOCK: u32 = 8;
}

/// Field indexes of the Warehouse table.
pub mod warehouse {
    pub const W_ID: usize = 0;
    pub const W_NAME: usize = 1;
    pub const W_TAX: usize = 2;
    pub const W_YTD: usize = 3;
}

/// Field indexes of the District table.
pub mod district {
    pub const D_ID: usize = 0;
    pub const D_W_ID: usize = 1;
    pub const D_NAME: usize = 2;
    pub const D_TAX: usize = 3;
    pub const D_YTD: usize = 4;
    pub const D_NEXT_O_ID: usize = 5;
}

/// Field indexes of the Customer table.
pub mod customer {
    pub const C_ID: usize = 0;
    pub const C_D_ID: usize = 1;
    pub const C_W_ID: usize = 2;
    pub const C_LAST: usize = 3;
    pub const C_CREDIT: usize = 4;
    pub const C_BALANCE: usize = 5;
    pub const C_YTD_PAYMENT: usize = 6;
    pub const C_PAYMENT_CNT: usize = 7;
    pub const C_DATA: usize = 8;
}

/// Field indexes of the History table.
pub mod history {
    pub const H_C_ID: usize = 0;
    pub const H_C_D_ID: usize = 1;
    pub const H_C_W_ID: usize = 2;
    pub const H_D_ID: usize = 3;
    pub const H_W_ID: usize = 4;
    pub const H_AMOUNT: usize = 5;
    pub const H_DATA: usize = 6;
}

/// Field indexes of the NewOrder table.
pub mod new_order {
    pub const NO_O_ID: usize = 0;
    pub const NO_D_ID: usize = 1;
    pub const NO_W_ID: usize = 2;
}

/// Field indexes of the Order table.
pub mod order {
    pub const O_ID: usize = 0;
    pub const O_D_ID: usize = 1;
    pub const O_W_ID: usize = 2;
    pub const O_C_ID: usize = 3;
    pub const O_OL_CNT: usize = 4;
    pub const O_ALL_LOCAL: usize = 5;
}

/// Field indexes of the OrderLine table.
pub mod order_line {
    pub const OL_O_ID: usize = 0;
    pub const OL_D_ID: usize = 1;
    pub const OL_W_ID: usize = 2;
    pub const OL_NUMBER: usize = 3;
    pub const OL_I_ID: usize = 4;
    pub const OL_SUPPLY_W_ID: usize = 5;
    pub const OL_QUANTITY: usize = 6;
    pub const OL_AMOUNT: usize = 7;
}

/// Field indexes of the Item table.
pub mod item {
    pub const I_ID: usize = 0;
    pub const I_NAME: usize = 1;
    pub const I_PRICE: usize = 2;
    pub const I_DATA: usize = 3;
}

/// Field indexes of the Stock table.
pub mod stock {
    pub const S_I_ID: usize = 0;
    pub const S_W_ID: usize = 1;
    pub const S_QUANTITY: usize = 2;
    pub const S_YTD: usize = 3;
    pub const S_ORDER_CNT: usize = 4;
    pub const S_REMOTE_CNT: usize = 5;
    pub const S_DATA: usize = 6;
}

/// The catalog handed to the storage layer, in table-id order.
pub fn catalog() -> Vec<TableSpec> {
    vec![
        TableSpec::new("warehouse"),
        TableSpec::new("district"),
        TableSpec::new("customer"),
        TableSpec::new("history"),
        TableSpec::new("new_order"),
        TableSpec::new("order"),
        TableSpec::new("order_line"),
        TableSpec::new("item"),
        TableSpec::new("stock"),
    ]
}

/// Partition of a warehouse (warehouses are 0-based and map 1:1 onto
/// partitions).
pub fn warehouse_partition(w: u64) -> PartitionId {
    w as PartitionId
}

/// Warehouse primary key.
pub fn warehouse_key(w: u64) -> Key {
    w
}

/// District primary key.
pub fn district_key(w: u64, d: u64) -> Key {
    w * 100 + d
}

/// Customer primary key.
pub fn customer_key(w: u64, d: u64, c: u64) -> Key {
    (w * 100 + d) * 100_000 + c
}

/// Item primary key.
pub fn item_key(i: u64) -> Key {
    i
}

/// Stock primary key.
pub fn stock_key(w: u64, i: u64) -> Key {
    w * 1_000_000 + i
}

/// Order (and NewOrder) primary key.
pub fn order_key(w: u64, d: u64, o: u64) -> Key {
    (w * 100 + d) * 10_000_000 + o
}

/// OrderLine primary key.
pub fn order_line_key(w: u64, d: u64, o: u64, line: u64) -> Key {
    order_key(w, d, o) * 100 + line
}

/// History primary key: history rows are insert-only and never read back by a
/// transaction, so a per-generation unique id is sufficient.
pub fn history_key(w: u64, d: u64, c: u64, seq: u64) -> Key {
    customer_key(w, d, c) * 10_000 + (seq % 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_nine_tables_in_order() {
        let cat = catalog();
        assert_eq!(cat.len(), 9);
        assert_eq!(cat[table::WAREHOUSE as usize].name, "warehouse");
        assert_eq!(cat[table::STOCK as usize].name, "stock");
        assert_eq!(cat[table::ORDER_LINE as usize].name, "order_line");
    }

    #[test]
    fn keys_are_unique_across_components() {
        assert_ne!(customer_key(0, 1, 2), customer_key(1, 0, 2));
        assert_ne!(district_key(2, 3), district_key(3, 2));
        assert_ne!(stock_key(1, 5), stock_key(5, 1));
        assert_ne!(order_key(0, 1, 7), order_key(0, 2, 7));
        assert_ne!(order_line_key(0, 1, 7, 1), order_line_key(0, 1, 7, 2));
        assert_ne!(history_key(0, 1, 2, 3), history_key(0, 1, 2, 4));
    }

    #[test]
    fn warehouses_map_to_their_partition() {
        assert_eq!(warehouse_partition(0), 0);
        assert_eq!(warehouse_partition(7), 7);
    }

    #[test]
    fn keys_do_not_collide_within_a_reasonable_scale() {
        // 16 warehouses, 10 districts, 1000 customers — all customer keys are
        // distinct, and order-line keys stay within u64.
        let mut seen = std::collections::HashSet::new();
        for w in 0..16u64 {
            for d in 1..=10u64 {
                for c in 1..=100u64 {
                    assert!(seen.insert(customer_key(w, d, c)));
                }
            }
        }
        let max = order_line_key(15, 10, 9_999_999, 15);
        assert!(max < u64::MAX / 2);
    }
}
