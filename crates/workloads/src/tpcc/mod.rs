//! The TPC-C workload: NewOrder + Payment over nine tables partitioned by
//! warehouse (Section 7.1.1 of the paper).

pub mod procedures;
pub mod schema;

use procedures::{NewOrder, OrderLineInput, Payment};
use rand::rngs::StdRng;
use rand::Rng;
use schema::{self as s, table};
use star_common::rng::{astring, nurand};
use star_common::{FieldValue, PartitionId, Row};
use star_core::{Workload, WorkloadMix};
use star_occ::Procedure;
use star_storage::{Database, TableSpec};

/// Configuration of the TPC-C workload.
///
/// Row counts default to a scaled-down database so that a whole cluster of
/// replicas loads in milliseconds; the paper's full-size parameters are noted
/// on each field.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses = number of partitions (one warehouse per
    /// partition, ~100 MB per partition at full scale).
    pub warehouses: usize,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (TPC-C: 3 000).
    pub customers_per_district: u64,
    /// Items in the catalog, replicated per partition (TPC-C: 100 000).
    pub items: u64,
    /// Fraction of transactions that are cross-partition. The paper's default
    /// mix has 10% of NewOrder and 15% of Payment cross-partition; a single
    /// knob is exposed because the figures sweep it uniformly.
    pub cross_partition_fraction: f64,
    /// Fraction of NewOrder transactions carrying an invalid item id (TPC-C:
    /// 1%), which abort at the application level.
    pub invalid_item_fraction: f64,
    /// Fraction of customers created with bad credit ("BC", TPC-C: 10%).
    pub bad_credit_fraction: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 4,
            districts_per_warehouse: 10,
            customers_per_district: 120,
            items: 1_000,
            cross_partition_fraction: 0.125,
            invalid_item_fraction: 0.01,
            bad_credit_fraction: 0.10,
        }
    }
}

impl TpccConfig {
    /// A very small configuration for unit tests.
    pub fn small() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 3,
            customers_per_district: 10,
            items: 50,
            ..Default::default()
        }
    }

    /// A configuration with `warehouses` warehouses and the default knobs.
    pub fn with_warehouses(warehouses: usize) -> Self {
        TpccConfig { warehouses, ..Default::default() }
    }
}

/// The TPC-C workload (NewOrder + Payment standard mix).
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    config: TpccConfig,
}

impl TpccWorkload {
    /// Creates the workload.
    pub fn new(config: TpccConfig) -> Self {
        TpccWorkload { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    fn random_district(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(1..=self.config.districts_per_warehouse)
    }

    fn random_customer(&self, rng: &mut StdRng) -> u64 {
        nurand(rng, 1023, 1, self.config.customers_per_district, 259)
            .min(self.config.customers_per_district)
    }

    fn random_item(&self, rng: &mut StdRng) -> u64 {
        nurand(rng, 8191, 1, self.config.items, 7911).min(self.config.items)
    }

    fn random_remote_warehouse(&self, rng: &mut StdRng, home: u64) -> u64 {
        if self.config.warehouses < 2 {
            return home;
        }
        let offset = rng.gen_range(1..self.config.warehouses as u64);
        (home + offset) % self.config.warehouses as u64
    }

    fn make_new_order(&self, rng: &mut StdRng, home: u64, cross: bool) -> NewOrder {
        let line_count = rng.gen_range(5..=15usize);
        // For cross-partition orders, force at least one remote supplier.
        let remote_line = if cross { Some(rng.gen_range(0..line_count)) } else { None };
        let invalid = rng.gen::<f64>() < self.config.invalid_item_fraction;
        let invalid_line = if invalid { Some(line_count - 1) } else { None };
        let lines = (0..line_count)
            .map(|i| {
                let supply_warehouse = if Some(i) == remote_line {
                    self.random_remote_warehouse(rng, home)
                } else {
                    home
                };
                OrderLineInput {
                    item_id: if Some(i) == invalid_line {
                        None
                    } else {
                        Some(self.random_item(rng))
                    },
                    supply_warehouse,
                    quantity: rng.gen_range(1..=10),
                }
            })
            .collect();
        NewOrder {
            warehouse: home,
            district: self.random_district(rng),
            customer: self.random_customer(rng),
            lines,
        }
    }

    fn make_payment(&self, rng: &mut StdRng, home: u64, cross: bool) -> Payment {
        let (customer_warehouse, customer_district) = if cross {
            (self.random_remote_warehouse(rng, home), self.random_district(rng))
        } else {
            (home, self.random_district(rng))
        };
        Payment {
            warehouse: home,
            district: self.random_district(rng),
            customer_warehouse,
            customer_district,
            customer: self.random_customer(rng),
            amount: rng.gen_range(1.0..5_000.0),
            history_seq: rng.gen(),
        }
    }

    fn make_transaction(&self, rng: &mut StdRng, home: u64, cross: bool) -> Box<dyn Procedure> {
        // The standard mix alternates NewOrder and Payment; drawing uniformly
        // gives the same 50/50 proportion in expectation.
        if rng.gen_bool(0.5) {
            Box::new(self.make_new_order(rng, home, cross))
        } else {
            Box::new(self.make_payment(rng, home, cross))
        }
    }

    fn warehouse_row(w: u64, rng: &mut StdRng) -> Row {
        [
            FieldValue::U64(w),
            FieldValue::Str(astring(rng, 6, 10)),
            FieldValue::F64(rng.gen_range(0.0..0.2)),
            FieldValue::F64(300_000.0),
        ]
        .into_iter()
        .collect()
    }

    fn district_row(w: u64, d: u64, rng: &mut StdRng) -> Row {
        [
            FieldValue::U64(d),
            FieldValue::U64(w),
            FieldValue::Str(astring(rng, 6, 10)),
            FieldValue::F64(rng.gen_range(0.0..0.2)),
            FieldValue::F64(30_000.0),
            FieldValue::U64(3_001),
        ]
        .into_iter()
        .collect()
    }

    fn customer_row(&self, w: u64, d: u64, c: u64, rng: &mut StdRng) -> Row {
        let credit = if rng.gen::<f64>() < self.config.bad_credit_fraction { "BC" } else { "GC" };
        [
            FieldValue::U64(c),
            FieldValue::U64(d),
            FieldValue::U64(w),
            FieldValue::Str(format!("LAST{}", c % 100)),
            FieldValue::Str(credit.to_owned()),
            FieldValue::F64(-10.0),
            FieldValue::F64(10.0),
            FieldValue::U64(1),
            FieldValue::Str(astring(rng, 300, procedures::C_DATA_MAX)),
        ]
        .into_iter()
        .collect()
    }

    fn item_row(i: u64, rng: &mut StdRng) -> Row {
        [
            FieldValue::U64(i),
            FieldValue::Str(astring(rng, 14, 24)),
            FieldValue::F64(rng.gen_range(1.0..100.0)),
            FieldValue::Str(astring(rng, 26, 50)),
        ]
        .into_iter()
        .collect()
    }

    fn stock_row(w: u64, i: u64, rng: &mut StdRng) -> Row {
        [
            FieldValue::U64(i),
            FieldValue::U64(w),
            FieldValue::I64(rng.gen_range(10..100)),
            FieldValue::F64(0.0),
            FieldValue::U64(0),
            FieldValue::U64(0),
            FieldValue::Str(astring(rng, 26, 50)),
        ]
        .into_iter()
        .collect()
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn catalog(&self) -> Vec<TableSpec> {
        schema::catalog()
    }

    fn num_partitions(&self) -> usize {
        self.config.warehouses
    }

    fn mix(&self) -> WorkloadMix {
        WorkloadMix { cross_partition_fraction: self.config.cross_partition_fraction }
    }

    fn load_partition(&self, db: &Database, partition: PartitionId) {
        use rand::SeedableRng;
        let w = partition as u64;
        // Deterministic per-partition seed so every replica of the partition
        // loads identical rows.
        let mut rng = StdRng::seed_from_u64(0x7BCC_0000u64 ^ w);
        db.insert(
            table::WAREHOUSE,
            partition,
            s::warehouse_key(w),
            Self::warehouse_row(w, &mut rng),
        )
        .expect("loading a held partition cannot fail");
        for d in 1..=self.config.districts_per_warehouse {
            db.insert(
                table::DISTRICT,
                partition,
                s::district_key(w, d),
                Self::district_row(w, d, &mut rng),
            )
            .unwrap();
            for c in 1..=self.config.customers_per_district {
                db.insert(
                    table::CUSTOMER,
                    partition,
                    s::customer_key(w, d, c),
                    self.customer_row(w, d, c, &mut rng),
                )
                .unwrap();
            }
        }
        for i in 1..=self.config.items {
            db.insert(table::ITEM, partition, s::item_key(i), Self::item_row(i, &mut rng)).unwrap();
            db.insert(table::STOCK, partition, s::stock_key(w, i), Self::stock_row(w, i, &mut rng))
                .unwrap();
        }
    }

    fn single_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure> {
        self.make_transaction(rng, partition as u64, false)
    }

    fn cross_partition_transaction(
        &self,
        rng: &mut StdRng,
        partition: PartitionId,
    ) -> Box<dyn Procedure> {
        if self.config.warehouses < 2 {
            return self.single_partition_transaction(rng, partition);
        }
        self.make_transaction(rng, partition as u64, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use star_occ::TxnCtx;
    use star_storage::DatabaseBuilder;

    fn build_db(wl: &TpccWorkload) -> Database {
        let mut builder = DatabaseBuilder::new(wl.num_partitions());
        for spec in wl.catalog() {
            builder = builder.table(spec);
        }
        let db = builder.build();
        for p in 0..wl.num_partitions() {
            wl.load_partition(&db, p);
        }
        db
    }

    #[test]
    fn loader_creates_all_tables() {
        let wl = TpccWorkload::new(TpccConfig::small());
        let db = build_db(&wl);
        let c = &wl.config;
        let per_wh = 1
            + c.districts_per_warehouse
            + c.districts_per_warehouse * c.customers_per_district
            + 2 * c.items;
        assert_eq!(db.len() as u64, per_wh * c.warehouses as u64);
        // Spot-check a few rows.
        assert!(db.get(table::WAREHOUSE, 1, s::warehouse_key(1)).is_ok());
        assert!(db.get(table::DISTRICT, 0, s::district_key(0, 3)).is_ok());
        assert!(db.get(table::CUSTOMER, 1, s::customer_key(1, 2, 5)).is_ok());
        assert!(db.get(table::STOCK, 0, s::stock_key(0, 17)).is_ok());
        assert!(db.get(table::ITEM, 1, s::item_key(17)).is_ok());
    }

    #[test]
    fn loading_is_deterministic_across_replicas() {
        let wl = TpccWorkload::new(TpccConfig::small());
        let a = build_db(&wl);
        let b = build_db(&wl);
        let key = s::customer_key(0, 1, 3);
        assert_eq!(
            a.get(table::CUSTOMER, 0, key).unwrap().read().row,
            b.get(table::CUSTOMER, 0, key).unwrap().read().row
        );
    }

    #[test]
    fn generated_transactions_respect_the_cross_partition_flag() {
        let wl = TpccWorkload::new(TpccConfig::with_warehouses(4));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let single = wl.single_partition_transaction(&mut rng, 2);
            assert_eq!(single.partitions(), vec![2]);
            let cross = wl.cross_partition_transaction(&mut rng, 2);
            assert!(cross.partitions().contains(&2));
            assert!(cross.partitions().len() >= 2, "cross txn must span partitions");
        }
    }

    #[test]
    fn standard_mix_executes_against_loaded_database() {
        let config = TpccConfig { warehouses: 2, ..TpccConfig::default() };
        let wl = TpccWorkload::new(config);
        let db = build_db(&wl);
        let mut rng = StdRng::seed_from_u64(11);
        let mut commits = 0;
        let mut user_aborts = 0;
        for i in 0..200 {
            let txn = wl.mixed_transaction(&mut rng, i % 2);
            let mut ctx = TxnCtx::new(&db);
            match txn.execute(&mut ctx) {
                Ok(()) => commits += 1,
                Err(star_common::Error::Abort(star_common::AbortReason::User)) => user_aborts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(commits > 150, "commits={commits}");
        // ~1% of NewOrders (i.e. ~0.5% of the mix) abort; over 200 txns the
        // count should be small but the mechanism must exist.
        assert!(user_aborts < 20, "user_aborts={user_aborts}");
    }

    #[test]
    fn new_order_consumes_consecutive_order_ids() {
        let wl = TpccWorkload::new(TpccConfig::small());
        let db = build_db(&wl);
        let mut rng = StdRng::seed_from_u64(13);
        let mut gen = star_common::TidGenerator::new();
        let mut order_ids = Vec::new();
        for _ in 0..3 {
            let proc = wl.make_new_order(&mut rng, 0, false);
            let d = proc.district;
            let mut ctx = TxnCtx::new(&db);
            if proc.execute(&mut ctx).is_err() {
                continue;
            }
            let (rs, ws) = ctx.into_sets();
            star_occ::commit_single_master(&db, rs, ws, 1, &mut gen).unwrap();
            let district = db.get(table::DISTRICT, 0, s::district_key(0, d)).unwrap().read().row;
            order_ids.push(district.field(s::district::D_NEXT_O_ID).unwrap().as_u64().unwrap());
        }
        // Each committed NewOrder advances its district's next order id.
        assert!(order_ids.iter().all(|&o| o > 3_001));
    }
}
