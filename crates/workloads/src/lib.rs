//! Benchmark workloads for the STAR reproduction: YCSB and TPC-C.
//!
//! Both workloads follow the parameterisation of Section 7.1.1 of the paper:
//!
//! * **YCSB** — a single table with 10 columns of 10 random bytes, keyed by a
//!   64-bit integer; each transaction accesses 10 records (9 reads, 1 write by
//!   default) with a uniform distribution; 200 K rows per partition in the
//!   paper (configurable and much smaller by default here so tests load
//!   quickly); a configurable percentage of transactions touch a second
//!   partition.
//! * **TPC-C** — the NewOrder and Payment transactions over the standard nine
//!   tables, partitioned by warehouse. The paper runs the standard mix of the
//!   two (a NewOrder followed by a Payment); by default 10% of NewOrder and
//!   15% of Payment transactions are cross-partition. Row counts are scaled
//!   down by default (items, customers per district) so that a full cluster
//!   of replicas loads in milliseconds; the schema, transaction logic, key
//!   structure and replication operations (e.g. the `C_DATA` string
//!   concatenation in Payment) are faithful.
//!
//! Both types implement [`star_core::Workload`], so they can be driven by the
//! STAR engine and by every baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod tpcc;
pub mod ycsb;

pub use tpcc::{TpccConfig, TpccWorkload};
pub use ycsb::{YcsbConfig, YcsbWorkload};
