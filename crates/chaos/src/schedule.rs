//! The fault-schedule DSL: *what* breaks, *when*.
//!
//! A [`FaultSchedule`] is a list of [`FaultOp`]s pinned to injection points
//! inside the phase-switching loop. The chaos driver executes iterations of
//! the deterministic stepped engine and applies the scheduled operations in
//! between half-phases and around fences, so a schedule can crash a node
//! mid-partitioned-phase, mid-single-master-phase, immediately before a
//! fence (the fence then performs detection and the epoch revert — the
//! "crash during the phase-switch fence" scenario), or around a checkpoint
//! capture.
//!
//! Schedules are plain data: they print with `Debug`, so a failing seed's
//! report contains everything needed to reproduce the run.

use star_common::NodeId;
use star_core::RecoveryFault;
use star_net::LinkFaults;

/// Version of the schedule wire format (the JSON encoding used by the
/// regression corpus under `tests/chaos_corpus/` and by the `star-chaos`
/// report). Bump this whenever [`FaultOp`], [`InjectionPoint`] or the
/// [`crate::corpus`] encoding changes shape, so stale corpus entries are
/// rejected with a clear error instead of silently replaying something
/// different from what was minimized.
pub const SCHEDULE_FORMAT_VERSION: u32 = 1;

/// Where inside one iteration of the phase-switching loop an operation
/// fires. The iteration structure is:
///
/// ```text
/// PartitionedStart → (first half) → MidPartitioned → (second half)
///   → BeforeFirstFence → FENCE → SingleMasterStart → (first half)
///   → MidSingleMaster → (second half) → BeforeSecondFence → FENCE
///   → IterationEnd
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectionPoint {
    /// Before the partitioned phase of the iteration starts.
    PartitionedStart,
    /// Halfway through the partitioned phase.
    MidPartitioned,
    /// After the partitioned phase, immediately before the fence that closes
    /// its epoch (faults injected here are detected by that fence).
    BeforeFirstFence,
    /// Before the single-master phase starts.
    SingleMasterStart,
    /// Halfway through the single-master phase.
    MidSingleMaster,
    /// Immediately before the fence closing the single-master epoch.
    BeforeSecondFence,
    /// After the second fence (iteration complete).
    IterationEnd,
}

/// One fault (or repair) operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Crash a node: the simulated network marks it failed; the next fence
    /// detects it and reverts the in-flight epoch (Figure 6).
    Crash(NodeId),
    /// Recover a crashed node by copying its partitions from healthy
    /// replicas (the Cases 1–3 catch-up path).
    Recover(NodeId),
    /// Start recovering a crashed node but inject a fault mid-copy: the
    /// recovery aborts, the node stays down, and the fault's side effects
    /// (a crashed source, a cut link) persist — the recovery path itself is
    /// under test (`StarEngine::recover_node_interrupted`).
    RecoverInterrupted(NodeId, RecoveryFault),
    /// Cut the bidirectional link between two nodes (network partition;
    /// silent message loss).
    CutLink(NodeId, NodeId),
    /// Restore a previously cut link.
    HealLink(NodeId, NodeId),
    /// Apply fault probabilities to one directed link.
    SetLinkFaults(NodeId, NodeId, LinkFaults),
    /// Apply fault probabilities to every link without an override.
    SetDefaultFaults(LinkFaults),
    /// Clear every fault configuration and cut link.
    ClearFaults,
    /// Capture a fuzzy checkpoint of every healthy replica (the Case-4
    /// disk-recovery input, Section 4.5.1).
    Checkpoint,
    /// Byzantine disk fault: tear the tail of a node's on-disk WAL by the
    /// given number of bytes (see `star_replication::truncate_wal_tail`).
    /// Never protocol-safe — this is a planted bug that the Case-4 disk
    /// recovery must detect, so a schedule containing it is expected red.
    TruncateWal(NodeId, u64),
}

/// One scheduled operation: `op` fires at `point` of iteration `iteration`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// Injection point within the iteration.
    pub point: InjectionPoint,
    /// The operation.
    pub op: FaultOp,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    ops: Vec<ScheduledOp>,
}

impl FaultSchedule {
    /// An empty schedule (a fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operation (builder style).
    pub fn at(mut self, iteration: usize, point: InjectionPoint, op: FaultOp) -> Self {
        self.ops.push(ScheduledOp { iteration, point, op });
        self
    }

    /// Adds an operation in place.
    pub fn push(&mut self, iteration: usize, point: InjectionPoint, op: FaultOp) {
        self.ops.push(ScheduledOp { iteration, point, op });
    }

    /// Every scheduled operation, in insertion order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// The operations firing at `(iteration, point)`, in insertion order.
    pub fn ops_at(
        &self,
        iteration: usize,
        point: InjectionPoint,
    ) -> impl Iterator<Item = &FaultOp> {
        self.ops.iter().filter(move |s| s.iteration == iteration && s.point == point).map(|s| &s.op)
    }

    /// Smallest number of iterations that covers every scheduled operation.
    pub fn iterations_required(&self) -> usize {
        self.ops.iter().map(|s| s.iteration + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_fire_at_their_point() {
        let schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(1, InjectionPoint::MidPartitioned, FaultOp::CutLink(0, 2))
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(2));
        let mid: Vec<&FaultOp> = schedule.ops_at(1, InjectionPoint::MidPartitioned).collect();
        assert_eq!(mid, vec![&FaultOp::Crash(2), &FaultOp::CutLink(0, 2)]);
        assert_eq!(schedule.ops_at(1, InjectionPoint::IterationEnd).count(), 0);
        assert_eq!(schedule.ops_at(3, InjectionPoint::IterationEnd).count(), 1);
        assert_eq!(schedule.iterations_required(), 4);
        assert_eq!(FaultSchedule::new().iterations_required(), 0);
    }

    #[test]
    fn schedules_are_printable_for_reproduction() {
        let schedule =
            FaultSchedule::new().at(0, InjectionPoint::BeforeFirstFence, FaultOp::Crash(1));
        let printed = format!("{schedule:?}");
        assert!(printed.contains("BeforeFirstFence"));
        assert!(printed.contains("Crash(1)"));
    }
}
