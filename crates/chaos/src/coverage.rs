//! Schedule-space coverage accounting.
//!
//! Seed count is a poor proxy for coverage: a thousand synthesized walks can
//! keep exercising the same few fault patterns while whole regions of the
//! DSL — a recovery interrupted during a re-election storm, a checkpoint
//! followed by a link cut — are never visited. Following the observation in
//! "Identifying the Major Sources of Variance in Transaction Latencies"
//! that you must *measure* which paths a stress run actually reaches, this
//! module records, per schedule:
//!
//! * **op bigrams** — consecutive pairs of [`FaultOp`] kinds in execution
//!   order (the order the driver fires them), the walk's basic "pattern"
//!   unit;
//! * **injection-point coverage** — which `(injection point, op kind)`
//!   pairs fired;
//! * **phase × fault coverage** — which engine phase (partitioned,
//!   single-master, iteration boundary) saw which op kind.
//!
//! Maps are *sets*, so merging across a sweep is commutative, associative
//! and idempotent, and accounting is monotone under schedule extension —
//! properties the test suite pins down, because the guided walk
//! (`star-chaos --synth-guided`) uses merged maps to bias generation toward
//! uncovered territory and a non-monotone map would mis-steer it.
//!
//! Everything here is a pure function of the schedule (not of a run), so
//! coverage is byte-for-byte deterministic per seed and the guided walk can
//! score candidate schedules without executing them.

use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint, ScheduledOp};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The kind of a [`FaultOp`], with the payload stripped — the unit of
/// coverage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// `FaultOp::Crash`.
    Crash,
    /// `FaultOp::Recover`.
    Recover,
    /// `FaultOp::RecoverInterrupted` (any interruption kind).
    RecoverInterrupted,
    /// `FaultOp::CutLink`.
    CutLink,
    /// `FaultOp::HealLink`.
    HealLink,
    /// `FaultOp::SetLinkFaults`.
    SetLinkFaults,
    /// `FaultOp::SetDefaultFaults`.
    SetDefaultFaults,
    /// `FaultOp::ClearFaults`.
    ClearFaults,
    /// `FaultOp::Checkpoint`.
    Checkpoint,
    /// `FaultOp::TruncateWal`.
    TruncateWal,
}

impl OpKind {
    /// Every op kind, in canonical order — the universe the uncovered-bigram
    /// report is computed against.
    pub const ALL: [OpKind; 10] = [
        OpKind::Crash,
        OpKind::Recover,
        OpKind::RecoverInterrupted,
        OpKind::CutLink,
        OpKind::HealLink,
        OpKind::SetLinkFaults,
        OpKind::SetDefaultFaults,
        OpKind::ClearFaults,
        OpKind::Checkpoint,
        OpKind::TruncateWal,
    ];

    /// The kind of one op.
    pub fn of(op: &FaultOp) -> OpKind {
        match op {
            FaultOp::Crash(_) => OpKind::Crash,
            FaultOp::Recover(_) => OpKind::Recover,
            FaultOp::RecoverInterrupted(..) => OpKind::RecoverInterrupted,
            FaultOp::CutLink(..) => OpKind::CutLink,
            FaultOp::HealLink(..) => OpKind::HealLink,
            FaultOp::SetLinkFaults(..) => OpKind::SetLinkFaults,
            FaultOp::SetDefaultFaults(_) => OpKind::SetDefaultFaults,
            FaultOp::ClearFaults => OpKind::ClearFaults,
            FaultOp::Checkpoint => OpKind::Checkpoint,
            FaultOp::TruncateWal(..) => OpKind::TruncateWal,
        }
    }

    /// Stable label used in reports and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Crash => "Crash",
            OpKind::Recover => "Recover",
            OpKind::RecoverInterrupted => "RecoverInterrupted",
            OpKind::CutLink => "CutLink",
            OpKind::HealLink => "HealLink",
            OpKind::SetLinkFaults => "SetLinkFaults",
            OpKind::SetDefaultFaults => "SetDefaultFaults",
            OpKind::ClearFaults => "ClearFaults",
            OpKind::Checkpoint => "Checkpoint",
            OpKind::TruncateWal => "TruncateWal",
        }
    }
}

/// The engine phase an injection point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EnginePhase {
    /// The partitioned half of the iteration (start, middle, pre-fence).
    Partitioned,
    /// The single-master half of the iteration (start, middle, pre-fence).
    SingleMaster,
    /// After the second fence (between iterations).
    IterationBoundary,
}

impl EnginePhase {
    /// Maps an injection point to its engine phase.
    pub fn of(point: InjectionPoint) -> EnginePhase {
        use InjectionPoint::*;
        match point {
            PartitionedStart | MidPartitioned | BeforeFirstFence => EnginePhase::Partitioned,
            SingleMasterStart | MidSingleMaster | BeforeSecondFence => EnginePhase::SingleMaster,
            IterationEnd => EnginePhase::IterationBoundary,
        }
    }

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EnginePhase::Partitioned => "Partitioned",
            EnginePhase::SingleMaster => "SingleMaster",
            EnginePhase::IterationBoundary => "IterationBoundary",
        }
    }
}

fn point_label(point: InjectionPoint) -> &'static str {
    use InjectionPoint::*;
    match point {
        PartitionedStart => "PartitionedStart",
        MidPartitioned => "MidPartitioned",
        BeforeFirstFence => "BeforeFirstFence",
        SingleMasterStart => "SingleMasterStart",
        MidSingleMaster => "MidSingleMaster",
        BeforeSecondFence => "BeforeSecondFence",
        IterationEnd => "IterationEnd",
    }
}

/// Coverage of one schedule, or the merged coverage of many.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    /// Consecutive `(kind, kind)` pairs in execution order.
    bigrams: BTreeSet<(OpKind, OpKind)>,
    /// `(injection point, op kind)` pairs that fired.
    points: BTreeSet<(InjectionPoint, OpKind)>,
    /// `(engine phase, op kind)` pairs that fired.
    phase_faults: BTreeSet<(EnginePhase, OpKind)>,
}

/// The execution-ordered op stream of a schedule: iteration, then injection
/// point, then insertion order within the point — exactly the order the
/// driver applies ops in.
pub fn execution_order(schedule: &FaultSchedule) -> Vec<&ScheduledOp> {
    use InjectionPoint::*;
    const POINTS: [InjectionPoint; 7] = [
        PartitionedStart,
        MidPartitioned,
        BeforeFirstFence,
        SingleMasterStart,
        MidSingleMaster,
        BeforeSecondFence,
        IterationEnd,
    ];
    let mut ordered: Vec<&ScheduledOp> = Vec::with_capacity(schedule.ops().len());
    for iteration in 0..schedule.iterations_required() {
        for point in POINTS {
            ordered.extend(
                schedule.ops().iter().filter(|s| s.iteration == iteration && s.point == point),
            );
        }
    }
    ordered
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The coverage of one schedule.
    pub fn from_schedule(schedule: &FaultSchedule) -> Self {
        let mut map = CoverageMap::new();
        map.observe(schedule);
        map
    }

    /// Adds one schedule's coverage into this map.
    pub fn observe(&mut self, schedule: &FaultSchedule) {
        let ordered = execution_order(schedule);
        for pair in ordered.windows(2) {
            self.bigrams.insert((OpKind::of(&pair[0].op), OpKind::of(&pair[1].op)));
        }
        for op in &ordered {
            let kind = OpKind::of(&op.op);
            self.points.insert((op.point, kind));
            self.phase_faults.insert((EnginePhase::of(op.point), kind));
        }
    }

    /// Merges another map into this one (set union — commutative,
    /// associative, idempotent).
    pub fn merge(&mut self, other: &CoverageMap) {
        self.bigrams.extend(other.bigrams.iter().copied());
        self.points.extend(other.points.iter().copied());
        self.phase_faults.extend(other.phase_faults.iter().copied());
    }

    /// Number of distinct op bigrams covered.
    pub fn bigram_count(&self) -> usize {
        self.bigrams.len()
    }

    /// Number of distinct `(point, kind)` pairs covered.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Number of distinct `(phase, kind)` pairs covered.
    pub fn phase_fault_count(&self) -> usize {
        self.phase_faults.len()
    }

    /// How many coverage units of `other` are *not* yet in this map — the
    /// novelty score the guided walk maximizes when choosing among candidate
    /// schedules.
    pub fn novelty_of(&self, other: &CoverageMap) -> usize {
        other.bigrams.difference(&self.bigrams).count()
            + other.points.difference(&self.points).count()
            + other.phase_faults.difference(&self.phase_faults).count()
    }

    /// Whether `other` adds nothing to this map.
    pub fn covers(&self, other: &CoverageMap) -> bool {
        self.novelty_of(other) == 0
    }

    /// Op bigrams from the full `OpKind × OpKind` universe that no observed
    /// schedule has exercised — what the nightly artifact surfaces so
    /// uncovered patterns are visible, not just the covered count.
    pub fn uncovered_bigrams(&self) -> Vec<(OpKind, OpKind)> {
        let mut uncovered = Vec::new();
        for a in OpKind::ALL {
            for b in OpKind::ALL {
                if !self.bigrams.contains(&(a, b)) {
                    uncovered.push((a, b));
                }
            }
        }
        uncovered
    }

    /// FNV-1a fingerprint of the canonical encoding — two maps covering the
    /// same territory hash identically, which is what the determinism
    /// property test pins ("identical seeds yield byte-identical coverage
    /// maps").
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.to_json().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Canonical JSON encoding (sorted sets → byte-identical for equal
    /// maps). Embedded in the `star-chaos` report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bigrams\":[");
        for (i, (a, b)) in self.bigrams.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}>{}\"", a.label(), b.label());
        }
        out.push_str("],\"points\":[");
        for (i, (point, kind)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}@{}\"", kind.label(), point_label(*point));
        }
        out.push_str("],\"phase_faults\":[");
        for (i, (phase, kind)) in self.phase_faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}@{}\"", kind.label(), phase.label());
        }
        out.push_str("],\"uncovered_bigrams\":[");
        for (i, (a, b)) in self.uncovered_bigrams().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}>{}\"", a.label(), b.label());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultOp;
    use crate::synth::synth_plan_for_seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bigrams_follow_execution_order_not_insertion_order() {
        // Inserted out of order: the Recover (iteration 2) first, then the
        // Crash (iteration 0). Execution order is Crash → Checkpoint →
        // Recover.
        let schedule = FaultSchedule::new()
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(1))
            .at(0, InjectionPoint::MidPartitioned, FaultOp::Crash(1))
            .at(1, InjectionPoint::PartitionedStart, FaultOp::Checkpoint);
        let map = CoverageMap::from_schedule(&schedule);
        assert_eq!(map.bigram_count(), 2);
        let json = map.to_json();
        let covered = json.split("uncovered").next().unwrap();
        assert!(covered.contains("\"Crash>Checkpoint\""), "{json}");
        assert!(covered.contains("\"Checkpoint>Recover\""), "{json}");
        assert!(!covered.contains("\"Recover>Crash\""), "{json}");
        assert_eq!(map.point_count(), 3);
        assert_eq!(map.phase_fault_count(), 3);
    }

    #[test]
    fn accounting_is_monotone_under_schedule_extension() {
        // Appending ops at later iterations only appends to the execution
        // stream, so every covered unit stays covered.
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..64 {
            let mut schedule = FaultSchedule::new();
            let base_len = rng.gen_range(0..12);
            for i in 0..base_len {
                schedule.push(i, InjectionPoint::MidPartitioned, random_op(&mut rng));
            }
            let before = CoverageMap::from_schedule(&schedule);
            for j in 0..rng.gen_range(1..6) {
                schedule.push(base_len + j, InjectionPoint::IterationEnd, random_op(&mut rng));
            }
            let after = CoverageMap::from_schedule(&schedule);
            assert!(after.covers(&before), "extension lost coverage");
            assert!(after.bigram_count() >= before.bigram_count());
        }
    }

    #[test]
    fn merge_is_commutative_idempotent_and_associative() {
        let maps: Vec<CoverageMap> = (0..12u64)
            .map(|seed| CoverageMap::from_schedule(&synth_plan_for_seed(seed).schedule))
            .collect();
        for a in &maps {
            for b in &maps {
                let mut ab = a.clone();
                ab.merge(b);
                let mut ba = b.clone();
                ba.merge(a);
                assert_eq!(ab, ba, "merge must be commutative");
                let mut abb = ab.clone();
                abb.merge(b);
                assert_eq!(abb, ab, "merge must be idempotent");
                for c in maps.iter().take(4) {
                    let mut left = ab.clone();
                    left.merge(c);
                    let mut bc = b.clone();
                    bc.merge(c);
                    let mut right = a.clone();
                    right.merge(&bc);
                    assert_eq!(left, right, "merge must be associative");
                }
            }
        }
    }

    #[test]
    fn identical_seeds_yield_byte_identical_coverage() {
        for seed in 0..64u64 {
            let a = CoverageMap::from_schedule(&synth_plan_for_seed(seed).schedule);
            let b = CoverageMap::from_schedule(&synth_plan_for_seed(seed).schedule);
            assert_eq!(a.to_json(), b.to_json(), "seed {seed}");
            assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed}");
        }
    }

    #[test]
    fn uncovered_bigrams_complement_the_covered_set() {
        let map = CoverageMap::from_schedule(&synth_plan_for_seed(12).schedule);
        let universe = OpKind::ALL.len() * OpKind::ALL.len();
        assert_eq!(map.uncovered_bigrams().len() + map.bigram_count(), universe);
        assert_eq!(CoverageMap::new().uncovered_bigrams().len(), universe);
    }

    fn random_op(rng: &mut StdRng) -> FaultOp {
        match rng.gen_range(0..6) {
            0 => FaultOp::Crash(rng.gen_range(0..4)),
            1 => FaultOp::Recover(rng.gen_range(0..4)),
            2 => FaultOp::Checkpoint,
            3 => FaultOp::ClearFaults,
            4 => FaultOp::CutLink(0, rng.gen_range(1..4)),
            _ => FaultOp::HealLink(0, rng.gen_range(1..4)),
        }
    }
}
