//! The regression-seed corpus: shrunk counterexamples as versioned JSON.
//!
//! A shrunk red schedule is the most valuable artifact a chaos sweep
//! produces — and PR 4's harness forgot every one of them the moment the
//! sweep ended. This module gives them a home: a [`CorpusEntry`] serializes
//! a complete [`ChaosPlan`] (config, workload, phase sizes and the full
//! fault schedule) to JSON, entries live under `tests/chaos_corpus/`, and
//! `star-chaos --replay-corpus` re-runs every committed entry as a
//! regression seed — a schedule that once exposed a real bug must stay
//! green forever after the fix.
//!
//! Two version numbers guard replayability:
//!
//! * [`CORPUS_FORMAT_VERSION`] — the JSON envelope;
//! * [`crate::schedule::SCHEDULE_FORMAT_VERSION`] — the op encoding.
//!
//! A stale entry is rejected with a clear error naming both versions (never
//! a panic), so a format change surfaces as "regenerate these entries",
//! not as a corrupted replay.

use crate::driver::{ChaosPlan, WorkloadSpec};
use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint, SCHEDULE_FORMAT_VERSION};
use serde::Value;
use star_common::{ClusterConfig, ReplicationMode, ReplicationStrategy};
use star_core::RecoveryFault;
use star_net::LinkFaults;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version of the corpus JSON envelope. Bump together with any change to
/// the field layout below.
pub const CORPUS_FORMAT_VERSION: u32 = 1;

/// One corpus entry: a complete, self-contained chaos plan plus the
/// provenance needed to understand why it is in the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// What bug this schedule once exposed (free text, for humans).
    pub description: String,
    /// The violation category the schedule produced when it was red (e.g.
    /// `"serializability"`), for cross-checking a future regression.
    pub category: String,
    /// The plan to replay. Must run green: a red replay is a regression.
    pub plan: ChaosPlan,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn faults_to_value(faults: &LinkFaults) -> Value {
    obj(vec![
        ("drop", Value::F64(faults.drop_probability)),
        ("duplicate", Value::F64(faults.duplicate_probability)),
        ("reorder", Value::F64(faults.reorder_probability)),
        ("corrupt", Value::F64(faults.corrupt_probability)),
        ("delay", Value::F64(faults.delay_probability)),
        ("extra_delay_us", Value::U64(faults.extra_delay.as_micros() as u64)),
    ])
}

fn point_name(point: InjectionPoint) -> &'static str {
    use InjectionPoint::*;
    match point {
        PartitionedStart => "PartitionedStart",
        MidPartitioned => "MidPartitioned",
        BeforeFirstFence => "BeforeFirstFence",
        SingleMasterStart => "SingleMasterStart",
        MidSingleMaster => "MidSingleMaster",
        BeforeSecondFence => "BeforeSecondFence",
        IterationEnd => "IterationEnd",
    }
}

fn recovery_fault_name(fault: RecoveryFault) -> &'static str {
    match fault {
        RecoveryFault::SourceCrash => "SourceCrash",
        RecoveryFault::TargetCrash => "TargetCrash",
        RecoveryFault::LinkCut => "LinkCut",
    }
}

fn op_to_value(op: &FaultOp) -> Value {
    match op {
        FaultOp::Crash(node) => {
            obj(vec![("op", Value::String("Crash".into())), ("node", Value::U64(*node as u64))])
        }
        FaultOp::Recover(node) => {
            obj(vec![("op", Value::String("Recover".into())), ("node", Value::U64(*node as u64))])
        }
        FaultOp::RecoverInterrupted(node, fault) => obj(vec![
            ("op", Value::String("RecoverInterrupted".into())),
            ("node", Value::U64(*node as u64)),
            ("fault", Value::String(recovery_fault_name(*fault).into())),
        ]),
        FaultOp::CutLink(a, b) => obj(vec![
            ("op", Value::String("CutLink".into())),
            ("a", Value::U64(*a as u64)),
            ("b", Value::U64(*b as u64)),
        ]),
        FaultOp::HealLink(a, b) => obj(vec![
            ("op", Value::String("HealLink".into())),
            ("a", Value::U64(*a as u64)),
            ("b", Value::U64(*b as u64)),
        ]),
        FaultOp::SetLinkFaults(from, to, faults) => obj(vec![
            ("op", Value::String("SetLinkFaults".into())),
            ("from", Value::U64(*from as u64)),
            ("to", Value::U64(*to as u64)),
            ("faults", faults_to_value(faults)),
        ]),
        FaultOp::SetDefaultFaults(faults) => obj(vec![
            ("op", Value::String("SetDefaultFaults".into())),
            ("faults", faults_to_value(faults)),
        ]),
        FaultOp::ClearFaults => obj(vec![("op", Value::String("ClearFaults".into()))]),
        FaultOp::Checkpoint => obj(vec![("op", Value::String("Checkpoint".into()))]),
        FaultOp::TruncateWal(node, bytes) => obj(vec![
            ("op", Value::String("TruncateWal".into())),
            ("node", Value::U64(*node as u64)),
            ("bytes", Value::U64(*bytes)),
        ]),
    }
}

fn config_to_value(config: &ClusterConfig) -> Value {
    obj(vec![
        ("num_nodes", Value::U64(config.num_nodes as u64)),
        ("full_replicas", Value::U64(config.full_replicas as u64)),
        ("workers_per_node", Value::U64(config.workers_per_node as u64)),
        ("partitions", Value::U64(config.partitions as u64)),
        ("iteration_us", Value::U64(config.iteration.as_micros() as u64)),
        (
            "replication_strategy",
            Value::String(
                match config.replication_strategy {
                    ReplicationStrategy::Value => "Value",
                    ReplicationStrategy::Operation => "Operation",
                    ReplicationStrategy::Hybrid => "Hybrid",
                }
                .into(),
            ),
        ),
        (
            "replication_mode",
            Value::String(
                match config.replication_mode {
                    ReplicationMode::Async => "Async",
                    ReplicationMode::Sync => "Sync",
                }
                .into(),
            ),
        ),
        ("replication_factor", Value::U64(config.replication_factor as u64)),
        ("network_latency_us", Value::U64(config.network_latency.as_micros() as u64)),
        ("disk_logging", Value::Bool(config.disk_logging)),
        ("seed", Value::U64(config.seed)),
    ])
}

fn workload_to_value(workload: &WorkloadSpec) -> Value {
    match workload {
        WorkloadSpec::Kv { rows_per_partition } => obj(vec![
            ("kind", Value::String("Kv".into())),
            ("rows_per_partition", Value::U64(*rows_per_partition)),
        ]),
        WorkloadSpec::Ycsb { rows_per_partition } => obj(vec![
            ("kind", Value::String("Ycsb".into())),
            ("rows_per_partition", Value::U64(*rows_per_partition)),
        ]),
    }
}

/// Serializes a corpus entry (a plan plus provenance) to pretty JSON.
pub fn plan_to_json(plan: &ChaosPlan, description: &str, category: &str) -> String {
    let ops: Vec<Value> = plan
        .schedule
        .ops()
        .iter()
        .map(|s| {
            let Value::Object(mut fields) = op_to_value(&s.op) else { unreachable!() };
            fields.insert(0, ("iteration".to_string(), Value::U64(s.iteration as u64)));
            fields.insert(1, ("point".to_string(), Value::String(point_name(s.point).into())));
            Value::Object(fields)
        })
        .collect();
    let root = obj(vec![
        ("format_version", Value::U64(CORPUS_FORMAT_VERSION as u64)),
        ("schedule_format", Value::U64(SCHEDULE_FORMAT_VERSION as u64)),
        ("description", Value::String(description.into())),
        ("category", Value::String(category.into())),
        ("seed", Value::U64(plan.seed)),
        ("label", Value::String(plan.label.clone())),
        ("config", config_to_value(&plan.config)),
        ("workload", workload_to_value(&plan.workload)),
        ("iterations", Value::U64(plan.iterations as u64)),
        ("partitioned_txns", Value::U64(plan.partitioned_txns)),
        ("single_master_txns", Value::U64(plan.single_master_txns)),
        ("expect_disk_recovery", Value::Bool(plan.expect_disk_recovery)),
        ("schedule", Value::Array(ops)),
    ]);
    let mut text = serde_json::to_string_pretty(&root).expect("corpus JSON is infallible");
    text.push('\n');
    text
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn get<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
    let Value::Object(fields) = value else {
        return Err(format!("expected an object while looking for \"{key}\""));
    };
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field \"{key}\""))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    match get(value, key)? {
        Value::U64(v) => Ok(*v),
        Value::I64(v) if *v >= 0 => Ok(*v as u64),
        other => Err(format!("field \"{key}\" must be an unsigned integer, got {other:?}")),
    }
}

fn get_f64(value: &Value, key: &str) -> Result<f64, String> {
    match get(value, key)? {
        Value::F64(v) => Ok(*v),
        Value::U64(v) => Ok(*v as f64),
        Value::I64(v) => Ok(*v as f64),
        other => Err(format!("field \"{key}\" must be a number, got {other:?}")),
    }
}

fn get_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    match get(value, key)? {
        Value::String(s) => Ok(s),
        other => Err(format!("field \"{key}\" must be a string, got {other:?}")),
    }
}

fn get_bool(value: &Value, key: &str) -> Result<bool, String> {
    match get(value, key)? {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("field \"{key}\" must be a boolean, got {other:?}")),
    }
}

fn faults_from_value(value: &Value) -> Result<LinkFaults, String> {
    Ok(LinkFaults {
        drop_probability: get_f64(value, "drop")?,
        duplicate_probability: get_f64(value, "duplicate")?,
        reorder_probability: get_f64(value, "reorder")?,
        corrupt_probability: get_f64(value, "corrupt")?,
        delay_probability: get_f64(value, "delay")?,
        extra_delay: Duration::from_micros(get_u64(value, "extra_delay_us")?),
    })
}

fn point_from_name(name: &str) -> Result<InjectionPoint, String> {
    use InjectionPoint::*;
    Ok(match name {
        "PartitionedStart" => PartitionedStart,
        "MidPartitioned" => MidPartitioned,
        "BeforeFirstFence" => BeforeFirstFence,
        "SingleMasterStart" => SingleMasterStart,
        "MidSingleMaster" => MidSingleMaster,
        "BeforeSecondFence" => BeforeSecondFence,
        "IterationEnd" => IterationEnd,
        other => return Err(format!("unknown injection point \"{other}\"")),
    })
}

fn op_from_value(value: &Value) -> Result<FaultOp, String> {
    let node = |v: &Value| -> Result<usize, String> { Ok(get_u64(v, "node")? as usize) };
    Ok(match get_str(value, "op")? {
        "Crash" => FaultOp::Crash(node(value)?),
        "Recover" => FaultOp::Recover(node(value)?),
        "RecoverInterrupted" => {
            let fault = match get_str(value, "fault")? {
                "SourceCrash" => RecoveryFault::SourceCrash,
                "TargetCrash" => RecoveryFault::TargetCrash,
                "LinkCut" => RecoveryFault::LinkCut,
                other => return Err(format!("unknown recovery fault \"{other}\"")),
            };
            FaultOp::RecoverInterrupted(node(value)?, fault)
        }
        "CutLink" => FaultOp::CutLink(get_u64(value, "a")? as usize, get_u64(value, "b")? as usize),
        "HealLink" => {
            FaultOp::HealLink(get_u64(value, "a")? as usize, get_u64(value, "b")? as usize)
        }
        "SetLinkFaults" => FaultOp::SetLinkFaults(
            get_u64(value, "from")? as usize,
            get_u64(value, "to")? as usize,
            faults_from_value(get(value, "faults")?)?,
        ),
        "SetDefaultFaults" => FaultOp::SetDefaultFaults(faults_from_value(get(value, "faults")?)?),
        "ClearFaults" => FaultOp::ClearFaults,
        "Checkpoint" => FaultOp::Checkpoint,
        "TruncateWal" => FaultOp::TruncateWal(node(value)?, get_u64(value, "bytes")?),
        other => return Err(format!("unknown fault op \"{other}\"")),
    })
}

fn config_from_value(value: &Value) -> Result<ClusterConfig, String> {
    ClusterConfig::builder()
        .nodes(get_u64(value, "num_nodes")? as usize)
        .full_replicas(get_u64(value, "full_replicas")? as usize)
        .workers_per_node(get_u64(value, "workers_per_node")? as usize)
        .partitions(get_u64(value, "partitions")? as usize)
        .iteration(Duration::from_micros(get_u64(value, "iteration_us")?))
        .replication_strategy(match get_str(value, "replication_strategy")? {
            "Value" => ReplicationStrategy::Value,
            "Operation" => ReplicationStrategy::Operation,
            "Hybrid" => ReplicationStrategy::Hybrid,
            other => return Err(format!("unknown replication strategy \"{other}\"")),
        })
        .replication_mode(match get_str(value, "replication_mode")? {
            "Async" => ReplicationMode::Async,
            "Sync" => ReplicationMode::Sync,
            other => return Err(format!("unknown replication mode \"{other}\"")),
        })
        .replication_factor(get_u64(value, "replication_factor")? as usize)
        .network_latency(Duration::from_micros(get_u64(value, "network_latency_us")?))
        .disk_logging(get_bool(value, "disk_logging")?)
        .seed(get_u64(value, "seed")?)
        .build()
        .map_err(|e| format!("corpus cluster config is invalid: {e}"))
}

/// Parses one corpus entry. Stale or future format versions are rejected
/// with an error naming both versions and the fix — never a panic.
pub fn plan_from_json(text: &str) -> Result<CorpusEntry, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let format_version = get_u64(&root, "format_version")? as u32;
    if format_version != CORPUS_FORMAT_VERSION {
        return Err(format!(
            "corpus format version {format_version} is not replayable by this binary (expects \
             {CORPUS_FORMAT_VERSION}); regenerate the entry by re-shrinking its seed with \
             `star-chaos --corpus-out`"
        ));
    }
    let schedule_format = get_u64(&root, "schedule_format")? as u32;
    if schedule_format != SCHEDULE_FORMAT_VERSION {
        return Err(format!(
            "schedule format version {schedule_format} is not replayable by this binary \
             (expects {SCHEDULE_FORMAT_VERSION}); regenerate the entry by re-shrinking its seed \
             with `star-chaos --corpus-out`"
        ));
    }
    let mut schedule = FaultSchedule::new();
    let Value::Array(ops) = get(&root, "schedule")? else {
        return Err("field \"schedule\" must be an array".into());
    };
    for op in ops {
        schedule.push(
            get_u64(op, "iteration")? as usize,
            point_from_name(get_str(op, "point")?)?,
            op_from_value(op)?,
        );
    }
    let workload_value = get(&root, "workload")?;
    let workload = match get_str(workload_value, "kind")? {
        "Kv" => {
            WorkloadSpec::Kv { rows_per_partition: get_u64(workload_value, "rows_per_partition")? }
        }
        "Ycsb" => WorkloadSpec::Ycsb {
            rows_per_partition: get_u64(workload_value, "rows_per_partition")?,
        },
        other => return Err(format!("unknown workload kind \"{other}\"")),
    };
    Ok(CorpusEntry {
        description: get_str(&root, "description")?.to_string(),
        category: get_str(&root, "category")?.to_string(),
        plan: ChaosPlan {
            seed: get_u64(&root, "seed")?,
            label: get_str(&root, "label")?.to_string(),
            config: config_from_value(get(&root, "config")?)?,
            workload,
            iterations: get_u64(&root, "iterations")? as usize,
            partitioned_txns: get_u64(&root, "partitioned_txns")?,
            single_master_txns: get_u64(&root, "single_master_txns")?,
            schedule,
            expect_disk_recovery: get_bool(&root, "expect_disk_recovery")?,
        },
    })
}

/// Loads every `*.json` entry in `dir`, sorted by file name for a
/// deterministic replay order. Unreadable or stale entries are errors (the
/// corpus is a regression gate — skipping an entry silently would defeat
/// it).
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let entry =
            plan_from_json(&text).map_err(|e| format!("corpus entry {}: {e}", path.display()))?;
        entries.push((path, entry));
    }
    Ok(entries)
}

/// The committed regression entries under `tests/chaos_corpus/`: schedules
/// that once exposed (or guard against re-introducing) real bugs in this
/// repository. Each returns `(file_stem, description, once_red_category,
/// plan)`; the ignored `regenerate_committed_corpus` test below rewrites
/// the JSON files from this table after a format bump.
pub fn committed_entries() -> Vec<(&'static str, &'static str, &'static str, ChaosPlan)> {
    use crate::schedule::FaultSchedule;
    use star_common::ClusterConfig;

    let canonical = |seed: u64| {
        ClusterConfig::builder()
            .nodes(4)
            .full_replicas(1)
            .workers_per_node(1)
            .partitions(4)
            // Factor 3 pins the redundant partial-partial backups these
            // schedules were shrunk against (`crate::runner::canonical_config`).
            .replication_factor(3)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .seed(seed)
            .build()
            .expect("canonical corpus config is valid")
    };

    // PR 3's harness-caught recovery bug: a node that crashed
    // mid-partitioned-phase still had that (reverted) epoch's replication
    // batches queued in its inbox; recovery re-applied them and resurrected
    // discarded writes. The large keyspace keeps most keys from being
    // rewritten after recovery, so a resurrected write cannot hide behind a
    // newer version.
    let stale_inbox =
        ChaosPlan {
            seed: 41,
            label: "corpus-recovered-node-stale-inbox".into(),
            config: canonical(41),
            workload: WorkloadSpec::Kv { rows_per_partition: 4096 },
            iterations: 4,
            partitioned_txns: 12,
            single_master_txns: 16,
            schedule: FaultSchedule::new()
                .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
                .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(2)),
            expect_disk_recovery: false,
        };

    // PR 4's atomic-recovery guard: the only full replica and a partial die
    // together (Case 2); staggered recoveries must precheck all partitions
    // atomically — a partial copy from the old non-atomic path left the
    // node half-restored.
    let atomic_recovery = ChaosPlan {
        seed: 62,
        label: "corpus-master-and-partial-staggered-recovery".into(),
        config: canonical(62),
        workload: WorkloadSpec::Kv { rows_per_partition: 16 },
        iterations: 6,
        partitioned_txns: 24,
        single_master_txns: 32,
        schedule: FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(0))
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(2))
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(0)),
        expect_disk_recovery: false,
    };

    // The re-election + faulted-recovery interplay this PR's walk opened
    // up: the coordinator dies mid-epoch (master bounces 0 → 1
    // deterministically), a recovery of the old master is interrupted by a
    // crash of its copy source, and the cluster still converges once the
    // retries land.
    let reelection_config = ClusterConfig::builder()
        .nodes(5)
        .full_replicas(2)
        .workers_per_node(1)
        .partitions(4)
        // Factor 4 = two fulls + primary + partial backup, matching the
        // layout this schedule was recorded against (`crate::synth`).
        .replication_factor(4)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .seed(7)
        .build()
        .expect("re-election corpus config is valid");
    let reelection = ChaosPlan {
        seed: 7,
        label: "corpus-reelection-with-faulted-recovery".into(),
        config: reelection_config,
        workload: WorkloadSpec::Kv { rows_per_partition: 16 },
        iterations: 6,
        partitioned_txns: 24,
        single_master_txns: 32,
        schedule: FaultSchedule::new()
            .at(1, InjectionPoint::MidSingleMaster, FaultOp::Crash(0))
            .at(
                2,
                InjectionPoint::IterationEnd,
                FaultOp::RecoverInterrupted(0, RecoveryFault::SourceCrash),
            )
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(1))
            .at(4, InjectionPoint::IterationEnd, FaultOp::Recover(0)),
        expect_disk_recovery: false,
    };

    vec![
        (
            "recovered-node-stale-inbox",
            "PR 3 regression: recovery must discard replication batches queued while the node \
             was dead, or the first fence after rejoining resurrects reverted writes",
            "oracle",
            stale_inbox,
        ),
        (
            "master-and-partial-staggered-recovery",
            "PR 4 regression: recover_node must precheck every partition atomically; a failed \
             recovery leaves the node down and untouched, and the staggered retries converge",
            "replica consistency",
            atomic_recovery,
        ),
        (
            "reelection-with-faulted-recovery",
            "PR 5 guard: coordinator crash mid-epoch re-elects deterministically, and a \
             recovery aborted by a source crash stays retryable without divergence",
            "serializability",
            reelection,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_plan, PlantedBug, SynthOptions};

    #[test]
    fn plans_roundtrip_through_json() {
        // Synthesized plans cover the whole DSL over enough seeds (crashes,
        // faulted recoveries, link storms, fault retuning, checkpoints);
        // planted variants add corruption and WAL tearing.
        let mut plans: Vec<ChaosPlan> = (0..48u64).map(crate::synth::synth_plan_for_seed).collect();
        for planted in [PlantedBug::SilentLoss, PlantedBug::CorruptPayload, PlantedBug::TornWal] {
            let options = SynthOptions { planted: Some(planted) };
            plans.extend((0..16u64).map(|seed| synth_plan(seed, &options)));
        }
        for plan in plans {
            let text = plan_to_json(&plan, "roundtrip", "none");
            let entry =
                plan_from_json(&text).unwrap_or_else(|e| panic!("seed {}: {e}\n{text}", plan.seed));
            assert_eq!(entry.plan.schedule, plan.schedule, "seed {}", plan.seed);
            assert_eq!(entry.plan.config, plan.config, "seed {}", plan.seed);
            assert_eq!(entry.plan.label, plan.label);
            assert_eq!(entry.plan.iterations, plan.iterations);
            assert_eq!(entry.plan.partitioned_txns, plan.partitioned_txns);
            assert_eq!(entry.plan.single_master_txns, plan.single_master_txns);
            assert_eq!(entry.plan.expect_disk_recovery, plan.expect_disk_recovery);
            assert_eq!(entry.description, "roundtrip");
        }
    }

    #[test]
    fn stale_versions_are_rejected_with_a_clear_error() {
        let plan = crate::plan_for_seed(0);
        let good = plan_to_json(&plan, "d", "c");
        let stale = good.replacen(
            &format!("\"format_version\": {CORPUS_FORMAT_VERSION}"),
            "\"format_version\": 0",
            1,
        );
        let err = plan_from_json(&stale).unwrap_err();
        assert!(err.contains("format version 0"), "{err}");
        assert!(err.contains("regenerate"), "the error must say how to fix it: {err}");

        let stale_schedule = good.replacen(
            &format!("\"schedule_format\": {SCHEDULE_FORMAT_VERSION}"),
            "\"schedule_format\": 999",
            1,
        );
        let err = plan_from_json(&stale_schedule).unwrap_err();
        assert!(err.contains("schedule format version 999"), "{err}");

        // Garbage is an error, not a panic.
        assert!(plan_from_json("{").is_err());
        assert!(plan_from_json("{}").is_err());
    }

    fn committed_corpus_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos_corpus")
    }

    /// Rewrites `tests/chaos_corpus/` from [`committed_entries`]. Run after
    /// a format bump:
    /// `cargo test -p star-chaos --lib regenerate_committed_corpus -- --ignored`
    #[test]
    #[ignore = "maintenance tool: rewrites tests/chaos_corpus from the generator table"]
    fn regenerate_committed_corpus() {
        let dir = committed_corpus_dir();
        std::fs::create_dir_all(&dir).unwrap();
        for (stem, description, category, plan) in committed_entries() {
            let path = dir.join(format!("{stem}.json"));
            std::fs::write(&path, plan_to_json(&plan, description, category)).unwrap();
            println!("wrote {}", path.display());
        }
    }

    #[test]
    fn committed_corpus_is_current_and_replays_green() {
        // The committed JSON must match the generator table byte for byte
        // (a format bump without regeneration fails here with the fix
        // command), and every entry must replay green — each schedule once
        // exposed a real bug, so a red replay is a regression of that fix.
        let entries = load_corpus(&committed_corpus_dir()).expect("corpus must load");
        let mut expected = committed_entries();
        // `load_corpus` replays in file-name order.
        expected.sort_by_key(|(stem, ..)| *stem);
        assert_eq!(
            entries.len(),
            expected.len(),
            "tests/chaos_corpus is out of sync; regenerate with `cargo test -p star-chaos \
             --lib regenerate_committed_corpus -- --ignored`"
        );
        for ((path, entry), (stem, description, category, plan)) in entries.iter().zip(&expected) {
            assert_eq!(
                path.file_stem().and_then(|s| s.to_str()),
                Some(*stem),
                "corpus file order diverged from the generator table"
            );
            let regenerated = plan_to_json(plan, description, category);
            let on_disk = std::fs::read_to_string(path).unwrap();
            assert_eq!(
                on_disk, regenerated,
                "{stem}.json is stale; regenerate with `cargo test -p star-chaos --lib \
                 regenerate_committed_corpus -- --ignored`"
            );
            let outcome = crate::run_plan(&entry.plan).unwrap();
            assert!(
                outcome.passed(),
                "corpus entry {stem} regressed ({}): {:?}",
                entry.description,
                outcome.violations
            );
            assert!(outcome.committed > 0, "corpus entry {stem} committed nothing");
        }
    }

    #[test]
    fn corpus_directory_loads_in_name_order() {
        let dir = std::env::temp_dir().join(format!("star-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let b = crate::plan_for_seed(1);
        let a = crate::plan_for_seed(2);
        std::fs::write(dir.join("b.json"), plan_to_json(&b, "second", "c")).unwrap();
        std::fs::write(dir.join("a.json"), plan_to_json(&a, "first", "c")).unwrap();
        std::fs::write(dir.join("ignore.txt"), "not a corpus entry").unwrap();
        let entries = load_corpus(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.description, "first");
        assert_eq!(entries[1].1.description, "second");
        // One stale entry poisons the load — the corpus is a gate.
        std::fs::write(dir.join("c.json"), "{\"format_version\": 0}").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.contains("c.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
