//! Seed → scenario → plan: the deterministic sweep driver.
//!
//! Every seed maps to exactly one [`ChaosPlan`]: the scenario family is
//! `seed % 4` (so any four consecutive seeds cover all four Figure-7
//! failure cases end-to-end) and every free parameter — crash iteration,
//! victim node, recovery point, fault probabilities — is drawn from an RNG
//! seeded by the seed itself. `star-chaos --seed N` therefore reproduces a
//! run exactly: same schedule, same history, same checker verdict.
//!
//! Fault envelopes are chosen to respect what the protocol actually
//! guarantees (see `crates/net/src/fault.rs`): delays and duplicates are
//! injected freely; silent loss (drops, cut links) is confined to epochs
//! that end in a failure detection, whose epoch revert discards every
//! in-flight message; reordering is only enabled together with value
//! replication, where the Thomas write rule makes application order
//! irrelevant. The `driver` unit tests include the negative control — an
//! *unsafe* loss schedule the checker must (and does) flag.

use crate::driver::{run_plan, ChaosOutcome, ChaosPlan, WorkloadSpec};
use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::{ClusterConfig, ReplicationStrategy, Result};
use star_core::FailureCase;
use star_net::LinkFaults;
use std::time::Duration;

/// The four scenario families, one per Figure-7 failure case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Case 1: a partial replica crashes mid-partitioned-phase (with lossy
    /// outgoing links while it dies), later recovers by catch-up.
    PartialCrashMidPartitioned,
    /// Case 2: the only full replica crashes mid-single-master-phase; the
    /// cluster degrades to partitioned-only execution until it recovers.
    MasterCrashMidSingleMaster,
    /// Case 3: the sole partial holder of a partition crashes right at the
    /// phase-switch fence; its partitions re-master onto the full replica.
    /// Runs under value replication with reorder faults enabled.
    CoverageLossAtFence,
    /// Case 4: a checkpoint is captured, then every replica of a partition
    /// (including the full replica) crashes; the run ends unavailable and
    /// recovers from checkpoint + WAL.
    TotalLossDuringCheckpoint,
}

impl ScenarioKind {
    /// The scenario family for a seed (`seed % 4`).
    pub fn for_seed(seed: u64) -> Self {
        match seed % 4 {
            0 => ScenarioKind::PartialCrashMidPartitioned,
            1 => ScenarioKind::MasterCrashMidSingleMaster,
            2 => ScenarioKind::CoverageLossAtFence,
            _ => ScenarioKind::TotalLossDuringCheckpoint,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::PartialCrashMidPartitioned => "case1-partial-crash-mid-partitioned",
            ScenarioKind::MasterCrashMidSingleMaster => "case2-master-crash-mid-single-master",
            ScenarioKind::CoverageLossAtFence => "case3-coverage-loss-at-fence",
            ScenarioKind::TotalLossDuringCheckpoint => "case4-total-loss-during-checkpoint",
        }
    }

    /// The failure case this scenario is built to reach.
    pub fn expected_case(self) -> FailureCase {
        match self {
            ScenarioKind::PartialCrashMidPartitioned => FailureCase::FullAndPartialRemain,
            ScenarioKind::MasterCrashMidSingleMaster => FailureCase::OnlyPartialRemains,
            ScenarioKind::CoverageLossAtFence => FailureCase::OnlyFullRemains,
            ScenarioKind::TotalLossDuringCheckpoint => FailureCase::NothingRemains,
        }
    }
}

/// The canonical chaos cluster: 4 nodes, 1 full replica (node 0), 4
/// partitions, one worker per node, replication factor 3 (every partition
/// keeps a partial-partial backup besides the full copy — the redundancy
/// the Figure-7 families lean on). With this layout the partial holders
/// are `p0:{1} p1:{1,2} p2:{2,3} p3:{1,3}`, so node 1 is the sole partial
/// holder of partition 0 (its loss is Case 3) while nodes 2 and 3 are
/// redundant (their loss is Case 1). Shared by the guided family
/// generators and the schedule synthesizer (`crate::synth`).
pub fn canonical_config(seed: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(4)
        .full_replicas(1)
        .workers_per_node(1)
        .partitions(4)
        .replication_factor(3)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .seed(seed)
        .build()
        .expect("canonical chaos config is valid")
}

/// Builds the deterministic plan for one seed: the scenario family is
/// `seed % 4` and the free parameters are drawn from the seed's RNG.
pub fn plan_for_seed(seed: u64) -> ChaosPlan {
    family_plan(ScenarioKind::for_seed(seed), seed)
}

/// Builds the guided plan of one Figure-7 scenario family, with every free
/// parameter — crash iteration, victim node, recovery point, fault
/// probabilities — drawn from `seed`'s RNG. `plan_for_seed` picks the
/// family round-robin; the synthesizer keeps calling these generators for
/// half its seed space so Figure-7 case coverage never regresses.
pub fn family_plan(kind: ScenarioKind, seed: u64) -> ChaosPlan {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5EED);

    let mut config = canonical_config(seed);
    let iterations = 6;
    let mut schedule = FaultSchedule::new();

    // Benign background faults, always protocol-safe: delivery delays and
    // duplicates (replica application is TID-gated, so replays are no-ops).
    let benign = LinkFaults {
        delay_probability: 0.2 + rng.gen::<f64>() * 0.3,
        extra_delay: Duration::from_micros(rng.gen_range(10..80)),
        duplicate_probability: 0.1 + rng.gen::<f64>() * 0.2,
        ..LinkFaults::none()
    };
    schedule.push(0, InjectionPoint::PartitionedStart, FaultOp::SetDefaultFaults(benign));

    let mut workload = WorkloadSpec::Kv { rows_per_partition: 16 };
    let mut expect_disk_recovery = false;

    match kind {
        ScenarioKind::PartialCrashMidPartitioned => {
            let crash_iter = rng.gen_range(1..3);
            let victim = if rng.gen::<bool>() { 2 } else { 3 };
            let recover_iter = rng.gen_range(crash_iter + 1..iterations - 1);
            // The dying node's outgoing replication is lossy during the
            // epoch its crash dooms — the fence detecting the crash reverts
            // that epoch, forgiving the loss.
            schedule.push(
                crash_iter,
                InjectionPoint::PartitionedStart,
                FaultOp::SetLinkFaults(victim, 0, LinkFaults::dropping(0.5)),
            );
            schedule.push(crash_iter, InjectionPoint::MidPartitioned, FaultOp::Crash(victim));
            schedule.push(
                crash_iter,
                InjectionPoint::BeforeFirstFence,
                FaultOp::SetLinkFaults(victim, 0, LinkFaults::none()),
            );
            schedule.push(recover_iter, InjectionPoint::IterationEnd, FaultOp::Recover(victim));
        }
        ScenarioKind::MasterCrashMidSingleMaster => {
            let crash_iter = rng.gen_range(1..3);
            let recover_iter = rng.gen_range(crash_iter + 1..iterations - 1);
            // The master's outgoing links go lossy in the epoch its crash
            // dooms, then it crashes mid-single-master-phase.
            let lossy_target = rng.gen_range(1..4);
            schedule.push(
                crash_iter,
                InjectionPoint::SingleMasterStart,
                FaultOp::SetLinkFaults(0, lossy_target, LinkFaults::dropping(0.6)),
            );
            schedule.push(crash_iter, InjectionPoint::MidSingleMaster, FaultOp::Crash(0));
            schedule.push(
                crash_iter,
                InjectionPoint::BeforeSecondFence,
                FaultOp::SetLinkFaults(0, lossy_target, LinkFaults::none()),
            );
            schedule.push(recover_iter, InjectionPoint::IterationEnd, FaultOp::Recover(0));
        }
        ScenarioKind::CoverageLossAtFence => {
            // Value replication tolerates reordering (Thomas write rule), so
            // this family also shakes message order; half the seeds drive
            // YCSB instead of the KV workload.
            config.replication_strategy = ReplicationStrategy::Value;
            let reorder = LinkFaults { reorder_probability: 0.2, ..benign };
            schedule.push(0, InjectionPoint::PartitionedStart, FaultOp::SetDefaultFaults(reorder));
            if rng.gen::<bool>() {
                workload = WorkloadSpec::Ycsb { rows_per_partition: 24 };
            }
            let crash_iter = rng.gen_range(1..3);
            let recover_iter = rng.gen_range(crash_iter + 1..iterations - 1);
            // Node 1 is the sole partial holder of partition 0: its loss
            // breaks partial coverage and re-masters onto the full replica.
            schedule.push(crash_iter, InjectionPoint::BeforeFirstFence, FaultOp::Crash(1));
            schedule.push(recover_iter, InjectionPoint::IterationEnd, FaultOp::Recover(1));
        }
        ScenarioKind::TotalLossDuringCheckpoint => {
            config.disk_logging = true;
            expect_disk_recovery = true;
            let crash_iter = rng.gen_range(2..4);
            // Checkpoint at the start of the doomed iteration, crash the
            // full replica and the sole partial holder of partition 0 while
            // the checkpointed epoch's successor is in flight.
            schedule.push(crash_iter, InjectionPoint::PartitionedStart, FaultOp::Checkpoint);
            schedule.push(crash_iter, InjectionPoint::MidPartitioned, FaultOp::Crash(0));
            schedule.push(crash_iter, InjectionPoint::MidPartitioned, FaultOp::Crash(1));
        }
    }

    ChaosPlan {
        seed,
        label: kind.label().to_string(),
        config,
        workload,
        iterations,
        partitioned_txns: 24,
        single_master_txns: 32,
        schedule,
        expect_disk_recovery,
    }
}

/// Runs the plan for one seed.
pub fn run_seed(seed: u64) -> Result<ChaosOutcome> {
    run_plan(&plan_for_seed(seed))
}

/// Result of a seed sweep.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Every outcome, in seed order (stops early under fail-fast).
    pub outcomes: Vec<ChaosOutcome>,
}

impl SweepSummary {
    /// The distinct failure cases observed across the sweep.
    pub fn cases_covered(&self) -> Vec<FailureCase> {
        let mut cases = Vec::new();
        for outcome in &self.outcomes {
            for case in &outcome.cases_seen {
                if !cases.contains(case) {
                    cases.push(*case);
                }
            }
        }
        cases
    }

    /// The outcomes that found a violation.
    pub fn failures(&self) -> Vec<&ChaosOutcome> {
        self.outcomes.iter().filter(|o| !o.passed()).collect()
    }

    /// Whether every Figure-7 case beyond `NoFailure` was reached.
    pub fn covers_all_failure_cases(&self) -> bool {
        let cases = self.cases_covered();
        [
            FailureCase::FullAndPartialRemain,
            FailureCase::OnlyPartialRemains,
            FailureCase::OnlyFullRemains,
            FailureCase::NothingRemains,
        ]
        .iter()
        .all(|c| cases.contains(c))
    }
}

/// Sweeps `seeds`, optionally stopping at the first failure.
pub fn sweep(seeds: impl IntoIterator<Item = u64>, fail_fast: bool) -> Result<SweepSummary> {
    let mut summary = SweepSummary::default();
    for seed in seeds {
        let outcome = run_seed(seed)?;
        let failed = !outcome.passed();
        summary.outcomes.push(outcome);
        if failed && fail_fast {
            break;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..8 {
            let a = plan_for_seed(seed);
            let b = plan_for_seed(seed);
            assert_eq!(a.schedule, b.schedule, "seed {seed}");
            assert_eq!(a.label, b.label);
            assert_eq!(a.config.seed, seed);
        }
        assert_ne!(plan_for_seed(0).schedule, plan_for_seed(4).schedule, "rng params differ");
    }

    #[test]
    fn scenario_families_round_robin() {
        assert_eq!(ScenarioKind::for_seed(0), ScenarioKind::PartialCrashMidPartitioned);
        assert_eq!(ScenarioKind::for_seed(1), ScenarioKind::MasterCrashMidSingleMaster);
        assert_eq!(ScenarioKind::for_seed(2), ScenarioKind::CoverageLossAtFence);
        assert_eq!(ScenarioKind::for_seed(3), ScenarioKind::TotalLossDuringCheckpoint);
        assert_eq!(ScenarioKind::for_seed(7), ScenarioKind::TotalLossDuringCheckpoint);
    }

    #[test]
    fn schedules_fit_inside_the_planned_iterations() {
        for seed in 0..16 {
            let plan = plan_for_seed(seed);
            assert!(
                plan.schedule.iterations_required() <= plan.iterations,
                "seed {seed}: schedule runs past the planned iterations"
            );
        }
    }
}
