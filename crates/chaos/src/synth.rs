//! Schedule synthesis: biased random walks over the fault DSL.
//!
//! The seeded runner's four scenario templates only ever explore four
//! points of the schedule space. This module generates *arbitrary*
//! well-formed multi-fault schedules from a single seed — overlapping
//! crashes of several nodes with interleaved recoveries, cut-then-heal link
//! storms inside doomed epochs, probabilistic link faults retuned
//! mid-phase, faults stacked across consecutive iterations, and planned
//! total-loss events that exercise the checkpoint + WAL recovery path —
//! while keeping the four Figure-7 families as guided generators so case
//! coverage never regresses:
//!
//! * seeds with `seed % 8 < 4` run the guided generator of family
//!   `seed % 8` ([`crate::runner::family_plan`]), so any 8 consecutive
//!   seeds still reach all four Figure-7 failure cases;
//! * the remaining seeds run the biased random walk.
//!
//! ## Safety envelope
//!
//! A synthesized schedule must never be an *expected* violation — a red
//! seed has to mean a real protocol bug. The walk therefore only emits
//! faults the protocol claims to survive:
//!
//! * crashes are always safe (the next fence detects them and reverts the
//!   in-flight epoch);
//! * silent loss (drop faults, cut links) is confined to the epoch a crash
//!   dooms: the garnish is armed at the doomed epoch's first injection
//!   point and disarmed immediately before the fence that reverts it;
//! * delays and duplicates are safe anywhere; reordering is only enabled
//!   when the walk picked value replication (Thomas write rule);
//! * a `Recover` is only scheduled at an `IterationEnd` at or after the
//!   crash's iteration (detection has happened by then) and only when
//!   every partition the node holds still has another healthy replica —
//!   the same check [`star_core::StarEngine::can_recover`] performs;
//! * the walk maintains the *coverage invariant*: unless it deliberately
//!   plans a total loss, every partition keeps at least one healthy
//!   holder, so the cluster never wedges in an unrecoverable state by
//!   accident. A planned total loss enables disk logging and captures a
//!   checkpoint (while the full replica is still healthy) first, so the
//!   driver can verify Case-4 disk recovery.
//!
//! [`SynthOptions::inject_unsafe_loss`] deliberately breaks the envelope —
//! a cut-then-heal with no crash inside a committed epoch — to prove the
//! sweep finds planted bugs and the shrinker minimizes them (see
//! `star-chaos --synth --inject-bug`).

use crate::driver::{ChaosPlan, WorkloadSpec};
use crate::runner::{canonical_config, family_plan, ScenarioKind};
use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::{ClusterConfig, NodeId, ReplicationStrategy};
use star_net::LinkFaults;
use std::time::Duration;

/// Options for the synthesizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthOptions {
    /// Plant a checker-visible bug: one cut-then-heal of a replication link
    /// inside an epoch that commits (no crash to forgive the loss). Used to
    /// validate that the sweep catches planted bugs and that the shrinker
    /// reduces them to a minimal schedule.
    pub inject_unsafe_loss: bool,
}

/// The injection points at which a crash may fire (everything before the
/// iteration's last fence, so detection always happens within the same
/// iteration and a recovery at `IterationEnd` is well-formed).
const CRASH_POINTS: [InjectionPoint; 6] = [
    InjectionPoint::PartitionedStart,
    InjectionPoint::MidPartitioned,
    InjectionPoint::BeforeFirstFence,
    InjectionPoint::SingleMasterStart,
    InjectionPoint::MidSingleMaster,
    InjectionPoint::BeforeSecondFence,
];

/// The epoch window a crash at `point` dooms: silent loss is safe between
/// the returned start and end points because the fence closing that epoch
/// reverts it.
fn doomed_epoch_window(point: InjectionPoint) -> (InjectionPoint, InjectionPoint) {
    use InjectionPoint::*;
    match point {
        PartitionedStart | MidPartitioned | BeforeFirstFence => {
            (PartitionedStart, BeforeFirstFence)
        }
        _ => (SingleMasterStart, BeforeSecondFence),
    }
}

fn benign_faults(rng: &mut StdRng, reorder: bool) -> LinkFaults {
    LinkFaults {
        delay_probability: 0.1 + rng.gen::<f64>() * 0.4,
        extra_delay: Duration::from_micros(rng.gen_range(10..80)),
        duplicate_probability: 0.05 + rng.gen::<f64>() * 0.25,
        reorder_probability: if reorder { rng.gen::<f64>() * 0.3 } else { 0.0 },
        ..LinkFaults::none()
    }
}

/// Walk state: who is currently crashed, per the schedule built so far.
struct WalkState {
    config: ClusterConfig,
    crashed: Vec<bool>,
}

impl WalkState {
    fn new(config: &ClusterConfig) -> Self {
        WalkState { config: config.clone(), crashed: vec![false; config.num_nodes] }
    }

    fn healthy(&self) -> Vec<NodeId> {
        (0..self.config.num_nodes).filter(|&n| !self.crashed[n]).collect()
    }

    /// The coverage invariant: with `extra_victim` also crashed, does every
    /// partition still have a healthy holder?
    fn covers_all_partitions_without(&self, extra_victim: NodeId) -> bool {
        (0..self.config.partitions).all(|p| {
            (0..self.config.num_nodes).any(|n| {
                n != extra_victim && !self.crashed[n] && self.config.node_stores_partition(n, p)
            })
        })
    }

    /// Whether `node` could be recovered right now: every partition it
    /// holds has another healthy holder (mirrors `StarEngine::can_recover`).
    fn recovery_feasible(&self, node: NodeId) -> bool {
        (0..self.config.partitions).filter(|&p| self.config.node_stores_partition(node, p)).all(
            |p| {
                (0..self.config.num_nodes).any(|n| {
                    n != node && !self.crashed[n] && self.config.node_stores_partition(n, p)
                })
            },
        )
    }
}

/// One crash plus its optional silent-loss garnish, confined to the doomed
/// epoch's window. `window_cuts` remembers which unordered link pairs are
/// already cut in which `(iteration, window)` so two victims (or one storm)
/// never double-cut the same link.
fn emit_crash(
    schedule: &mut FaultSchedule,
    rng: &mut StdRng,
    state: &mut WalkState,
    window_cuts: &mut Vec<(usize, InjectionPoint, NodeId, NodeId)>,
    iteration: usize,
    victim: NodeId,
) {
    let point = CRASH_POINTS[rng.gen_range(0..CRASH_POINTS.len())];
    let (window_start, window_end) = doomed_epoch_window(point);
    if rng.gen_bool(0.6) {
        // Cut-then-heal link storm / lossy links while the node dies. The
        // loss is forgiven because the epoch it lands in is reverted by the
        // fence that detects this crash.
        let storm_links = rng.gen_range(1..=2);
        for _ in 0..storm_links {
            let mut peer = rng.gen_range(0..state.config.num_nodes - 1);
            if peer >= victim {
                peer += 1;
            }
            if rng.gen_bool(0.5) {
                let pair = (iteration, window_start, victim.min(peer), victim.max(peer));
                if window_cuts.contains(&pair) {
                    continue;
                }
                window_cuts.push(pair);
                schedule.push(iteration, window_start, FaultOp::CutLink(victim, peer));
                schedule.push(iteration, window_end, FaultOp::HealLink(victim, peer));
            } else {
                let (from, to) = if rng.gen_bool(0.5) { (victim, peer) } else { (peer, victim) };
                let drops = LinkFaults::dropping(0.3 + rng.gen::<f64>() * 0.6);
                schedule.push(iteration, window_start, FaultOp::SetLinkFaults(from, to, drops));
                schedule.push(
                    iteration,
                    window_end,
                    FaultOp::SetLinkFaults(from, to, LinkFaults::none()),
                );
            }
        }
    }
    schedule.push(iteration, point, FaultOp::Crash(victim));
    state.crashed[victim] = true;
}

/// Builds a synthesized plan for one seed (see the module docs for the
/// seed-space split and the safety envelope).
pub fn synth_plan_for_seed(seed: u64) -> ChaosPlan {
    synth_plan(seed, &SynthOptions::default())
}

/// Builds a synthesized plan for one seed with explicit options.
pub fn synth_plan(seed: u64, options: &SynthOptions) -> ChaosPlan {
    if seed % 8 < 4 {
        // Guided generators: the four Figure-7 families keep appearing
        // throughout the synthesized seed space, so any 100-seed window
        // still covers every failure case end-to-end.
        return family_plan(ScenarioKind::for_seed(seed), seed);
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE);
    let mut config = canonical_config(seed);
    let iterations = rng.gen_range(4..=7usize);
    let mut schedule = FaultSchedule::new();
    let mut state = WalkState::new(&config);
    let mut label = String::from("synth-walk");

    // Replication strategy: value replication tolerates reordering, so the
    // walk may only enable reorder faults when it picks it.
    let value_replication = rng.gen_bool(0.4);
    if value_replication {
        config.replication_strategy = ReplicationStrategy::Value;
        label.push_str("+value-repl");
    }
    let workload = if rng.gen_bool(0.3) {
        WorkloadSpec::Ycsb { rows_per_partition: 24 }
    } else {
        WorkloadSpec::Kv { rows_per_partition: 16 }
    };

    // A planned total loss kills every replica of partition 0 (nodes 0 and
    // 1). Disk logging is enabled and a checkpoint captured first, so the
    // run ends unavailable and the driver verifies recovery from disk.
    let total_loss = rng.gen_bool(0.2);
    let doom_iteration =
        if total_loss { rng.gen_range(1..iterations.max(2) - 1).max(1) } else { 0 };
    if total_loss {
        config.disk_logging = true;
        label.push_str("+total-loss");
    }

    schedule.push(
        0,
        InjectionPoint::PartitionedStart,
        FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
    );

    // Which nodes the pre-doom storms may crash: with a planned total loss,
    // nodes 0 and 1 are kept healthy until the doom iteration (the
    // checkpoint needs a healthy full replica, the doom needs both).
    let mut healthy_per_iteration: Vec<Vec<bool>> = Vec::with_capacity(iterations);
    let mut crash_iterations: Vec<bool> = vec![false; iterations];
    let mut window_cuts: Vec<(usize, InjectionPoint, NodeId, NodeId)> = Vec::new();

    // `iteration` drives schedule pushes, RNG draws and the doom gate, not
    // just the `crash_iterations` index clippy keys on.
    #[allow(clippy::needless_range_loop)]
    for iteration in 0..iterations {
        healthy_per_iteration.push(state.crashed.iter().map(|c| !c).collect());

        if total_loss && iteration == doom_iteration {
            // Checkpoint while the full replica is still healthy, then kill
            // every remaining holder of partition 0 (staggered across the
            // two phases half the time, for Case-3-then-Case-4 coverage).
            schedule.push(iteration, InjectionPoint::PartitionedStart, FaultOp::Checkpoint);
            let stagger = rng.gen_bool(0.5);
            let first_point = InjectionPoint::MidPartitioned;
            let second_point = if stagger {
                InjectionPoint::MidSingleMaster
            } else {
                InjectionPoint::MidPartitioned
            };
            if !state.crashed[1] {
                schedule.push(iteration, first_point, FaultOp::Crash(1));
                state.crashed[1] = true;
            }
            schedule.push(iteration, second_point, FaultOp::Crash(0));
            state.crashed[0] = true;
            crash_iterations[iteration] = true;
            // The cluster is unavailable from here on; the remaining
            // iterations run idle fences, which the driver tolerates.
            continue;
        }
        if total_loss && iteration > doom_iteration {
            continue;
        }

        // Occasionally retune the background faults mid-phase.
        if rng.gen_bool(0.3) {
            let points = [
                InjectionPoint::MidPartitioned,
                InjectionPoint::SingleMasterStart,
                InjectionPoint::MidSingleMaster,
            ];
            schedule.push(
                iteration,
                points[rng.gen_range(0..points.len())],
                FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
            );
        }

        // Crash storm: up to two overlapping victims per iteration, chosen
        // so the coverage invariant survives (and, in total-loss mode, so
        // nodes 0 and 1 stay up until the doom iteration).
        if rng.gen_bool(0.5) {
            let storm_size = if rng.gen_bool(0.3) { 2 } else { 1 };
            for _ in 0..storm_size {
                let candidates: Vec<NodeId> = state
                    .healthy()
                    .into_iter()
                    .filter(|&v| !(total_loss && v <= 1))
                    .filter(|&v| state.covers_all_partitions_without(v))
                    .filter(|&v| v != 0 || rng.gen_bool(0.4))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                emit_crash(
                    &mut schedule,
                    &mut rng,
                    &mut state,
                    &mut window_cuts,
                    iteration,
                    victim,
                );
                crash_iterations[iteration] = true;
            }
        }

        // Interleaved recoveries: each crashed node may rejoin at this
        // iteration's end if a memory source exists for all its partitions.
        // The second-to-last iteration recovers aggressively so most runs
        // end with a fully healthy, fully verifiable cluster.
        let force = iteration + 2 >= iterations;
        for node in 0..state.config.num_nodes {
            if state.crashed[node] && (force || rng.gen_bool(0.5)) && state.recovery_feasible(node)
            {
                schedule.push(iteration, InjectionPoint::IterationEnd, FaultOp::Recover(node));
                state.crashed[node] = false;
            }
        }

        // Occasionally wipe the fault configuration and re-arm it at the
        // next iteration (all cut links are healed within their doomed
        // epoch, so this never un-cuts anything).
        if rng.gen_bool(0.15) && iteration + 1 < iterations {
            schedule.push(iteration, InjectionPoint::IterationEnd, FaultOp::ClearFaults);
            schedule.push(
                iteration + 1,
                InjectionPoint::PartitionedStart,
                FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
            );
        }
    }

    if options.inject_unsafe_loss {
        // Plant the bug inside an epoch that commits: an iteration with no
        // crash where nodes 0 and 1 were both healthy. The loss is silent
        // and unforgiven, so the checker (or the replica comparison) must
        // catch it.
        let target = (0..iterations).find(|&i| {
            !crash_iterations[i]
                && healthy_per_iteration.get(i).map(|h| h[0] && h[1]).unwrap_or(false)
                && !(total_loss && i >= doom_iteration)
        });
        if let Some(iteration) = target {
            schedule.push(iteration, InjectionPoint::PartitionedStart, FaultOp::CutLink(1, 0));
            schedule.push(iteration, InjectionPoint::BeforeFirstFence, FaultOp::HealLink(1, 0));
            label.push_str("+injected-loss");
        }
    }

    ChaosPlan {
        seed,
        label,
        config,
        workload,
        iterations,
        partitioned_txns: 24,
        single_master_txns: 32,
        schedule,
        expect_disk_recovery: total_loss,
    }
}

/// Runs the synthesized plan for one seed.
pub fn run_synth_seed(seed: u64) -> star_common::Result<crate::driver::ChaosOutcome> {
    crate::driver::run_plan(&synth_plan_for_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_plan;
    use crate::runner::SweepSummary;
    use star_core::FailureCase;

    #[test]
    fn identical_seeds_yield_byte_identical_schedules() {
        for seed in 0..64u64 {
            let a = synth_plan_for_seed(seed);
            let b = synth_plan_for_seed(seed);
            assert_eq!(a.schedule, b.schedule, "seed {seed}");
            assert_eq!(
                format!("{:?}", a.schedule),
                format!("{:?}", b.schedule),
                "seed {seed}: debug repr diverged"
            );
            assert_eq!(a.label, b.label, "seed {seed}");
            assert_eq!(a.iterations, b.iterations, "seed {seed}");
            assert_eq!(a.config, b.config, "seed {seed}");
        }
    }

    #[test]
    fn guided_families_cover_all_four_cases_in_any_100_seed_window() {
        for window_start in [0u64, 37, 250, 4096] {
            let mut families = [false; 4];
            for seed in window_start..window_start + 100 {
                if seed % 8 < 4 {
                    families[(seed % 4) as usize] = true;
                    let plan = synth_plan_for_seed(seed);
                    assert!(
                        plan.label.starts_with("case"),
                        "guided seed {seed} must use a family generator, got {}",
                        plan.label
                    );
                }
            }
            assert_eq!(families, [true; 4], "window at {window_start}");
        }
    }

    #[test]
    fn walk_seeds_produce_multi_fault_schedules() {
        // The walk half of the seed space must actually exercise the DSL:
        // across a modest window we expect overlapping crashes, recoveries,
        // link storms and at least one planned total loss.
        let mut saw_two_simultaneous_crashes = false;
        let mut saw_recovery = false;
        let mut saw_cut = false;
        let mut saw_total_loss = false;
        for seed in 0..256u64 {
            if seed % 8 < 4 {
                continue;
            }
            let plan = synth_plan_for_seed(seed);
            let mut down = 0i32;
            let mut max_down = 0i32;
            for op in plan.schedule.ops() {
                match op.op {
                    FaultOp::Crash(_) => {
                        down += 1;
                        max_down = max_down.max(down);
                    }
                    FaultOp::Recover(_) => {
                        down -= 1;
                        saw_recovery = true;
                    }
                    FaultOp::CutLink(..) => saw_cut = true,
                    _ => {}
                }
            }
            if max_down >= 2 {
                saw_two_simultaneous_crashes = true;
            }
            if plan.expect_disk_recovery {
                saw_total_loss = true;
                assert!(plan.config.disk_logging);
                assert!(
                    plan.schedule.ops().iter().any(|s| s.op == FaultOp::Checkpoint),
                    "seed {seed}: total loss without a checkpoint cannot be verified"
                );
            }
        }
        assert!(saw_two_simultaneous_crashes, "no overlapping multi-node crash was synthesized");
        assert!(saw_recovery);
        assert!(saw_cut, "no cut-then-heal link storm was synthesized");
        assert!(saw_total_loss);
    }

    /// Replays a schedule against the well-formedness rules the walk
    /// promises (shared with the property test below).
    fn assert_well_formed(plan: &ChaosPlan) {
        let seed = plan.seed;
        // Execution order: iteration, then point order, then insertion
        // order within a point (what the driver does).
        let mut ordered: Vec<(usize, InjectionPoint, &FaultOp)> = Vec::new();
        for iteration in 0..plan.iterations {
            for point in CRASH_POINTS.iter().copied().chain([InjectionPoint::IterationEnd]) {
                for op in plan.schedule.ops_at(iteration, point) {
                    ordered.push((iteration, point, op));
                }
            }
        }
        assert_eq!(
            ordered.len(),
            plan.schedule.ops().len(),
            "seed {seed}: some op sits outside the planned iterations"
        );
        assert!(
            plan.schedule.iterations_required() <= plan.iterations,
            "seed {seed}: schedule runs past the planned iterations"
        );
        let nodes = plan.config.num_nodes;
        let mut crashed = vec![false; nodes];
        let mut crash_iteration = vec![0usize; nodes];
        let mut cut: Vec<(usize, usize)> = Vec::new();
        for (iteration, point, op) in ordered {
            match op {
                FaultOp::Crash(n) => {
                    assert!(!crashed[*n], "seed {seed}: node {n} crashed twice without recovery");
                    assert_ne!(
                        point,
                        InjectionPoint::IterationEnd,
                        "seed {seed}: a crash at IterationEnd cannot be detected in time"
                    );
                    crashed[*n] = true;
                    crash_iteration[*n] = iteration;
                }
                FaultOp::Recover(n) => {
                    assert!(crashed[*n], "seed {seed}: Recover({n}) without a preceding crash");
                    assert_eq!(
                        point,
                        InjectionPoint::IterationEnd,
                        "seed {seed}: recoveries must happen after detection"
                    );
                    assert!(
                        iteration >= crash_iteration[*n],
                        "seed {seed}: node {n} recovered before its crash"
                    );
                    crashed[*n] = false;
                }
                FaultOp::CutLink(a, b) => {
                    assert!(
                        !cut.contains(&(*a, *b)) && !cut.contains(&(*b, *a)),
                        "seed {seed}: link ({a},{b}) cut twice"
                    );
                    cut.push((*a, *b));
                }
                FaultOp::HealLink(a, b) => {
                    let index = cut
                        .iter()
                        .position(|&(x, y)| (x, y) == (*a, *b) || (x, y) == (*b, *a))
                        .unwrap_or_else(|| {
                            panic!("seed {seed}: HealLink({a},{b}) without a preceding cut")
                        });
                    cut.remove(index);
                }
                _ => {}
            }
        }
        assert!(cut.is_empty(), "seed {seed}: cut links left dangling: {cut:?}");
    }

    #[test]
    fn synthesized_schedules_are_well_formed() {
        for seed in 0..512u64 {
            assert_well_formed(&synth_plan_for_seed(seed));
        }
        // The planted-bug variant must stay well-formed too (its cut is
        // healed in the same epoch — it is unsafe, not malformed).
        let options = SynthOptions { inject_unsafe_loss: true };
        for seed in 0..128u64 {
            assert_well_formed(&synth_plan(seed, &options));
        }
    }

    #[test]
    fn synth_runs_are_deterministic_end_to_end() {
        for seed in [4u64, 5, 6, 7, 12, 21] {
            let a = run_synth_seed(seed).unwrap();
            let b = run_synth_seed(seed).unwrap();
            assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: history diverged");
            assert_eq!(a.passed(), b.passed(), "seed {seed}: verdict diverged");
            assert_eq!(a.cases_seen, b.cases_seen, "seed {seed}");
        }
    }

    #[test]
    fn synthesized_walk_seeds_pass_the_checker() {
        // A protocol-safe schedule must never be red: sweep a window of
        // pure walk seeds (the guided families are covered elsewhere).
        let mut summary = SweepSummary::default();
        for seed in 0..48u64 {
            if seed % 8 < 4 {
                continue;
            }
            let outcome = run_synth_seed(seed).unwrap();
            assert!(
                outcome.passed(),
                "seed {seed} ({}) violated: {:?}\nschedule: {:?}",
                outcome.label,
                outcome.violations,
                outcome.schedule
            );
            summary.outcomes.push(outcome);
        }
        // The walk's multi-fault schedules must still reach real failure
        // cases (crashes are detected and classified).
        assert!(summary.cases_covered().iter().any(|c| *c != FailureCase::NoFailure));
    }

    #[test]
    fn planted_bug_turns_seeds_red() {
        let options = SynthOptions { inject_unsafe_loss: true };
        let mut planted = 0;
        let mut caught = 0;
        for seed in 0..24u64 {
            let plan = synth_plan(seed, &options);
            if !plan.label.ends_with("+injected-loss") {
                continue;
            }
            planted += 1;
            let outcome = run_plan(&plan).unwrap();
            if !outcome.passed() {
                caught += 1;
            }
        }
        assert!(planted > 0, "no walk seed accepted the planted bug");
        assert_eq!(caught, planted, "every planted silent loss must be caught");
    }
}
