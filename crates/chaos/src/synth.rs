//! Schedule synthesis: biased random walks over the fault DSL.
//!
//! The seeded runner's four scenario templates only ever explore four
//! points of the schedule space. This module generates *arbitrary*
//! well-formed multi-fault schedules from a single seed — overlapping
//! crashes of several nodes with interleaved recoveries, cut-then-heal link
//! storms inside doomed epochs, probabilistic link faults retuned
//! mid-phase, faults stacked across consecutive iterations, and planned
//! total-loss events that exercise the checkpoint + WAL recovery path —
//! while keeping the four Figure-7 families as guided generators so case
//! coverage never regresses:
//!
//! * seeds with `seed % 8 < 4` run the guided generator of family
//!   `seed % 8` ([`crate::runner::family_plan`]), so any 8 consecutive
//!   seeds still reach all four Figure-7 failure cases;
//! * the remaining seeds run the biased random walk.
//!
//! ## Safety envelope
//!
//! A synthesized schedule must never be an *expected* violation — a red
//! seed has to mean a real protocol bug. The walk therefore only emits
//! faults the protocol claims to survive:
//!
//! * crashes are always safe (the next fence detects them and reverts the
//!   in-flight epoch);
//! * silent loss (drop faults, cut links) is confined to the epoch a crash
//!   dooms: the garnish is armed at the doomed epoch's first injection
//!   point and disarmed immediately before the fence that reverts it;
//! * delays and duplicates are safe anywhere; reordering is only enabled
//!   when the walk picked value replication (Thomas write rule);
//! * a `Recover` is only scheduled at an `IterationEnd` at or after the
//!   crash's iteration (detection has happened by then) and only when
//!   every partition the node holds still has another healthy replica —
//!   the same check [`star_core::StarEngine::can_recover`] performs;
//! * a `RecoverInterrupted` obeys the same rules and leaves the node down;
//!   its side effects stay inside the envelope too — a crashed source is an
//!   ordinary crash (detected at the next fence, chosen so partition
//!   coverage survives), and a cut recovery link is healed at the next
//!   iteration's start, before any committed epoch could lose traffic
//!   through it;
//! * in re-election mode (a 5-node cluster with two full replicas) the walk
//!   deliberately storms the coordinator: the acting master is crashed
//!   repeatedly — sometimes both full replicas in overlapping windows,
//!   degrading to Case 2 — with interleaved recoveries, and every
//!   re-election must be deterministic (lowest-id healthy full replica);
//! * the walk maintains the *coverage invariant*: unless it deliberately
//!   plans a total loss, every partition keeps at least one healthy
//!   holder, so the cluster never wedges in an unrecoverable state by
//!   accident. A planned total loss enables disk logging and captures a
//!   checkpoint (while the full replica is still healthy) first, so the
//!   driver can verify Case-4 disk recovery.
//!
//! [`SynthOptions::planted`] deliberately breaks the envelope to prove the
//! sweep finds planted bugs and the shrinker minimizes them (see
//! `star-chaos --inject-bug <kind>`): silent loss (a cut-then-heal with no
//! crash inside a committed epoch), byzantine payload corruption (the
//! master's replication stream to one replica is bit-flipped for the final
//! epoch), or a torn WAL tail that the Case-4 disk recovery must refuse to
//! replay.

use crate::coverage::CoverageMap;
use crate::driver::{ChaosPlan, WorkloadSpec};
use crate::runner::{canonical_config, family_plan, ScenarioKind};
use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::{ClusterConfig, NodeId, ReplicationStrategy};
use star_core::RecoveryFault;
use star_net::LinkFaults;
use std::time::Duration;

/// A deliberately planted, checker-visible bug. Each variant breaks the
/// safety envelope in a different subsystem, validating that the
/// sweep-and-shrink pipeline catches that *class* of corruption end to end
/// (`star-chaos --inject-bug <kind>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// One cut-then-heal of a replication link inside an epoch that commits
    /// (no crash to forgive the loss) — silent message loss.
    SilentLoss,
    /// Byzantine payload corruption: the master's value-replication stream
    /// to one replica is bit-flipped for one committed epoch
    /// (`FaultVerdict::Corrupt`); the replica applies the garbage silently
    /// and the replica/oracle comparison must catch the divergence.
    CorruptPayload,
    /// Byzantine disk fault: the full replica's WAL tail is torn after the
    /// planned total loss, so the Case-4 disk recovery reads a truncated
    /// final record — and must refuse to replay it.
    TornWal,
}

impl PlantedBug {
    /// The CLI name of the variant (`--inject-bug <name>`).
    pub fn name(self) -> &'static str {
        match self {
            PlantedBug::SilentLoss => "loss",
            PlantedBug::CorruptPayload => "corrupt",
            PlantedBug::TornWal => "torn-wal",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "loss" => Some(PlantedBug::SilentLoss),
            "corrupt" => Some(PlantedBug::CorruptPayload),
            "torn-wal" => Some(PlantedBug::TornWal),
            _ => None,
        }
    }
}

/// Options for the synthesizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthOptions {
    /// Plant a checker-visible bug into every walk schedule that can accept
    /// one. Used to validate that the sweep catches planted bugs and that
    /// the shrinker reduces them to a minimal schedule.
    pub planted: Option<PlantedBug>,
}

/// The injection points at which a crash may fire (everything before the
/// iteration's last fence, so detection always happens within the same
/// iteration and a recovery at `IterationEnd` is well-formed).
const CRASH_POINTS: [InjectionPoint; 6] = [
    InjectionPoint::PartitionedStart,
    InjectionPoint::MidPartitioned,
    InjectionPoint::BeforeFirstFence,
    InjectionPoint::SingleMasterStart,
    InjectionPoint::MidSingleMaster,
    InjectionPoint::BeforeSecondFence,
];

/// The epoch window a crash at `point` dooms: silent loss is safe between
/// the returned start and end points because the fence closing that epoch
/// reverts it.
fn doomed_epoch_window(point: InjectionPoint) -> (InjectionPoint, InjectionPoint) {
    use InjectionPoint::*;
    match point {
        PartitionedStart | MidPartitioned | BeforeFirstFence => {
            (PartitionedStart, BeforeFirstFence)
        }
        _ => (SingleMasterStart, BeforeSecondFence),
    }
}

fn benign_faults(rng: &mut StdRng, reorder: bool) -> LinkFaults {
    LinkFaults {
        delay_probability: 0.1 + rng.gen::<f64>() * 0.4,
        extra_delay: Duration::from_micros(rng.gen_range(10..80)),
        duplicate_probability: 0.05 + rng.gen::<f64>() * 0.25,
        reorder_probability: if reorder { rng.gen::<f64>() * 0.3 } else { 0.0 },
        ..LinkFaults::none()
    }
}

/// Walk state: who is currently crashed, per the schedule built so far.
struct WalkState {
    config: ClusterConfig,
    crashed: Vec<bool>,
}

impl WalkState {
    fn new(config: &ClusterConfig) -> Self {
        WalkState { config: config.clone(), crashed: vec![false; config.num_nodes] }
    }

    fn healthy(&self) -> Vec<NodeId> {
        (0..self.config.num_nodes).filter(|&n| !self.crashed[n]).collect()
    }

    /// The coverage invariant: with `extra_victim` also crashed, does every
    /// partition still have a healthy holder?
    fn covers_all_partitions_without(&self, extra_victim: NodeId) -> bool {
        (0..self.config.partitions).all(|p| {
            (0..self.config.num_nodes).any(|n| {
                n != extra_victim && !self.crashed[n] && self.config.node_stores_partition(n, p)
            })
        })
    }

    /// Whether `node` could be recovered right now: every partition it
    /// holds has another healthy holder (mirrors `StarEngine::can_recover`).
    fn recovery_feasible(&self, node: NodeId) -> bool {
        (0..self.config.partitions).filter(|&p| self.config.node_stores_partition(node, p)).all(
            |p| {
                self.crashed.iter().enumerate().any(|(n, crashed)| {
                    n != node && !crashed && self.config.node_stores_partition(n, p)
                })
            },
        )
    }
}

/// One crash plus its optional silent-loss garnish, confined to the doomed
/// epoch's window. `window_cuts` remembers which unordered link pairs are
/// already cut in which `(iteration, window)` so two victims (or one storm)
/// never double-cut the same link.
fn emit_crash(
    schedule: &mut FaultSchedule,
    rng: &mut StdRng,
    state: &mut WalkState,
    window_cuts: &mut Vec<(usize, InjectionPoint, NodeId, NodeId)>,
    iteration: usize,
    victim: NodeId,
) {
    let point = CRASH_POINTS[rng.gen_range(0..CRASH_POINTS.len())];
    let (window_start, window_end) = doomed_epoch_window(point);
    if rng.gen_bool(0.6) {
        // Cut-then-heal link storm / lossy links while the node dies. The
        // loss is forgiven because the epoch it lands in is reverted by the
        // fence that detects this crash.
        let storm_links = rng.gen_range(1..=2);
        for _ in 0..storm_links {
            let mut peer = rng.gen_range(0..state.config.num_nodes - 1);
            if peer >= victim {
                peer += 1;
            }
            if rng.gen_bool(0.5) {
                let pair = (iteration, window_start, victim.min(peer), victim.max(peer));
                if window_cuts.contains(&pair) {
                    continue;
                }
                window_cuts.push(pair);
                schedule.push(iteration, window_start, FaultOp::CutLink(victim, peer));
                schedule.push(iteration, window_end, FaultOp::HealLink(victim, peer));
            } else {
                let (from, to) = if rng.gen_bool(0.5) { (victim, peer) } else { (peer, victim) };
                let drops = LinkFaults::dropping(0.3 + rng.gen::<f64>() * 0.6);
                schedule.push(iteration, window_start, FaultOp::SetLinkFaults(from, to, drops));
                schedule.push(
                    iteration,
                    window_end,
                    FaultOp::SetLinkFaults(from, to, LinkFaults::none()),
                );
            }
        }
    }
    schedule.push(iteration, point, FaultOp::Crash(victim));
    state.crashed[victim] = true;
}

/// Builds a synthesized plan for one seed (see the module docs for the
/// seed-space split and the safety envelope).
pub fn synth_plan_for_seed(seed: u64) -> ChaosPlan {
    synth_plan(seed, &SynthOptions::default())
}

/// Builds a synthesized plan for one seed with explicit options.
pub fn synth_plan(seed: u64, options: &SynthOptions) -> ChaosPlan {
    if seed % 8 < 4 {
        // Guided generators: the four Figure-7 families keep appearing
        // throughout the synthesized seed space, so any 100-seed window
        // still covers every failure case end-to-end.
        return family_plan(ScenarioKind::for_seed(seed), seed);
    }
    walk_plan(seed, 0, options)
}

/// The re-election cluster: 5 nodes with *two* full replicas (nodes 0 and
/// 1), so killing the coordinator has a deterministic successor and the
/// walk can storm the master role — repeated coordinator crashes with
/// interleaved recoveries — without losing the single-master phase for the
/// whole run.
fn reelection_config(seed: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(5)
        .full_replicas(2)
        .workers_per_node(1)
        .partitions(4)
        // Factor 4 = two fulls + primary + one partial backup, so every
        // partial node (including node 4) holds at least one partition.
        .replication_factor(4)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .seed(seed)
        .build()
        // star-lint: allow(panic::expect) -- statically valid config in plan generation, not recovery-time code
        .expect("re-election config is valid")
}

/// The source node [`star_core::StarEngine::recover_node_interrupted`] will
/// copy from, predicted from the configuration: the lowest-id healthy node
/// (other than `node`) holding `node`'s first held partition. The walk uses
/// this to keep its crashed-set bookkeeping exact when it schedules a
/// `SourceCrash` interruption; the well-formedness test replays the same
/// prediction.
pub fn predicted_recovery_source(
    config: &ClusterConfig,
    crashed: &[bool],
    node: NodeId,
) -> Option<NodeId> {
    let first_partition =
        (0..config.partitions).find(|&p| config.node_stores_partition(node, p))?;
    crashed
        .iter()
        .enumerate()
        .find(|&(n, crashed)| {
            n != node && !crashed && config.node_stores_partition(n, first_partition)
        })
        .map(|(n, _)| n)
}

/// One biased-random-walk schedule. `variant` perturbs only the walk's RNG
/// (variant 0 is the canonical schedule of the seed); the guided sweep
/// generates several variants per seed and keeps the one covering the most
/// new territory.
fn walk_plan(seed: u64, variant: u64, options: &SynthOptions) -> ChaosPlan {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0x5EED_CAFE
            ^ variant.wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    // A planted torn-WAL bug needs the canonical total-loss layout, so it
    // suppresses the re-election cluster (the roll is still drawn to keep
    // the rest of the walk's RNG stream stable per seed).
    let reelection = rng.gen_bool(0.3) && options.planted != Some(PlantedBug::TornWal);
    let mut config = if reelection { reelection_config(seed) } else { canonical_config(seed) };
    let iterations = rng.gen_range(4..=7usize);
    let mut schedule = FaultSchedule::new();
    let mut state = WalkState::new(&config);
    let mut label = String::from("synth-walk");
    if reelection {
        label.push_str("+reelect");
    }
    if variant > 0 {
        label.push_str(&format!("+v{variant}"));
    }

    // Replication strategy: value replication tolerates reordering, so the
    // walk may only enable reorder faults when it picks it.
    let value_replication = rng.gen_bool(0.4);
    if value_replication {
        config.replication_strategy = ReplicationStrategy::Value;
        label.push_str("+value-repl");
    }
    let workload = if rng.gen_bool(0.3) {
        WorkloadSpec::Ycsb { rows_per_partition: 24 }
    } else {
        WorkloadSpec::Kv { rows_per_partition: 16 }
    };

    // A planned total loss kills every replica of partition 0 (nodes 0 and
    // 1). Disk logging is enabled and a checkpoint captured first, so the
    // run ends unavailable and the driver verifies recovery from disk.
    // Mutually exclusive with the re-election cluster (its partition-0
    // holder set differs); a planted torn-WAL bug needs the disk-recovery
    // path, so it forces a total loss.
    let total_loss =
        !reelection && (options.planted == Some(PlantedBug::TornWal) || rng.gen_bool(0.2));
    let doom_iteration =
        if total_loss { rng.gen_range(1..iterations.max(2) - 1).max(1) } else { 0 };
    if total_loss {
        config.disk_logging = true;
        label.push_str("+total-loss");
    }

    schedule.push(
        0,
        InjectionPoint::PartitionedStart,
        FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
    );

    // Which nodes the pre-doom storms may crash: with a planned total loss,
    // nodes 0 and 1 are kept healthy until the doom iteration (the
    // checkpoint needs a healthy full replica, the doom needs both).
    let mut healthy_per_iteration: Vec<Vec<bool>> = Vec::with_capacity(iterations);
    let mut crash_iterations: Vec<bool> = vec![false; iterations];
    let mut window_cuts: Vec<(usize, InjectionPoint, NodeId, NodeId)> = Vec::new();

    // `iteration` drives schedule pushes, RNG draws and the doom gate, not
    // just the `crash_iterations` index clippy keys on.
    #[allow(clippy::needless_range_loop)]
    for iteration in 0..iterations {
        healthy_per_iteration.push(state.crashed.iter().map(|c| !c).collect());

        if total_loss && iteration == doom_iteration {
            // Checkpoint while the full replica is still healthy, then kill
            // every remaining holder of partition 0 (staggered across the
            // two phases half the time, for Case-3-then-Case-4 coverage).
            schedule.push(iteration, InjectionPoint::PartitionedStart, FaultOp::Checkpoint);
            let stagger = rng.gen_bool(0.5);
            let first_point = InjectionPoint::MidPartitioned;
            let second_point = if stagger {
                InjectionPoint::MidSingleMaster
            } else {
                InjectionPoint::MidPartitioned
            };
            if !state.crashed[1] {
                schedule.push(iteration, first_point, FaultOp::Crash(1));
                state.crashed[1] = true;
            }
            schedule.push(iteration, second_point, FaultOp::Crash(0));
            state.crashed[0] = true;
            crash_iterations[iteration] = true;
            // The cluster is unavailable from here on; the remaining
            // iterations run idle fences, which the driver tolerates.
            continue;
        }
        if total_loss && iteration > doom_iteration {
            continue;
        }

        // Occasionally retune the background faults mid-phase.
        if rng.gen_bool(0.3) {
            let points = [
                InjectionPoint::MidPartitioned,
                InjectionPoint::SingleMasterStart,
                InjectionPoint::MidSingleMaster,
            ];
            schedule.push(
                iteration,
                points[rng.gen_range(0..points.len())],
                FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
            );
        }

        // Re-election storm: in the two-full-replica cluster, go after the
        // coordinator itself. Killing the acting master (the lowest-id
        // healthy full replica) forces a deterministic re-election at the
        // next fence; with interleaved recoveries the master role can
        // bounce 0 → 1 → 0 across a single run, and killing both fulls in
        // overlapping windows drops the cluster to Case 2 until one
        // rejoins.
        if reelection && rng.gen_bool(0.6) {
            let master = (0..state.config.full_replicas).find(|&n| !state.crashed[n]);
            if let Some(master) = master {
                if state.covers_all_partitions_without(master) {
                    emit_crash(
                        &mut schedule,
                        &mut rng,
                        &mut state,
                        &mut window_cuts,
                        iteration,
                        master,
                    );
                    crash_iterations[iteration] = true;
                }
            }
        }

        // Crash storm: up to two overlapping victims per iteration, chosen
        // so the coverage invariant survives (and, in total-loss mode, so
        // nodes 0 and 1 stay up until the doom iteration).
        if rng.gen_bool(0.5) {
            let storm_size = if rng.gen_bool(0.3) { 2 } else { 1 };
            for _ in 0..storm_size {
                let candidates: Vec<NodeId> = state
                    .healthy()
                    .into_iter()
                    .filter(|&v| !(total_loss && v <= 1))
                    .filter(|&v| state.covers_all_partitions_without(v))
                    .filter(|&v| v != 0 || rng.gen_bool(0.4))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let victim = candidates[rng.gen_range(0..candidates.len())];
                emit_crash(
                    &mut schedule,
                    &mut rng,
                    &mut state,
                    &mut window_cuts,
                    iteration,
                    victim,
                );
                crash_iterations[iteration] = true;
            }
        }

        // Interleaved recoveries: each crashed node may rejoin at this
        // iteration's end if a memory source exists for all its partitions.
        // The second-to-last iteration recovers aggressively so most runs
        // end with a fully healthy, fully verifiable cluster. Outside the
        // forced window, a recovery is occasionally *faulted* instead of
        // completed — the source crashes mid-copy, the target dies again,
        // or the link carrying the recovery state is cut — and the node
        // stays down for a later (possibly also faulted) retry: the
        // recovery path itself is part of the schedule space.
        let force = iteration + 2 >= iterations;
        for node in 0..state.config.num_nodes {
            if !(state.crashed[node]
                && (force || rng.gen_bool(0.5))
                && state.recovery_feasible(node))
            {
                continue;
            }
            if !force && rng.gen_bool(0.3) {
                // A node that holds no partitions (possible when there are
                // fewer partitions than nodes) recovers without a copy
                // stream, so there is no source to crash.
                let source = predicted_recovery_source(&state.config, &state.crashed, node);
                // Pick the most interesting interruption that keeps the
                // safety envelope: a SourceCrash must preserve partition
                // coverage (and spare the doomed nodes in total-loss mode);
                // a LinkCut needs a later iteration to heal in.
                let source_crash_ok = source.is_some_and(|source| {
                    !(total_loss && source <= 1) && state.covers_all_partitions_without(source)
                });
                let link_cut_ok = source.is_some()
                    && iteration + 1 < iterations
                    && !(total_loss && iteration + 1 >= doom_iteration && doom_iteration > 0);
                let fault = match rng.gen_range(0..3) {
                    0 if source_crash_ok => RecoveryFault::SourceCrash,
                    1 if link_cut_ok => RecoveryFault::LinkCut,
                    _ => RecoveryFault::TargetCrash,
                };
                schedule.push(
                    iteration,
                    InjectionPoint::IterationEnd,
                    FaultOp::RecoverInterrupted(node, fault),
                );
                match (fault, source) {
                    (RecoveryFault::SourceCrash, Some(source)) => {
                        // The source dies serving the copy; detection is at
                        // the next iteration's first fence, dooming its
                        // first epoch.
                        state.crashed[source] = true;
                        if iteration + 1 < iterations {
                            crash_iterations[iteration + 1] = true;
                        }
                        // Nothing may recover after the source died this
                        // iteration: the engine has not detected the crash
                        // yet and would happily copy from the dead node.
                        break;
                    }
                    (RecoveryFault::LinkCut, Some(source)) => {
                        schedule.push(
                            iteration + 1,
                            InjectionPoint::PartitionedStart,
                            FaultOp::HealLink(source, node),
                        );
                    }
                    _ => {}
                }
                continue;
            }
            schedule.push(iteration, InjectionPoint::IterationEnd, FaultOp::Recover(node));
            state.crashed[node] = false;
        }

        // Occasionally wipe the fault configuration and re-arm it at the
        // next iteration (all cut links are healed within their doomed
        // epoch, so this never un-cuts anything).
        if rng.gen_bool(0.15) && iteration + 1 < iterations {
            schedule.push(iteration, InjectionPoint::IterationEnd, FaultOp::ClearFaults);
            schedule.push(
                iteration + 1,
                InjectionPoint::PartitionedStart,
                FaultOp::SetDefaultFaults(benign_faults(&mut rng, value_replication)),
            );
        }
    }

    match options.planted {
        Some(PlantedBug::SilentLoss) => {
            // Plant the bug inside an epoch that commits: an iteration with
            // no crash where nodes 0 and 1 were both healthy. The loss is
            // silent and unforgiven, so the checker (or the replica
            // comparison) must catch it.
            let committed_iteration = |i: &usize| {
                !crash_iterations[*i]
                    && healthy_per_iteration.get(*i).map(|h| h[0] && h[1]).unwrap_or(false)
                    && !(total_loss && *i >= doom_iteration)
            };
            if let Some(iteration) = (0..iterations).find(committed_iteration) {
                schedule.push(iteration, InjectionPoint::PartitionedStart, FaultOp::CutLink(1, 0));
                schedule.push(iteration, InjectionPoint::BeforeFirstFence, FaultOp::HealLink(1, 0));
                label.push_str("+injected-loss");
            }
        }
        Some(PlantedBug::CorruptPayload) => {
            // Corrupt the master's value-replication stream to node 1 for
            // the *final* iteration's single-master phase. The last
            // corrupted batch carries the highest TID written on that link,
            // so at least one key's final version on node 1 is garbage and
            // nothing after the phase can overwrite (and thereby mask) it —
            // the replica/oracle comparison is guaranteed to diverge.
            let last = iterations - 1;
            let eligible = !crash_iterations[last]
                && healthy_per_iteration.get(last).map(|h| h[0] && h[1]).unwrap_or(false)
                && !(total_loss && last >= doom_iteration);
            if eligible {
                schedule.push(
                    last,
                    InjectionPoint::SingleMasterStart,
                    FaultOp::SetLinkFaults(0, 1, LinkFaults::corrupting(1.0)),
                );
                schedule.push(
                    last,
                    InjectionPoint::BeforeSecondFence,
                    FaultOp::SetLinkFaults(0, 1, LinkFaults::none()),
                );
                label.push_str("+injected-corrupt");
            }
        }
        // Tear the full replica's WAL tail right after the planned total
        // loss: the Case-4 disk recovery then reads a truncated final
        // record and must refuse to replay it. (`total_loss` is forced on
        // for this planted kind, so the path always runs.)
        Some(PlantedBug::TornWal) if total_loss => {
            schedule.push(doom_iteration, InjectionPoint::IterationEnd, FaultOp::TruncateWal(0, 3));
            label.push_str("+injected-torn-wal");
        }
        Some(PlantedBug::TornWal) => {}
        None => {}
    }

    ChaosPlan {
        seed,
        label,
        config,
        workload,
        iterations,
        partitioned_txns: 24,
        single_master_txns: 32,
        schedule,
        expect_disk_recovery: total_loss,
    }
}

/// Runs the synthesized plan for one seed.
pub fn run_synth_seed(seed: u64) -> star_common::Result<crate::driver::ChaosOutcome> {
    crate::driver::run_plan(&synth_plan_for_seed(seed))
}

/// Candidate walk variants the guided sweep scores per seed. Variant 0 is
/// the plain `--synth` schedule, so the guided walk can never do worse than
/// plain on the seed it is currently choosing for.
pub const GUIDED_CANDIDATES: u64 = 4;

/// Coverage-guided schedule selection (`star-chaos --synth-guided`).
///
/// The plain walk draws one schedule per seed and hopes the RNG spreads
/// them; the guided sweep instead generates [`GUIDED_CANDIDATES`] variants
/// of each walk seed, scores each candidate's [`CoverageMap`] against the
/// coverage merged over every previous seed, and keeps the candidate
/// covering the most *new* territory (ties break toward the lowest
/// variant). Scoring is a pure function of the schedules — nothing is
/// executed — so selection is cheap, and the whole sequence is a pure
/// function of the seed order: `--synth-guided --seed N` reproduces seed
/// `N`'s chosen schedule exactly by replaying the selection for seeds
/// `0..=N`.
///
/// Guided family seeds (`seed % 8 < 4`) pass through unchanged so Figure-7
/// case coverage never regresses.
#[derive(Debug)]
pub struct GuidedSynth {
    options: SynthOptions,
    merged: CoverageMap,
}

impl GuidedSynth {
    /// A guided sweep with empty coverage.
    pub fn new(options: SynthOptions) -> Self {
        GuidedSynth { options, merged: CoverageMap::new() }
    }

    /// The coverage merged over every plan handed out so far.
    pub fn merged(&self) -> &CoverageMap {
        &self.merged
    }

    /// The next seed's plan: the most-novel candidate variant for walk
    /// seeds, the family generator otherwise. Seeds must be fed in sweep
    /// order for reproducibility.
    pub fn next_plan(&mut self, seed: u64) -> ChaosPlan {
        let plan = if seed % 8 < 4 {
            family_plan(ScenarioKind::for_seed(seed), seed)
        } else {
            let mut best: Option<(usize, ChaosPlan)> = None;
            for variant in 0..GUIDED_CANDIDATES {
                let candidate = walk_plan(seed, variant, &self.options);
                let novelty =
                    self.merged.novelty_of(&CoverageMap::from_schedule(&candidate.schedule));
                if best.as_ref().map(|(n, _)| novelty > *n).unwrap_or(true) {
                    best = Some((novelty, candidate));
                }
            }
            best.expect("GUIDED_CANDIDATES > 0").1
        };
        self.merged.observe(&plan.schedule);
        plan
    }

    /// Reproduces the plan a guided sweep over `0..=seed` would pick for
    /// `seed` (the `--synth-guided --seed N` path): replays the selection —
    /// schedule generation only, no runs — for every earlier seed.
    pub fn plan_for_seed(seed: u64, options: &SynthOptions) -> ChaosPlan {
        let mut guided = GuidedSynth::new(*options);
        for earlier in 0..seed {
            let _ = guided.next_plan(earlier);
        }
        guided.next_plan(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_plan;
    use crate::runner::SweepSummary;
    use star_core::FailureCase;

    #[test]
    fn identical_seeds_yield_byte_identical_schedules() {
        for seed in 0..64u64 {
            let a = synth_plan_for_seed(seed);
            let b = synth_plan_for_seed(seed);
            assert_eq!(a.schedule, b.schedule, "seed {seed}");
            assert_eq!(
                format!("{:?}", a.schedule),
                format!("{:?}", b.schedule),
                "seed {seed}: debug repr diverged"
            );
            assert_eq!(a.label, b.label, "seed {seed}");
            assert_eq!(a.iterations, b.iterations, "seed {seed}");
            assert_eq!(a.config, b.config, "seed {seed}");
        }
    }

    #[test]
    fn guided_families_cover_all_four_cases_in_any_100_seed_window() {
        for window_start in [0u64, 37, 250, 4096] {
            let mut families = [false; 4];
            for seed in window_start..window_start + 100 {
                if seed % 8 < 4 {
                    families[(seed % 4) as usize] = true;
                    let plan = synth_plan_for_seed(seed);
                    assert!(
                        plan.label.starts_with("case"),
                        "guided seed {seed} must use a family generator, got {}",
                        plan.label
                    );
                }
            }
            assert_eq!(families, [true; 4], "window at {window_start}");
        }
    }

    #[test]
    fn walk_seeds_produce_multi_fault_schedules() {
        // The walk half of the seed space must actually exercise the DSL:
        // across a modest window we expect overlapping crashes, recoveries,
        // link storms, faulted recoveries (every interruption kind),
        // re-election storms and at least one planned total loss.
        let mut saw_two_simultaneous_crashes = false;
        let mut saw_recovery = false;
        let mut saw_cut = false;
        let mut saw_total_loss = false;
        let mut saw_reelection_storm = false;
        let mut interruptions: Vec<star_core::RecoveryFault> = Vec::new();
        for seed in 0..512u64 {
            if seed % 8 < 4 {
                continue;
            }
            let plan = synth_plan_for_seed(seed);
            let mut down = 0i32;
            let mut max_down = 0i32;
            for op in plan.schedule.ops() {
                match op.op {
                    FaultOp::Crash(_) => {
                        down += 1;
                        max_down = max_down.max(down);
                    }
                    FaultOp::Recover(_) => {
                        down -= 1;
                        saw_recovery = true;
                    }
                    // The node stays down: no decrement.
                    FaultOp::RecoverInterrupted(_, fault) if !interruptions.contains(&fault) => {
                        interruptions.push(fault);
                    }
                    FaultOp::CutLink(..) => saw_cut = true,
                    _ => {}
                }
            }
            if max_down >= 2 {
                saw_two_simultaneous_crashes = true;
            }
            if plan.label.contains("+reelect") {
                // The re-election cluster must actually lose its
                // coordinator at least once in some seed.
                if plan.schedule.ops().iter().any(|s| matches!(s.op, FaultOp::Crash(n) if n < 2)) {
                    saw_reelection_storm = true;
                }
                assert_eq!(plan.config.full_replicas, 2, "seed {seed}");
            }
            if plan.expect_disk_recovery {
                saw_total_loss = true;
                assert!(plan.config.disk_logging);
                assert!(
                    plan.schedule.ops().iter().any(|s| s.op == FaultOp::Checkpoint),
                    "seed {seed}: total loss without a checkpoint cannot be verified"
                );
            }
        }
        assert!(saw_two_simultaneous_crashes, "no overlapping multi-node crash was synthesized");
        assert!(saw_recovery);
        assert!(saw_cut, "no cut-then-heal link storm was synthesized");
        assert!(saw_total_loss);
        assert!(saw_reelection_storm, "no coordinator crash in a re-election cluster");
        for fault in [
            star_core::RecoveryFault::SourceCrash,
            star_core::RecoveryFault::TargetCrash,
            star_core::RecoveryFault::LinkCut,
        ] {
            assert!(interruptions.contains(&fault), "no {fault:?} recovery interruption");
        }
    }

    /// Replays a schedule against the well-formedness rules the walk
    /// promises (shared with the property test below).
    fn assert_well_formed(plan: &ChaosPlan) {
        let seed = plan.seed;
        // Execution order: iteration, then point order, then insertion
        // order within a point (what the driver does).
        let mut ordered: Vec<(usize, InjectionPoint, &FaultOp)> = Vec::new();
        for iteration in 0..plan.iterations {
            for point in CRASH_POINTS.iter().copied().chain([InjectionPoint::IterationEnd]) {
                for op in plan.schedule.ops_at(iteration, point) {
                    ordered.push((iteration, point, op));
                }
            }
        }
        assert_eq!(
            ordered.len(),
            plan.schedule.ops().len(),
            "seed {seed}: some op sits outside the planned iterations"
        );
        assert!(
            plan.schedule.iterations_required() <= plan.iterations,
            "seed {seed}: schedule runs past the planned iterations"
        );
        let nodes = plan.config.num_nodes;
        let mut crashed = vec![false; nodes];
        let mut crash_iteration = vec![0usize; nodes];
        let mut cut: Vec<(usize, usize)> = Vec::new();
        for (iteration, point, op) in ordered {
            match op {
                FaultOp::Crash(n) => {
                    assert!(!crashed[*n], "seed {seed}: node {n} crashed twice without recovery");
                    assert_ne!(
                        point,
                        InjectionPoint::IterationEnd,
                        "seed {seed}: a crash at IterationEnd cannot be detected in time"
                    );
                    crashed[*n] = true;
                    crash_iteration[*n] = iteration;
                }
                FaultOp::Recover(n) => {
                    assert!(crashed[*n], "seed {seed}: Recover({n}) without a preceding crash");
                    assert_eq!(
                        point,
                        InjectionPoint::IterationEnd,
                        "seed {seed}: recoveries must happen after detection"
                    );
                    assert!(
                        iteration >= crash_iteration[*n],
                        "seed {seed}: node {n} recovered before its crash"
                    );
                    crashed[*n] = false;
                }
                FaultOp::RecoverInterrupted(n, fault) => {
                    assert!(
                        crashed[*n],
                        "seed {seed}: RecoverInterrupted({n}) without a preceding crash"
                    );
                    assert_eq!(
                        point,
                        InjectionPoint::IterationEnd,
                        "seed {seed}: recoveries must happen after detection"
                    );
                    // The node stays down; the interruption's side effects
                    // are replayed with the walk's own source prediction.
                    let source =
                        crate::synth::predicted_recovery_source(&plan.config, &crashed, *n)
                            .unwrap_or_else(|| {
                                panic!("seed {seed}: RecoverInterrupted({n}) with no source")
                            });
                    match fault {
                        star_core::RecoveryFault::SourceCrash => {
                            assert!(
                                !crashed[source],
                                "seed {seed}: recovery source {source} was already down"
                            );
                            crashed[source] = true;
                            crash_iteration[source] = iteration;
                        }
                        star_core::RecoveryFault::LinkCut => {
                            assert!(
                                !cut.contains(&(source, *n)) && !cut.contains(&(*n, source)),
                                "seed {seed}: recovery link ({source},{n}) already cut"
                            );
                            cut.push((source, *n));
                        }
                        star_core::RecoveryFault::TargetCrash => {}
                    }
                }
                FaultOp::CutLink(a, b) => {
                    assert!(
                        !cut.contains(&(*a, *b)) && !cut.contains(&(*b, *a)),
                        "seed {seed}: link ({a},{b}) cut twice"
                    );
                    cut.push((*a, *b));
                }
                FaultOp::HealLink(a, b) => {
                    let index = cut
                        .iter()
                        .position(|&(x, y)| (x, y) == (*a, *b) || (x, y) == (*b, *a))
                        .unwrap_or_else(|| {
                            panic!("seed {seed}: HealLink({a},{b}) without a preceding cut")
                        });
                    cut.remove(index);
                }
                _ => {}
            }
        }
        assert!(cut.is_empty(), "seed {seed}: cut links left dangling: {cut:?}");
    }

    #[test]
    fn synthesized_schedules_are_well_formed() {
        for seed in 0..512u64 {
            assert_well_formed(&synth_plan_for_seed(seed));
        }
        // Guided candidates are walks too: every variant must obey the same
        // rules, not only the canonical variant 0.
        for seed in 0..96u64 {
            if seed % 8 < 4 {
                continue;
            }
            for variant in 0..GUIDED_CANDIDATES {
                assert_well_formed(&walk_plan(seed, variant, &SynthOptions::default()));
            }
        }
        // The planted-bug variants must stay well-formed too (the loss cut
        // is healed in the same epoch — unsafe, not malformed; corruption
        // and WAL tearing add no link/crash state at all).
        for planted in [PlantedBug::SilentLoss, PlantedBug::CorruptPayload, PlantedBug::TornWal] {
            let options = SynthOptions { planted: Some(planted) };
            for seed in 0..128u64 {
                assert_well_formed(&synth_plan(seed, &options));
            }
        }
    }

    #[test]
    fn synth_runs_are_deterministic_end_to_end() {
        for seed in [4u64, 5, 6, 7, 12, 21] {
            let a = run_synth_seed(seed).unwrap();
            let b = run_synth_seed(seed).unwrap();
            assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: history diverged");
            assert_eq!(a.passed(), b.passed(), "seed {seed}: verdict diverged");
            assert_eq!(a.cases_seen, b.cases_seen, "seed {seed}");
        }
    }

    #[test]
    fn synthesized_walk_seeds_pass_the_checker() {
        // A protocol-safe schedule must never be red: sweep a window of
        // pure walk seeds (the guided families are covered elsewhere).
        let mut summary = SweepSummary::default();
        for seed in 0..48u64 {
            if seed % 8 < 4 {
                continue;
            }
            let outcome = run_synth_seed(seed).unwrap();
            assert!(
                outcome.passed(),
                "seed {seed} ({}) violated: {:?}\nschedule: {:?}",
                outcome.label,
                outcome.violations,
                outcome.schedule
            );
            summary.outcomes.push(outcome);
        }
        // The walk's multi-fault schedules must still reach real failure
        // cases (crashes are detected and classified).
        assert!(summary.cases_covered().iter().any(|c| *c != FailureCase::NoFailure));
    }

    #[test]
    fn planted_bugs_turn_seeds_red() {
        // Every planted-bug kind must be (a) accepted by some walk seeds
        // and (b) caught on every seed that accepted it — a corruption
        // surviving to a green verdict is a red harness.
        for (planted, marker) in [
            (PlantedBug::SilentLoss, "+injected-loss"),
            (PlantedBug::CorruptPayload, "+injected-corrupt"),
            (PlantedBug::TornWal, "+injected-torn-wal"),
        ] {
            let options = SynthOptions { planted: Some(planted) };
            let mut planted_count = 0;
            let mut caught = 0;
            for seed in 0..24u64 {
                let plan = synth_plan(seed, &options);
                if !plan.label.ends_with(marker) {
                    continue;
                }
                planted_count += 1;
                let outcome = run_plan(&plan).unwrap();
                if !outcome.passed() {
                    caught += 1;
                }
            }
            assert!(planted_count > 0, "no walk seed accepted the planted {planted:?}");
            assert_eq!(
                caught, planted_count,
                "every planted {planted:?} must be caught ({caught}/{planted_count})"
            );
        }
    }

    #[test]
    fn guided_selection_is_reproducible_per_seed() {
        let options = SynthOptions::default();
        let mut sweep = GuidedSynth::new(options);
        let sweep_plans: Vec<ChaosPlan> = (0..24).map(|seed| sweep.next_plan(seed)).collect();
        for (seed, expected) in sweep_plans.iter().enumerate() {
            let replayed = GuidedSynth::plan_for_seed(seed as u64, &options);
            assert_eq!(replayed.schedule, expected.schedule, "seed {seed}");
            assert_eq!(replayed.label, expected.label, "seed {seed}");
        }
    }

    #[test]
    fn guided_walk_beats_plain_synth_on_bigram_coverage() {
        // The acceptance criterion: at equal seed count, the guided sweep
        // must reach strictly higher op-bigram coverage than the plain
        // walk. Both sides are fully deterministic, so this is a stable
        // comparison, not a statistical one.
        const SEEDS: u64 = 48;
        let mut plain = crate::coverage::CoverageMap::new();
        for seed in 0..SEEDS {
            plain.observe(&synth_plan_for_seed(seed).schedule);
        }
        let mut guided = GuidedSynth::new(SynthOptions::default());
        for seed in 0..SEEDS {
            let _ = guided.next_plan(seed);
        }
        assert!(
            guided.merged().bigram_count() > plain.bigram_count(),
            "guided must beat plain at {SEEDS} seeds: {} vs {}",
            guided.merged().bigram_count(),
            plain.bigram_count()
        );
    }

    #[test]
    fn guided_walk_seeds_run_green() {
        // Guided selection changes which schedules run, not the safety
        // envelope: a window of guided walk choices must pass the checker.
        let mut guided = GuidedSynth::new(SynthOptions::default());
        for seed in 0..20u64 {
            let plan = guided.next_plan(seed);
            if seed % 8 < 4 {
                continue;
            }
            let outcome = run_plan(&plan).unwrap();
            assert!(
                outcome.passed(),
                "guided seed {seed} ({}) violated: {:?}\nschedule: {:?}",
                outcome.label,
                outcome.violations,
                outcome.schedule
            );
        }
    }

    #[test]
    fn reelection_storms_bounce_the_master_deterministically() {
        // Find a walk seed whose re-election schedule actually kills a
        // coordinator, run it twice, and check the election generations
        // advanced identically — the "deterministic new master" contract.
        let seed = (0..256u64)
            .find(|&seed| {
                seed % 8 >= 4 && {
                    let plan = synth_plan_for_seed(seed);
                    plan.label.contains("+reelect")
                        && plan
                            .schedule
                            .ops()
                            .iter()
                            .any(|s| matches!(s.op, FaultOp::Crash(n) if n < 2))
                }
            })
            .expect("some walk seed must storm the coordinator");
        let a = run_synth_seed(seed).unwrap();
        let b = run_synth_seed(seed).unwrap();
        assert!(a.passed(), "seed {seed}: {:?}", a.violations);
        assert_eq!(a.fingerprint, b.fingerprint, "re-election must not break determinism");
    }
}
