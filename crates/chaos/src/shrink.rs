//! Schedule shrinking: reduce a red schedule to a minimal counterexample.
//!
//! A synthesized schedule that turns a seed red can easily carry a dozen
//! fault operations, most of them irrelevant to the actual violation. The
//! shrinker runs a delta-debugging loop (ddmin-style: remove chunks of the
//! op list, halving the chunk size while removals keep the run red), then
//! trims trailing idle iterations — re-running the deterministic driver
//! after every candidate edit, so the result is a *verified* minimal
//! failing schedule.
//!
//! Two rules keep the result meaningful:
//!
//! * a candidate only replaces the current schedule if it fails with the
//!   **same violation category** (the text up to the first `:` — e.g.
//!   `serializability` vs `replica consistency`), so shrinking cannot
//!   wander off to a different bug that op removal itself introduced;
//! * the total number of verification runs is bounded
//!   ([`MAX_SHRINK_RUNS`]); schedules are small, so the bound is generous.
//!
//! The shrunk schedule is emitted in the chaos report next to the seed, so
//! `star-chaos --synth --seed N` reproduces the full run and the report
//! carries the minimal schedule that still shows the bug.

use crate::driver::{run_plan, ChaosPlan};
use crate::schedule::{FaultSchedule, ScheduledOp};
use star_common::Result;

/// Upper bound on verification runs per shrink (a safety valve; typical
/// shrinks need a few dozen).
pub const MAX_SHRINK_RUNS: usize = 256;

/// The result of shrinking one red plan.
#[derive(Debug)]
pub struct ShrunkPlan {
    /// The minimized plan (same seed, config and workload; smaller schedule
    /// and possibly fewer iterations).
    pub plan: ChaosPlan,
    /// The violation category the shrink preserved.
    pub category: String,
    /// Ops in the original schedule.
    pub original_ops: usize,
    /// Ops in the minimized schedule.
    pub shrunk_ops: usize,
    /// Verification runs spent.
    pub runs: usize,
}

/// The violation *category*: everything before the first `:` (e.g.
/// `"serializability"`, `"replica consistency"`, `"oracle vs node 2"` is
/// normalised to `"oracle"` so the reporter does not distinguish nodes).
/// `"disk recovery setup"` (the plan never captured a usable checkpoint)
/// stays distinct from `"disk recovery"` (the replay itself failed), so
/// shrinking a torn-WAL counterexample cannot degenerate into a schedule
/// that is red merely for lacking its Checkpoint op.
pub fn violation_category(violation: &str) -> String {
    let head = violation.split(':').next().unwrap_or(violation).trim();
    if head.starts_with("oracle") {
        "oracle".to_string()
    } else if head.starts_with("disk recovery setup") {
        "disk recovery setup".to_string()
    } else if head.starts_with("disk recovery") {
        "disk recovery".to_string()
    } else {
        head.to_string()
    }
}

fn first_category(violations: &[String]) -> Option<String> {
    violations.first().map(|v| violation_category(v))
}

fn with_ops(plan: &ChaosPlan, ops: &[ScheduledOp], iterations: usize) -> ChaosPlan {
    let mut schedule = FaultSchedule::new();
    for op in ops {
        schedule.push(op.iteration, op.point, op.op.clone());
    }
    let mut candidate = plan.clone();
    candidate.schedule = schedule;
    candidate.iterations = iterations;
    candidate
}

/// Shrinks a red plan to a minimal schedule that still fails with the same
/// violation category. Returns `Ok(None)` if the plan passes (nothing to
/// shrink).
pub fn shrink_plan(plan: &ChaosPlan) -> Result<Option<ShrunkPlan>> {
    let baseline = run_plan(plan)?;
    shrink_plan_from(plan, &baseline.violations)
}

/// [`shrink_plan`] for a caller that has already run the plan and holds its
/// violations — skips the redundant baseline run (the unshrunk plan is the
/// largest schedule the shrinker would ever execute). Returns `Ok(None)` if
/// `violations` is empty.
pub fn shrink_plan_from(plan: &ChaosPlan, violations: &[String]) -> Result<Option<ShrunkPlan>> {
    let Some(category) = first_category(violations) else {
        return Ok(None);
    };
    let mut runs = 0usize;
    let still_fails = |candidate: &ChaosPlan, runs: &mut usize| -> bool {
        if *runs >= MAX_SHRINK_RUNS {
            return false;
        }
        *runs += 1;
        match run_plan(candidate) {
            Ok(outcome) => first_category(&outcome.violations).as_deref() == Some(&category),
            Err(_) => false,
        }
    };

    let mut ops: Vec<ScheduledOp> = plan.schedule.ops().to_vec();
    let mut iterations = plan.iterations;

    // ddmin over the op list: try to delete chunks, halving the chunk size
    // whenever a full pass removes nothing.
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut index = 0;
        while index < ops.len() && !ops.is_empty() {
            let end = (index + chunk).min(ops.len());
            let mut candidate_ops = ops.clone();
            candidate_ops.drain(index..end);
            let candidate = with_ops(plan, &candidate_ops, iterations);
            if still_fails(&candidate, &mut runs) {
                ops = candidate_ops;
                removed_any = true;
                // Re-test the same index: the next chunk slid into place.
            } else {
                index += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
        if runs >= MAX_SHRINK_RUNS {
            break;
        }
    }

    // Trim trailing idle iterations — but only while the violation
    // survives (some violations only manifest in iterations after the last
    // scheduled op, e.g. a stale read observed several epochs later).
    while iterations > 1 {
        let candidate = with_ops(plan, &ops, iterations - 1);
        if still_fails(&candidate, &mut runs) {
            iterations -= 1;
        } else {
            break;
        }
    }

    Ok(Some(ShrunkPlan {
        plan: with_ops(plan, &ops, iterations),
        category,
        original_ops: plan.schedule.ops().len(),
        shrunk_ops: ops.len(),
        runs,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, InjectionPoint};
    use crate::synth::{synth_plan, SynthOptions};
    use crate::WorkloadSpec;
    use star_common::ClusterConfig;
    use std::time::Duration;

    #[test]
    fn categories_are_normalised() {
        assert_eq!(violation_category("serializability: txn #3 …"), "serializability");
        assert_eq!(violation_category("replica consistency: node 2 …"), "replica consistency");
        assert_eq!(violation_category("oracle vs node 2: record …"), "oracle");
        assert_eq!(violation_category("disk recovery: replay failed"), "disk recovery");
        assert_eq!(
            violation_category("disk recovery setup: no full-replica checkpoint was captured"),
            "disk recovery setup"
        );
    }

    #[test]
    fn passing_plans_are_not_shrunk() {
        let plan = crate::plan_for_seed(0);
        assert!(shrink_plan(&plan).unwrap().is_none());
    }

    #[test]
    fn unsafe_loss_shrinks_to_a_minimal_schedule() {
        // Hand-build a noisy red plan: the unforgiven cut-then-heal from the
        // negative control, buried in benign noise ops. The shrinker must
        // strip the noise and keep a schedule of at most the cut/heal pair
        // plus whatever the category genuinely needs.
        let config = ClusterConfig::builder()
            .nodes(4)
            .full_replicas(1)
            .workers_per_node(1)
            .partitions(4)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .seed(31)
            .build()
            .unwrap();
        let mut schedule = FaultSchedule::new();
        use InjectionPoint::*;
        let noise = star_net::LinkFaults::delaying(0.4, Duration::from_micros(40));
        schedule.push(0, PartitionedStart, FaultOp::SetDefaultFaults(noise));
        schedule.push(0, MidPartitioned, FaultOp::SetLinkFaults(2, 0, noise));
        schedule.push(1, PartitionedStart, FaultOp::CutLink(1, 0));
        schedule.push(1, BeforeFirstFence, FaultOp::HealLink(1, 0));
        schedule.push(2, PartitionedStart, FaultOp::SetDefaultFaults(noise));
        schedule.push(2, MidSingleMaster, FaultOp::SetLinkFaults(3, 1, noise));
        schedule.push(3, IterationEnd, FaultOp::ClearFaults);
        let plan = ChaosPlan {
            seed: 31,
            label: "noisy-unsafe-loss".into(),
            config,
            workload: WorkloadSpec::Kv { rows_per_partition: 4 },
            iterations: 4,
            partitioned_txns: 16,
            single_master_txns: 32,
            schedule,
            expect_disk_recovery: false,
        };
        let shrunk = shrink_plan(&plan).unwrap().expect("the plan must be red");
        assert!(shrunk.shrunk_ops <= 2, "expected ≤2 ops, got {:?}", shrunk.plan.schedule);
        assert!(shrunk.shrunk_ops >= 1, "removing everything would make the run pass");
        assert!(shrunk.plan.iterations <= plan.iterations);
        // The shrunk plan still fails with the same category.
        let outcome = run_plan(&shrunk.plan).unwrap();
        assert!(!outcome.passed());
        assert_eq!(
            first_category(&outcome.violations).unwrap(),
            shrunk.category,
            "the minimized schedule must reproduce the same violation"
        );
    }

    #[test]
    fn planted_synth_bugs_are_found_and_shrunk_small() {
        // The acceptance check, for every planted byzantine-bug kind: a
        // checker-bypass bug planted into the synthesized schedule space is
        // found by sweeping, and its shrunk schedule is tiny (≤6 ops).
        for (planted, marker) in [
            (crate::synth::PlantedBug::SilentLoss, "+injected-loss"),
            (crate::synth::PlantedBug::CorruptPayload, "+injected-corrupt"),
            (crate::synth::PlantedBug::TornWal, "+injected-torn-wal"),
        ] {
            let options = SynthOptions { planted: Some(planted) };
            let red = (0..32u64)
                .map(|seed| synth_plan(seed, &options))
                .filter(|plan| plan.label.ends_with(marker))
                .find_map(|plan| {
                    let outcome = run_plan(&plan).ok()?;
                    (!outcome.passed()).then_some(plan)
                })
                .unwrap_or_else(|| panic!("the sweep must find a planted {planted:?} red seed"));
            let shrunk = shrink_plan(&red).unwrap().expect("red plan must shrink");
            assert!(
                shrunk.shrunk_ops <= 6,
                "{planted:?}: shrunk schedule too large ({} ops): {:?}",
                shrunk.shrunk_ops,
                shrunk.plan.schedule
            );
            assert!(
                shrunk.shrunk_ops >= 1,
                "{planted:?}: an empty schedule cannot demonstrate a planted bug"
            );
            assert!(
                shrunk.shrunk_ops < shrunk.original_ops,
                "{planted:?}: shrinking must remove noise"
            );
            let outcome = run_plan(&shrunk.plan).unwrap();
            assert!(!outcome.passed(), "{planted:?}: the minimized schedule must still be red");
        }
    }
}
