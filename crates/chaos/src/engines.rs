//! Serializability checks for the four baseline engines.
//!
//! The baselines run wall-clock-driven worker threads, so their committed
//! histories are not bit-reproducible like the STAR chaos runs — but every
//! commit records the read versions it validated and the rows it installed,
//! which is all the checker needs. Together with the STAR engine covered by
//! the chaos driver, this puts all five engines in the repository under the
//! same sequential-oracle check.

use crate::checker::{check_history, CheckReport};
use star_baselines::{BaselineConfig, Calvin, CalvinConfig, DistOcc, DistS2pl, PbOcc};
use star_common::{ClusterConfig, Result};
use star_core::history::HistoryRecorder;
use star_core::testing::KvWorkload;
use std::sync::Arc;
use std::time::Duration;

fn baseline_config(seed: u64) -> BaselineConfig {
    let mut cluster = ClusterConfig::with_nodes(4);
    cluster.partitions = 4;
    cluster.workers_per_node = 2;
    cluster.iteration = Duration::from_millis(5);
    cluster.network_latency = Duration::from_micros(10);
    cluster.seed = seed;
    BaselineConfig::new(cluster)
}

fn workload() -> Arc<KvWorkload> {
    Arc::new(KvWorkload { partitions: 4, rows_per_partition: 24, cross_partition_fraction: 0.3 })
}

/// Runs every baseline engine for `window` under a contended KV workload,
/// recording and checking its committed history. Returns `(label, report)`
/// pairs, one per engine.
pub fn check_baseline_engines(seed: u64, window: Duration) -> Result<Vec<(String, CheckReport)>> {
    let mut results = Vec::new();

    let recorder = Arc::new(HistoryRecorder::new());
    let mut pb = PbOcc::new(baseline_config(seed), workload())?;
    pb.set_history_recorder(Arc::clone(&recorder));
    pb.run_for(window);
    results.push(("PB. OCC".to_string(), check_history(&recorder.committed())));

    let recorder = Arc::new(HistoryRecorder::new());
    let mut occ = DistOcc::new(baseline_config(seed), workload())?;
    occ.set_history_recorder(Arc::clone(&recorder));
    occ.run_for(window);
    results.push(("Dist. OCC".to_string(), check_history(&recorder.committed())));

    let recorder = Arc::new(HistoryRecorder::new());
    let mut s2pl = DistS2pl::new(baseline_config(seed), workload())?;
    s2pl.set_history_recorder(Arc::clone(&recorder));
    s2pl.run_for(window);
    results.push(("Dist. S2PL".to_string(), check_history(&recorder.committed())));

    let recorder = Arc::new(HistoryRecorder::new());
    let mut calvin = Calvin::new(baseline_config(seed), CalvinConfig::default(), workload())?;
    calvin.set_history_recorder(Arc::clone(&recorder));
    calvin.run_for(window);
    results.push((calvin.label(), check_history(&recorder.committed())));

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baseline_histories_are_serializable() {
        let results = check_baseline_engines(5, Duration::from_millis(30)).unwrap();
        assert_eq!(results.len(), 4);
        for (label, report) in results {
            assert!(report.txns > 0, "{label} committed nothing");
            assert!(report.is_serializable(), "{label}: {}", report.violation.as_ref().unwrap());
        }
    }
}
