//! Serializability checks for the four baseline engines.
//!
//! The baselines run wall-clock-driven worker threads, so their committed
//! histories are not bit-reproducible like the STAR chaos runs — but every
//! commit records the read versions it validated and the rows it installed,
//! which is all the checker needs. Together with the STAR engine covered by
//! the chaos driver, this puts all five engines in the repository under the
//! same sequential-oracle check.
//!
//! Every baseline's replication path runs through the shared fault plane
//! (`star_baselines::ReplicaLink`): [`check_baseline_engines_with_faults`]
//! drives the primary→backup streams through duplicate / reorder faults —
//! which the Thomas write rule must absorb — and additionally compares each
//! backup replica against the sequential oracle's final state. Silent loss
//! (drops) has nothing in a baseline's protocol to detect it, so a dropped
//! entry must surface as a backup divergence; the negative-control test
//! below proves it does.

use crate::checker::{check_history, compare_with_database, CheckReport};
use star_baselines::{BaselineConfig, Calvin, CalvinConfig, DistOcc, DistS2pl, PbOcc, ReplicaLink};
use star_common::{ClusterConfig, Result};
use star_core::history::HistoryRecorder;
use star_core::testing::KvWorkload;
use star_core::Engine;
use star_net::LinkFaults;
use star_storage::Database;
use std::sync::Arc;
use std::time::Duration;

fn baseline_config(seed: u64) -> BaselineConfig {
    let cluster = ClusterConfig::builder()
        .nodes(4)
        .partitions(4)
        .workers_per_node(2)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(10))
        .seed(seed)
        .build()
        .expect("chaos baseline config is valid");
    BaselineConfig::new(cluster)
}

fn workload() -> Arc<KvWorkload> {
    Arc::new(KvWorkload { partitions: 4, rows_per_partition: 24, cross_partition_fraction: 0.3 })
}

/// The result of checking one baseline engine under a fault plane.
#[derive(Debug)]
pub struct BaselineCheck {
    /// Engine label.
    pub label: String,
    /// The serializability checker's report on the committed history.
    pub report: CheckReport,
    /// `Err` if the backup replica diverged from the sequential oracle's
    /// final state (e.g. because a replication entry was silently dropped);
    /// `Ok(records)` counts the records that matched.
    pub backup_vs_oracle: std::result::Result<usize, String>,
    /// How many replication entries the fault plane silently dropped.
    pub dropped_entries: u64,
}

impl BaselineCheck {
    /// Whether both the history and the backup survived the checks.
    pub fn passed(&self) -> bool {
        self.report.is_serializable() && self.backup_vs_oracle.is_ok()
    }
}

fn verify_backup(
    backup: Option<&Arc<Database>>,
    report: &CheckReport,
) -> std::result::Result<usize, String> {
    let Some(backup) = backup else {
        return Err("no backup replica attached".into());
    };
    if !report.is_serializable() {
        // The oracle state is meaningless when the history itself failed.
        return Ok(0);
    }
    compare_with_database(backup, &report.final_state)
}

/// A baseline engine boxed behind the shared [`Engine`] trait, plus the two
/// handles the checker needs that the trait deliberately does not expose:
/// the backup replica (for the oracle comparison) and the replication link
/// (for the dropped-entry accounting).
struct PreparedBaseline {
    engine: Box<dyn Engine>,
    backup: Option<Arc<Database>>,
    link: Arc<ReplicaLink>,
}

fn prepare_baselines(
    seed: u64,
    faults: LinkFaults,
    faulted: bool,
) -> Result<Vec<PreparedBaseline>> {
    let mut pb = PbOcc::new(baseline_config(seed), workload())?;
    let mut occ = DistOcc::new(baseline_config(seed), workload())?;
    let mut s2pl = DistS2pl::new(baseline_config(seed), workload())?;
    let mut calvin = Calvin::new(baseline_config(seed), CalvinConfig::default(), workload())?;
    if faulted {
        pb.set_replication_faults(faults);
        occ.set_replication_faults(faults);
        s2pl.set_replication_faults(faults);
        calvin.set_replication_faults(faults);
    }
    Ok(vec![
        PreparedBaseline {
            backup: Some(Arc::clone(pb.backup())),
            link: Arc::clone(pb.replica_link()),
            engine: Box::new(pb),
        },
        PreparedBaseline {
            backup: Some(Arc::clone(occ.backup())),
            link: Arc::clone(occ.replica_link()),
            engine: Box::new(occ),
        },
        PreparedBaseline {
            backup: Some(Arc::clone(s2pl.backup())),
            link: Arc::clone(s2pl.replica_link()),
            engine: Box::new(s2pl),
        },
        PreparedBaseline {
            backup: calvin.backup().cloned(),
            link: Arc::clone(calvin.replica_link()),
            engine: Box::new(calvin),
        },
    ])
}

/// Runs every baseline engine for `window` under a contended KV workload
/// with `faults` injected into its replication path, recording and checking
/// its committed history and comparing its backup against the oracle.
///
/// All four engines are driven through the shared [`Engine`] trait: only
/// construction and fault arming are engine-specific, the record/run/check
/// loop is written once.
///
/// With `LinkFaults::none()` no fault plane is armed and the backup
/// comparison is skipped (reported as `Ok(0)`): the engines behave exactly
/// as in a plain sweep and Calvin attaches no backup replica, so the
/// fault-free path costs nothing extra.
pub fn check_baseline_engines_with_faults(
    seed: u64,
    window: Duration,
    faults: LinkFaults,
) -> Result<Vec<BaselineCheck>> {
    let faulted = !faults.is_none();
    let mut results = Vec::new();
    for PreparedBaseline { mut engine, backup, link } in prepare_baselines(seed, faults, faulted)? {
        let recorder = Arc::new(HistoryRecorder::new());
        engine.set_history_recorder(Arc::clone(&recorder));
        engine.run_for(window);
        let report = check_history(&recorder.committed());
        results.push(BaselineCheck {
            label: engine.name(),
            backup_vs_oracle: if faulted { verify_backup(backup.as_ref(), &report) } else { Ok(0) },
            dropped_entries: link.dropped(),
            report,
        });
    }
    Ok(results)
}

/// Runs every baseline engine for `window` under a contended KV workload,
/// recording and checking its committed history. Returns `(label, report)`
/// pairs, one per engine.
pub fn check_baseline_engines(seed: u64, window: Duration) -> Result<Vec<(String, CheckReport)>> {
    let checks = check_baseline_engines_with_faults(seed, window, LinkFaults::none())?;
    Ok(checks.into_iter().map(|c| (c.label, c.report)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baseline_histories_are_serializable() {
        let results = check_baseline_engines(5, Duration::from_millis(30)).unwrap();
        assert_eq!(results.len(), 4);
        for (label, report) in results {
            assert!(report.txns > 0, "{label} committed nothing");
            assert!(report.is_serializable(), "{label}: {}", report.violation.as_ref().unwrap());
        }
    }

    #[test]
    fn baselines_survive_duplicate_and_reorder_replication_faults() {
        // Duplicates and reorders of value entries are absorbed by the
        // Thomas write rule: the history stays serializable *and* every
        // backup replica still converges to the oracle's final state.
        let faults = LinkFaults {
            duplicate_probability: 0.3,
            reorder_probability: 0.2,
            ..LinkFaults::none()
        };
        let checks =
            check_baseline_engines_with_faults(11, Duration::from_millis(30), faults).unwrap();
        assert_eq!(checks.len(), 4);
        for check in checks {
            assert!(check.report.txns > 0, "{} committed nothing", check.label);
            assert!(
                check.report.is_serializable(),
                "{}: {}",
                check.label,
                check.report.violation.as_ref().unwrap()
            );
            assert!(
                check.backup_vs_oracle.is_ok(),
                "{}: backup diverged: {}",
                check.label,
                check.backup_vs_oracle.as_ref().unwrap_err()
            );
        }
    }

    #[test]
    fn s2pl_survives_high_contention_without_losing_lock_discipline() {
        // Regression test: Dist. S2PL used `is_locked()` probes to decide
        // which locks to release at commit, so the moment `write_and_unlock`
        // freed a write record, a concurrent NO_WAIT transaction could
        // acquire it and have its lock released by the first transaction's
        // cleanup loop — a lock-discipline collapse the serializability
        // checker caught as intermittent cycles. A tiny keyspace with many
        // workers makes the race window hot; the committed history must stay
        // serializable every time, and no lock may leak.
        for round in 0..3u64 {
            let mut config = baseline_config(100 + round);
            config.cluster = config.cluster.to_builder().workers_per_node(3).build().unwrap();
            let workload = Arc::new(KvWorkload {
                partitions: 4,
                rows_per_partition: 4,
                cross_partition_fraction: 0.5,
            });
            let recorder = Arc::new(HistoryRecorder::new());
            let mut s2pl = DistS2pl::new(config, workload).unwrap();
            s2pl.set_history_recorder(Arc::clone(&recorder));
            s2pl.run_for(Duration::from_millis(40));
            let report = check_history(&recorder.committed());
            assert!(report.txns > 0, "round {round}: nothing committed");
            assert!(
                report.is_serializable(),
                "round {round}: {}",
                report.violation.as_ref().unwrap()
            );
        }
    }

    #[test]
    fn silently_dropped_replication_is_caught_on_the_backup() {
        // Negative control: nothing in a baseline's protocol detects silent
        // loss on the replication stream, so the backup-vs-oracle comparison
        // must be the net that catches it. With most entries dropped, every
        // engine's backup must diverge.
        let faults = LinkFaults::dropping(0.8);
        let checks =
            check_baseline_engines_with_faults(7, Duration::from_millis(30), faults).unwrap();
        for check in checks {
            assert!(check.report.is_serializable(), "the primary history is unaffected by loss");
            assert!(
                check.backup_vs_oracle.is_err(),
                "{}: dropped replication entries must leave the backup divergent",
                check.label
            );
            assert!(
                check.dropped_entries > 0,
                "{}: losses must be accounted on the engine's replica link",
                check.label
            );
        }
    }
}
