//! `star-chaos` — the deterministic chaos harness CLI.
//!
//! Sweeps seeded fault-injection scenarios over the STAR engine (and
//! optionally checks the four baseline engines), validating every run's
//! committed history against a sequential oracle.
//!
//! ```bash
//! cargo run --release -p star-chaos --bin star-chaos                     # 100-seed sweep
//! cargo run --release -p star-chaos --bin star-chaos -- --seeds 200
//! cargo run --release -p star-chaos --bin star-chaos -- --seed 17       # reproduce one seed
//! cargo run --release -p star-chaos --bin star-chaos -- --fail-fast --json CHAOS_report.json
//! ```
//!
//! Determinism contract: identical seed ⇒ identical fault schedule,
//! identical committed history (fingerprint) and identical checker verdict.
//! The sweep verifies this by re-running its first seeds; a failing seed's
//! report therefore reproduces the bug exactly with `--seed N`.

use star_chaos::engines::check_baseline_engines;
use star_chaos::{plan_for_seed, run_seed, ChaosOutcome};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Options {
    seeds: u64,
    single_seed: Option<u64>,
    fail_fast: bool,
    skip_engines: bool,
    determinism_checks: u64,
    json: Option<PathBuf>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: star-chaos [--seeds N] [--seed K] [--fail-fast] [--skip-engines] \
         [--determinism-checks N] [--json PATH] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        seeds: 100,
        single_seed: None,
        fail_fast: false,
        skip_engines: false,
        determinism_checks: 3,
        json: None,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seeds requires an integer");
                    usage();
                };
                options.seeds = value;
            }
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed requires an integer");
                    usage();
                };
                options.single_seed = Some(value);
            }
            "--fail-fast" => options.fail_fast = true,
            "--skip-engines" => options.skip_engines = true,
            "--determinism-checks" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--determinism-checks requires an integer");
                    usage();
                };
                options.determinism_checks = value;
            }
            "--json" => {
                let Some(value) = args.next() else {
                    eprintln!("--json requires a path");
                    usage();
                };
                options.json = Some(PathBuf::from(value));
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    options
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn outcome_json(outcome: &ChaosOutcome) -> String {
    let violations: Vec<String> =
        outcome.violations.iter().map(|v| format!("\"{}\"", json_escape(v))).collect();
    let cases: Vec<String> = outcome.cases_seen.iter().map(|c| format!("\"{c:?}\"")).collect();
    format!(
        "{{\"seed\":{},\"scenario\":\"{}\",\"committed\":{},\"fingerprint\":\"{:016x}\",\
         \"cases_seen\":[{}],\"passed\":{},\"violations\":[{}],\"schedule\":\"{}\"}}",
        outcome.seed,
        json_escape(&outcome.label),
        outcome.committed,
        outcome.fingerprint,
        cases.join(","),
        outcome.passed(),
        violations.join(","),
        json_escape(&format!("{:?}", outcome.schedule)),
    )
}

fn print_failure(outcome: &ChaosOutcome) {
    eprintln!("\nseed {} FAILED ({}):", outcome.seed, outcome.label);
    for violation in &outcome.violations {
        eprintln!("  violation: {violation}");
    }
    eprintln!("  cases seen: {:?}", outcome.cases_seen);
    eprintln!("  fingerprint: {:016x}", outcome.fingerprint);
    eprintln!("  reproduce with: star-chaos --seed {}", outcome.seed);
    eprintln!("  schedule: {:?}", outcome.schedule);
}

fn main() {
    let options = parse_options();
    let start = Instant::now();
    let seeds: Vec<u64> = match options.single_seed {
        Some(seed) => vec![seed],
        None => (0..options.seeds).collect(),
    };

    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    let mut failed = false;

    // Determinism self-check: the first seeds run twice; schedule, history
    // fingerprint and verdict must be identical.
    let determinism_seeds: Vec<u64> =
        seeds.iter().copied().take(options.determinism_checks as usize).collect();
    for &seed in &determinism_seeds {
        let first = run_seed(seed).expect("chaos run failed to start");
        let second = run_seed(seed).expect("chaos run failed to start");
        let plans_equal = plan_for_seed(seed).schedule == plan_for_seed(seed).schedule;
        if first.fingerprint != second.fingerprint
            || first.passed() != second.passed()
            || !plans_equal
        {
            eprintln!(
                "determinism violation at seed {seed}: fingerprints {:016x} vs {:016x}",
                first.fingerprint, second.fingerprint
            );
            failed = true;
        }
    }
    if !determinism_seeds.is_empty() && !failed {
        println!("determinism check: {} seed(s) re-ran identically", determinism_seeds.len());
    }

    for &seed in &seeds {
        let outcome = run_seed(seed).expect("chaos run failed to start");
        if options.verbose || !outcome.passed() {
            println!(
                "seed {:>4} {:<40} committed {:>5}  cases {:?}  {}",
                outcome.seed,
                outcome.label,
                outcome.committed,
                outcome.cases_seen,
                if outcome.passed() { "ok" } else { "FAILED" }
            );
        }
        if !outcome.passed() {
            print_failure(&outcome);
            failed = true;
        }
        let stop = failed && options.fail_fast;
        outcomes.push(outcome);
        if stop {
            break;
        }
    }

    // Coverage summary.
    let mut cases: Vec<String> = Vec::new();
    for outcome in &outcomes {
        for case in &outcome.cases_seen {
            let name = format!("{case:?}");
            if !cases.contains(&name) {
                cases.push(name);
            }
        }
    }
    let total_committed: usize = outcomes.iter().map(|o| o.committed).sum();
    println!(
        "\nswept {} seed(s) in {:.1?}: {} committed txns checked, cases covered: {:?}",
        outcomes.len(),
        start.elapsed(),
        total_committed,
        cases
    );
    let all_four =
        ["FullAndPartialRemain", "OnlyPartialRemains", "OnlyFullRemains", "NothingRemains"]
            .iter()
            .all(|c| cases.iter().any(|s| s == c));
    if options.single_seed.is_none() && seeds.len() >= 4 && !all_four {
        eprintln!("coverage violation: not every Figure-7 failure case was reached");
        failed = true;
    }

    // Baseline engines under the same checker.
    if !options.skip_engines {
        match check_baseline_engines(42, Duration::from_millis(40)) {
            Ok(results) => {
                for (label, report) in results {
                    match &report.violation {
                        None => {
                            println!("engine {:<12} {:>6} txns serializable", label, report.txns)
                        }
                        Some(violation) => {
                            eprintln!("engine {label} FAILED: {violation}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("baseline engine check failed to start: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &options.json {
        let body: Vec<String> = outcomes.iter().map(outcome_json).collect();
        let json = format!(
            "{{\"seeds\":{},\"failed\":{},\"outcomes\":[\n{}\n]}}\n",
            outcomes.len(),
            failed,
            body.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if failed {
        std::process::exit(1);
    }
    println!("chaos sweep passed");
}
