//! `star-chaos` — the deterministic chaos harness CLI.
//!
//! Sweeps seeded fault-injection scenarios over the STAR engine (and
//! optionally checks the four baseline engines), validating every run's
//! committed history against a sequential oracle.
//!
//! ```bash
//! cargo run --release -p star-chaos --bin star-chaos                 # 100-seed template sweep
//! cargo run --release -p star-chaos --bin star-chaos -- --synth      # 1000 synthesized schedules
//! cargo run --release -p star-chaos --bin star-chaos -- --seed 17    # reproduce one seed
//! cargo run --release -p star-chaos --bin star-chaos -- --synth --seed 17   # synth variant
//! cargo run --release -p star-chaos --bin star-chaos -- --fail-fast --json CHAOS_report.json
//! cargo run --release -p star-chaos --bin star-chaos -- --synth --inject-bug --seeds 64
//! ```
//!
//! Determinism contract: identical seed ⇒ identical fault schedule,
//! identical committed history (fingerprint) and identical checker verdict.
//! The sweep verifies this by re-running its first seeds; a failing seed's
//! report therefore reproduces the bug exactly with `--seed N` (plus
//! `--synth` if the sweep was synthesized).
//!
//! On a red seed the harness additionally runs the shrinker: the minimal
//! schedule that still fails with the same violation category is printed
//! and embedded in the JSON report next to the seed.

use star_chaos::engines::check_baseline_engines;
use star_chaos::shrink::shrink_plan_from;
use star_chaos::{plan_for_seed, run_plan, synth_plan, ChaosOutcome, ChaosPlan, SynthOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Red seeds shrunk per sweep. A systemic regression can red hundreds of
/// seeds; shrinking each one costs up to `MAX_SHRINK_RUNS` verification
/// runs, so the sweep minimizes only the first few counterexamples (every
/// red seed still reproduces exactly via `--seed N`, where it is shrunk
/// individually).
const SHRINK_BUDGET_PER_SWEEP: usize = 10;

struct Options {
    seeds: Option<u64>,
    single_seed: Option<u64>,
    synth: bool,
    inject_bug: bool,
    fail_fast: bool,
    skip_engines: bool,
    no_shrink: bool,
    determinism_checks: u64,
    json: Option<PathBuf>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: star-chaos [--seeds N] [--seed K] [--synth] [--inject-bug] [--fail-fast] \
         [--skip-engines] [--no-shrink] [--determinism-checks N] [--json PATH] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        seeds: None,
        single_seed: None,
        synth: false,
        inject_bug: false,
        fail_fast: false,
        skip_engines: false,
        no_shrink: false,
        determinism_checks: 3,
        json: None,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seeds requires an integer");
                    usage();
                };
                options.seeds = Some(value);
            }
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed requires an integer");
                    usage();
                };
                options.single_seed = Some(value);
            }
            "--synth" => options.synth = true,
            "--inject-bug" => {
                // A deliberately planted checker-visible bug, for validating
                // the sweep-and-shrink pipeline end to end.
                options.synth = true;
                options.inject_bug = true;
            }
            "--fail-fast" => options.fail_fast = true,
            "--skip-engines" => options.skip_engines = true,
            "--no-shrink" => options.no_shrink = true,
            "--determinism-checks" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--determinism-checks requires an integer");
                    usage();
                };
                options.determinism_checks = value;
            }
            "--json" => {
                let Some(value) = args.next() else {
                    eprintln!("--json requires a path");
                    usage();
                };
                options.json = Some(PathBuf::from(value));
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    options
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A red outcome's shrink result, for the report.
struct ShrunkReport {
    ops: usize,
    original_ops: usize,
    category: String,
    schedule: String,
}

fn outcome_json(outcome: &ChaosOutcome, shrunk: Option<&ShrunkReport>) -> String {
    let violations: Vec<String> =
        outcome.violations.iter().map(|v| format!("\"{}\"", json_escape(v))).collect();
    let cases: Vec<String> = outcome.cases_seen.iter().map(|c| format!("\"{c:?}\"")).collect();
    let shrunk_json = match shrunk {
        Some(s) => format!(
            ",\"shrunk\":{{\"ops\":{},\"original_ops\":{},\"category\":\"{}\",\
             \"schedule\":\"{}\"}}",
            s.ops,
            s.original_ops,
            json_escape(&s.category),
            json_escape(&s.schedule),
        ),
        None => String::new(),
    };
    format!(
        "{{\"seed\":{},\"scenario\":\"{}\",\"committed\":{},\"fingerprint\":\"{:016x}\",\
         \"cases_seen\":[{}],\"passed\":{},\"violations\":[{}],\"schedule\":\"{}\"{}}}",
        outcome.seed,
        json_escape(&outcome.label),
        outcome.committed,
        outcome.fingerprint,
        cases.join(","),
        outcome.passed(),
        violations.join(","),
        json_escape(&format!("{:?}", outcome.schedule)),
        shrunk_json,
    )
}

fn print_failure(outcome: &ChaosOutcome, synth: bool, inject_bug: bool) {
    eprintln!("\nseed {} FAILED ({}):", outcome.seed, outcome.label);
    for violation in &outcome.violations {
        eprintln!("  violation: {violation}");
    }
    eprintln!("  cases seen: {:?}", outcome.cases_seen);
    eprintln!("  fingerprint: {:016x}", outcome.fingerprint);
    let flags = if inject_bug {
        "--inject-bug "
    } else if synth {
        "--synth "
    } else {
        ""
    };
    eprintln!("  reproduce with: star-chaos {flags}--seed {}", outcome.seed);
    eprintln!("  schedule: {:?}", outcome.schedule);
}

fn shrink_failure(plan: &ChaosPlan, violations: &[String]) -> Option<ShrunkReport> {
    match shrink_plan_from(plan, violations) {
        Ok(Some(shrunk)) => {
            eprintln!(
                "  shrunk: {} of {} op(s) remain after {} verification run(s) ({}):",
                shrunk.shrunk_ops, shrunk.original_ops, shrunk.runs, shrunk.category
            );
            eprintln!("  minimal schedule: {:?}", shrunk.plan.schedule);
            Some(ShrunkReport {
                ops: shrunk.shrunk_ops,
                original_ops: shrunk.original_ops,
                category: shrunk.category,
                schedule: format!("{:?}", shrunk.plan.schedule),
            })
        }
        Ok(None) => None,
        Err(e) => {
            eprintln!("  shrink failed to run: {e}");
            None
        }
    }
}

fn main() {
    let options = parse_options();
    let start = Instant::now();
    let synth_options = SynthOptions { inject_unsafe_loss: options.inject_bug };
    let make_plan = |seed: u64| -> ChaosPlan {
        if options.synth {
            synth_plan(seed, &synth_options)
        } else {
            plan_for_seed(seed)
        }
    };
    // A synthesized sweep defaults to 1000 schedules; the template sweep
    // keeps its fast 100-seed default (the CI smoke job).
    let default_seeds = if options.synth { 1000 } else { 100 };
    let seeds: Vec<u64> = match options.single_seed {
        Some(seed) => vec![seed],
        None => (0..options.seeds.unwrap_or(default_seeds)).collect(),
    };

    let mut outcomes: Vec<(ChaosOutcome, Option<ShrunkReport>)> = Vec::new();
    let mut failed = false;

    // Determinism self-check: the first seeds run twice; schedule, history
    // fingerprint and verdict must be identical.
    let determinism_seeds: Vec<u64> =
        seeds.iter().copied().take(options.determinism_checks as usize).collect();
    for &seed in &determinism_seeds {
        let first = run_plan(&make_plan(seed)).expect("chaos run failed to start");
        let second = run_plan(&make_plan(seed)).expect("chaos run failed to start");
        let plans_equal = make_plan(seed).schedule == make_plan(seed).schedule;
        if first.fingerprint != second.fingerprint
            || first.passed() != second.passed()
            || !plans_equal
        {
            eprintln!(
                "determinism violation at seed {seed}: fingerprints {:016x} vs {:016x}",
                first.fingerprint, second.fingerprint
            );
            failed = true;
        }
    }
    if !determinism_seeds.is_empty() && !failed {
        println!("determinism check: {} seed(s) re-ran identically", determinism_seeds.len());
    }

    let mut shrinks_spent = 0usize;
    for &seed in &seeds {
        let plan = make_plan(seed);
        let outcome = run_plan(&plan).expect("chaos run failed to start");
        if options.verbose || !outcome.passed() {
            println!(
                "seed {:>4} {:<40} committed {:>5}  cases {:?}  {}",
                outcome.seed,
                outcome.label,
                outcome.committed,
                outcome.cases_seen,
                if outcome.passed() { "ok" } else { "FAILED" }
            );
        }
        let mut shrunk = None;
        if !outcome.passed() {
            print_failure(&outcome, options.synth, options.inject_bug);
            if !options.no_shrink && shrinks_spent < SHRINK_BUDGET_PER_SWEEP {
                shrinks_spent += 1;
                shrunk = shrink_failure(&plan, &outcome.violations);
            } else if !options.no_shrink {
                eprintln!(
                    "  (shrink budget of {SHRINK_BUDGET_PER_SWEEP} per sweep exhausted; \
                     reproduce and shrink with --seed {seed})"
                );
            }
            failed = true;
        }
        let stop = failed && options.fail_fast;
        outcomes.push((outcome, shrunk));
        if stop {
            break;
        }
    }

    // Coverage summary.
    let mut cases: Vec<String> = Vec::new();
    for (outcome, _) in &outcomes {
        for case in &outcome.cases_seen {
            let name = format!("{case:?}");
            if !cases.contains(&name) {
                cases.push(name);
            }
        }
    }
    let total_committed: usize = outcomes.iter().map(|(o, _)| o.committed).sum();
    println!(
        "\nswept {} seed(s){} in {:.1?}: {} committed txns checked, cases covered: {:?}",
        outcomes.len(),
        if options.synth { " (synthesized)" } else { "" },
        start.elapsed(),
        total_committed,
        cases
    );
    let all_four =
        ["FullAndPartialRemain", "OnlyPartialRemains", "OnlyFullRemains", "NothingRemains"]
            .iter()
            .all(|c| cases.iter().any(|s| s == c));
    // The guided families repeat every 8 seeds in synth mode and every 4 in
    // template mode, so any sweep at least that long must reach all four
    // Figure-7 cases.
    let coverage_window = if options.synth { 8 } else { 4 };
    if options.single_seed.is_none() && seeds.len() >= coverage_window && !all_four {
        eprintln!("coverage violation: not every Figure-7 failure case was reached");
        failed = true;
    }

    // Baseline engines under the same checker.
    if !options.skip_engines {
        match check_baseline_engines(42, Duration::from_millis(40)) {
            Ok(results) => {
                for (label, report) in results {
                    match &report.violation {
                        None => {
                            println!("engine {:<12} {:>6} txns serializable", label, report.txns)
                        }
                        Some(violation) => {
                            eprintln!("engine {label} FAILED: {violation}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("baseline engine check failed to start: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &options.json {
        let body: Vec<String> = outcomes.iter().map(|(o, s)| outcome_json(o, s.as_ref())).collect();
        let json = format!(
            "{{\"seeds\":{},\"synth\":{},\"failed\":{},\"outcomes\":[\n{}\n]}}\n",
            outcomes.len(),
            options.synth,
            failed,
            body.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if failed {
        std::process::exit(1);
    }
    println!("chaos sweep passed");
}
