//! `star-chaos` — the deterministic chaos harness CLI.
//!
//! Sweeps seeded fault-injection scenarios over the STAR engine (and
//! optionally checks the four baseline engines), validating every run's
//! committed history against a sequential oracle.
//!
//! ```bash
//! cargo run --release -p star-chaos --bin star-chaos                 # 100-seed template sweep
//! cargo run --release -p star-chaos --bin star-chaos -- --synth      # 1000 synthesized schedules
//! cargo run --release -p star-chaos --bin star-chaos -- --synth-guided    # coverage-guided walk
//! cargo run --release -p star-chaos --bin star-chaos -- --seed 17    # reproduce one seed
//! cargo run --release -p star-chaos --bin star-chaos -- --synth --seed 17   # synth variant
//! cargo run --release -p star-chaos --bin star-chaos -- --fail-fast --json CHAOS_report.json
//! cargo run --release -p star-chaos --bin star-chaos -- --inject-bug corrupt --seeds 64
//! cargo run --release -p star-chaos --bin star-chaos -- --replay-corpus    # regression corpus
//! ```
//!
//! Determinism contract: identical seed ⇒ identical fault schedule,
//! identical committed history (fingerprint) and identical checker verdict.
//! The sweep verifies this by re-running its first seeds; a failing seed's
//! report therefore reproduces the bug exactly with `--seed N` (plus
//! `--synth` / `--synth-guided` if the sweep was synthesized — guided
//! selection replays the choices of every earlier seed, so a single seed
//! reproduces without re-running the sweep).
//!
//! On a red seed the harness additionally runs the shrinker: the minimal
//! schedule that still fails with the same violation category is printed,
//! embedded in the JSON report next to the seed and — with `--corpus-out
//! DIR` — serialized as a corpus-entry JSON ready to be promoted into
//! `tests/chaos_corpus/` once the underlying bug is fixed.
//!
//! The JSON report carries the corpus/schedule format versions, the synth
//! walk parameters and the merged schedule-space coverage map (op bigrams,
//! injection points, phase × fault combinations — including the bigrams
//! *not* covered), so the nightly artifact shows where the walk has never
//! been.

use star_chaos::corpus::{load_corpus, plan_to_json};
use star_chaos::engines::check_baseline_engines;
use star_chaos::shrink::shrink_plan_from;
use star_chaos::synth::GUIDED_CANDIDATES;
use star_chaos::{
    plan_for_seed, run_plan, synth_plan, ChaosOutcome, ChaosPlan, CoverageMap, GuidedSynth,
    PlantedBug, SynthOptions, CORPUS_FORMAT_VERSION, SCHEDULE_FORMAT_VERSION,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Red seeds shrunk per sweep. A systemic regression can red hundreds of
/// seeds; shrinking each one costs up to `MAX_SHRINK_RUNS` verification
/// runs, so the sweep minimizes only the first few counterexamples (every
/// red seed still reproduces exactly via `--seed N`, where it is shrunk
/// individually).
const SHRINK_BUDGET_PER_SWEEP: usize = 10;

/// Default location of the committed regression corpus, relative to the
/// repository root.
const DEFAULT_CORPUS_DIR: &str = "tests/chaos_corpus";

struct Options {
    seeds: Option<u64>,
    single_seed: Option<u64>,
    synth: bool,
    guided: bool,
    inject_bug: Option<PlantedBug>,
    fail_fast: bool,
    skip_engines: bool,
    no_shrink: bool,
    determinism_checks: u64,
    json: Option<PathBuf>,
    replay_corpus: Option<PathBuf>,
    corpus_out: Option<PathBuf>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: star-chaos [--seeds N] [--seed K] [--synth] [--synth-guided] \
         [--inject-bug [loss|corrupt|torn-wal]] [--fail-fast] [--skip-engines] [--no-shrink] \
         [--determinism-checks N] [--json PATH] [--replay-corpus [DIR]] [--corpus-out DIR] \
         [--verbose]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        seeds: None,
        single_seed: None,
        synth: false,
        guided: false,
        inject_bug: None,
        fail_fast: false,
        skip_engines: false,
        no_shrink: false,
        determinism_checks: 3,
        json: None,
        replay_corpus: None,
        corpus_out: None,
        verbose: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} requires a value");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                let Ok(v) = value(&mut i, "--seeds").parse() else {
                    eprintln!("--seeds requires an integer");
                    usage();
                };
                options.seeds = Some(v);
            }
            "--seed" => {
                let Ok(v) = value(&mut i, "--seed").parse() else {
                    eprintln!("--seed requires an integer");
                    usage();
                };
                options.single_seed = Some(v);
            }
            "--synth" => options.synth = true,
            "--synth-guided" => {
                options.synth = true;
                options.guided = true;
            }
            "--inject-bug" => {
                // A deliberately planted checker-visible bug, for validating
                // the sweep-and-shrink pipeline end to end. The optional
                // value picks the corruption class (default: silent loss).
                options.synth = true;
                let kind = match args.get(i + 1).map(|s| s.as_str()) {
                    Some(name) if !name.starts_with("--") => {
                        i += 1;
                        match PlantedBug::parse(name) {
                            Some(kind) => kind,
                            None => {
                                eprintln!(
                                    "unknown --inject-bug kind \"{name}\" \
                                     (expected loss, corrupt or torn-wal)"
                                );
                                usage();
                            }
                        }
                    }
                    _ => PlantedBug::SilentLoss,
                };
                options.inject_bug = Some(kind);
            }
            "--fail-fast" => options.fail_fast = true,
            "--skip-engines" => options.skip_engines = true,
            "--no-shrink" => options.no_shrink = true,
            "--determinism-checks" => {
                let Ok(v) = value(&mut i, "--determinism-checks").parse() else {
                    eprintln!("--determinism-checks requires an integer");
                    usage();
                };
                options.determinism_checks = v;
            }
            "--json" => options.json = Some(PathBuf::from(value(&mut i, "--json"))),
            "--replay-corpus" => {
                let dir = match args.get(i + 1).map(|s| s.as_str()) {
                    Some(path) if !path.starts_with("--") => {
                        i += 1;
                        PathBuf::from(path)
                    }
                    _ => PathBuf::from(DEFAULT_CORPUS_DIR),
                };
                options.replay_corpus = Some(dir);
            }
            "--corpus-out" => {
                options.corpus_out = Some(PathBuf::from(value(&mut i, "--corpus-out")));
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    options
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A red outcome's shrink result, for the report.
struct ShrunkReport {
    ops: usize,
    original_ops: usize,
    category: String,
    schedule: String,
}

fn outcome_json(outcome: &ChaosOutcome, shrunk: Option<&ShrunkReport>) -> String {
    let violations: Vec<String> =
        outcome.violations.iter().map(|v| format!("\"{}\"", json_escape(v))).collect();
    let cases: Vec<String> = outcome.cases_seen.iter().map(|c| format!("\"{c:?}\"")).collect();
    let shrunk_json = match shrunk {
        Some(s) => format!(
            ",\"shrunk\":{{\"ops\":{},\"original_ops\":{},\"category\":\"{}\",\
             \"schedule\":\"{}\"}}",
            s.ops,
            s.original_ops,
            json_escape(&s.category),
            json_escape(&s.schedule),
        ),
        None => String::new(),
    };
    format!(
        "{{\"seed\":{},\"scenario\":\"{}\",\"committed\":{},\"fingerprint\":\"{:016x}\",\
         \"cases_seen\":[{}],\"passed\":{},\"violations\":[{}],\"schedule\":\"{}\"{}}}",
        outcome.seed,
        json_escape(&outcome.label),
        outcome.committed,
        outcome.fingerprint,
        cases.join(","),
        outcome.passed(),
        violations.join(","),
        json_escape(&format!("{:?}", outcome.schedule)),
        shrunk_json,
    )
}

fn print_failure(outcome: &ChaosOutcome, options: &Options) {
    eprintln!("\nseed {} FAILED ({}):", outcome.seed, outcome.label);
    for violation in &outcome.violations {
        eprintln!("  violation: {violation}");
    }
    eprintln!("  cases seen: {:?}", outcome.cases_seen);
    eprintln!("  fingerprint: {:016x}", outcome.fingerprint);
    let flags = match (&options.inject_bug, options.guided, options.synth) {
        (Some(kind), _, _) => format!("--inject-bug {} ", kind.name()),
        (None, true, _) => "--synth-guided ".to_string(),
        (None, false, true) => "--synth ".to_string(),
        (None, false, false) => String::new(),
    };
    eprintln!("  reproduce with: star-chaos {flags}--seed {}", outcome.seed);
    eprintln!("  schedule: {:?}", outcome.schedule);
}

fn shrink_failure(
    plan: &ChaosPlan,
    violations: &[String],
    corpus_out: Option<&PathBuf>,
) -> Option<ShrunkReport> {
    match shrink_plan_from(plan, violations) {
        Ok(Some(shrunk)) => {
            eprintln!(
                "  shrunk: {} of {} op(s) remain after {} verification run(s) ({}):",
                shrunk.shrunk_ops, shrunk.original_ops, shrunk.runs, shrunk.category
            );
            eprintln!("  minimal schedule: {:?}", shrunk.plan.schedule);
            if let Some(dir) = corpus_out {
                // A fresh counterexample: serialized next to the sweep so it
                // can be promoted into tests/chaos_corpus/ once the bug it
                // found is fixed (a corpus entry must replay green).
                let description = format!(
                    "shrunk counterexample from seed {} ({}); promote to tests/chaos_corpus/ \
                     after the bug is fixed",
                    shrunk.plan.seed, shrunk.plan.label
                );
                let text = plan_to_json(&shrunk.plan, &description, &shrunk.category);
                let path = dir.join(format!("seed-{}.json", shrunk.plan.seed));
                if let Err(e) =
                    std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, text))
                {
                    eprintln!("  cannot write corpus entry {}: {e}", path.display());
                } else {
                    eprintln!("  corpus entry written: {}", path.display());
                }
            }
            Some(ShrunkReport {
                ops: shrunk.shrunk_ops,
                original_ops: shrunk.original_ops,
                category: shrunk.category,
                schedule: format!("{:?}", shrunk.plan.schedule),
            })
        }
        Ok(None) => None,
        Err(e) => {
            eprintln!("  shrink failed to run: {e}");
            None
        }
    }
}

/// `--replay-corpus`: re-run every committed counterexample as a regression
/// seed. Every entry must be green — each schedule once exposed a real bug
/// that has since been fixed, so a red replay is a regression of that exact
/// fix. Exits the process.
fn replay_corpus(dir: &Path, options: &Options) -> ! {
    // star-lint: allow(determinism::instant-now) -- wall-clock for the CLI summary line; simulation time is stepped
    let start = Instant::now();
    let entries = match load_corpus(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot load corpus: {e}");
            std::process::exit(2);
        }
    };
    if entries.is_empty() {
        eprintln!("corpus {} holds no entries", dir.display());
        std::process::exit(2);
    }
    let mut failed = false;
    let mut outcomes: Vec<(ChaosOutcome, Option<ShrunkReport>)> = Vec::new();
    for (path, entry) in &entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("<entry>");
        let outcome = match run_plan(&entry.plan) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("corpus entry {name} failed to start: {e}");
                std::process::exit(2);
            }
        };
        if outcome.passed() {
            println!(
                "corpus {:<44} committed {:>5}  ok   ({})",
                name, outcome.committed, entry.description
            );
        } else {
            failed = true;
            eprintln!("\ncorpus entry {name} REGRESSED ({}):", entry.description);
            eprintln!("  once-red category: {}", entry.category);
            for violation in &outcome.violations {
                eprintln!("  violation: {violation}");
            }
            eprintln!("  schedule: {:?}", entry.plan.schedule);
        }
        outcomes.push((outcome, None));
    }
    println!(
        "\nreplayed {} corpus entr{} in {:.1?}: {}",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
        start.elapsed(),
        if failed { "REGRESSED" } else { "all green" }
    );
    if let Some(path) = &options.json {
        let body: Vec<String> = outcomes.iter().map(|(o, s)| outcome_json(o, s.as_ref())).collect();
        let json = format!(
            "{{\"format_version\":{CORPUS_FORMAT_VERSION},\
             \"schedule_format\":{SCHEDULE_FORMAT_VERSION},\"mode\":\"replay-corpus\",\
             \"entries\":{},\"failed\":{},\"outcomes\":[\n{}\n]}}\n",
            outcomes.len(),
            failed,
            body.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let options = parse_options();
    if let Some(dir) = &options.replay_corpus {
        replay_corpus(dir, &options);
    }
    // star-lint: allow(determinism::instant-now) -- wall-clock for the sweep summary line; simulation time is stepped
    let start = Instant::now();
    let synth_options = SynthOptions { planted: options.inject_bug };
    let make_plan = |seed: u64| -> ChaosPlan {
        if options.guided {
            GuidedSynth::plan_for_seed(seed, &synth_options)
        } else if options.synth {
            synth_plan(seed, &synth_options)
        } else {
            plan_for_seed(seed)
        }
    };
    // A synthesized sweep defaults to 1000 schedules; the template sweep
    // keeps its fast 100-seed default (the CI smoke job).
    let default_seeds = if options.synth { 1000 } else { 100 };
    let seeds: Vec<u64> = match options.single_seed {
        Some(seed) => vec![seed],
        None => (0..options.seeds.unwrap_or(default_seeds)).collect(),
    };
    // Generate the sweep's plans up front. The guided sweep is stateful —
    // each choice depends on the coverage of every earlier seed — so plans
    // come from one selection pass; `--synth-guided --seed N` reproduces a
    // single seed by replaying the selection (schedules only, no runs).
    let plans: Vec<ChaosPlan> = if options.guided && options.single_seed.is_none() {
        let mut guided = GuidedSynth::new(synth_options);
        seeds.iter().map(|&seed| guided.next_plan(seed)).collect()
    } else {
        seeds.iter().map(|&seed| make_plan(seed)).collect()
    };

    let mut outcomes: Vec<(ChaosOutcome, Option<ShrunkReport>)> = Vec::new();
    let mut failed = false;

    // Determinism self-check: the first seeds run twice; schedule, history
    // fingerprint and verdict must be identical.
    let determinism_count = (options.determinism_checks as usize).min(plans.len());
    for plan in &plans[..determinism_count] {
        let first = run_plan(plan).expect("chaos run failed to start");
        let second = run_plan(plan).expect("chaos run failed to start");
        let regenerated = make_plan(plan.seed);
        if first.fingerprint != second.fingerprint
            || first.passed() != second.passed()
            || regenerated.schedule != plan.schedule
        {
            eprintln!(
                "determinism violation at seed {}: fingerprints {:016x} vs {:016x}",
                plan.seed, first.fingerprint, second.fingerprint
            );
            failed = true;
        }
    }
    if determinism_count > 0 && !failed {
        println!("determinism check: {determinism_count} seed(s) re-ran identically");
    }

    let mut coverage = CoverageMap::new();
    let mut shrinks_spent = 0usize;
    for plan in &plans {
        let outcome = run_plan(plan).expect("chaos run failed to start");
        coverage.observe(&outcome.schedule);
        if options.verbose || !outcome.passed() {
            println!(
                "seed {:>4} {:<40} committed {:>5}  cases {:?}  {}",
                outcome.seed,
                outcome.label,
                outcome.committed,
                outcome.cases_seen,
                if outcome.passed() { "ok" } else { "FAILED" }
            );
        }
        let mut shrunk = None;
        if !outcome.passed() {
            print_failure(&outcome, &options);
            if !options.no_shrink && shrinks_spent < SHRINK_BUDGET_PER_SWEEP {
                shrinks_spent += 1;
                shrunk = shrink_failure(plan, &outcome.violations, options.corpus_out.as_ref());
            } else if !options.no_shrink {
                eprintln!(
                    "  (shrink budget of {SHRINK_BUDGET_PER_SWEEP} per sweep exhausted; \
                     reproduce and shrink with --seed {})",
                    plan.seed
                );
            }
            failed = true;
        }
        let stop = failed && options.fail_fast;
        outcomes.push((outcome, shrunk));
        if stop {
            break;
        }
    }

    // Coverage summary: failure cases reached, plus the schedule-space map.
    let mut cases: Vec<String> = Vec::new();
    for (outcome, _) in &outcomes {
        for case in &outcome.cases_seen {
            let name = format!("{case:?}");
            if !cases.contains(&name) {
                cases.push(name);
            }
        }
    }
    let total_committed: usize = outcomes.iter().map(|(o, _)| o.committed).sum();
    println!(
        "\nswept {} seed(s){} in {:.1?}: {} committed txns checked, cases covered: {:?}",
        outcomes.len(),
        if options.guided {
            " (synthesized, coverage-guided)"
        } else if options.synth {
            " (synthesized)"
        } else {
            ""
        },
        start.elapsed(),
        total_committed,
        cases
    );
    println!(
        "schedule-space coverage: {} op bigram(s), {} point(s), {} phase×fault combination(s); \
         {} bigram(s) never exercised",
        coverage.bigram_count(),
        coverage.point_count(),
        coverage.phase_fault_count(),
        coverage.uncovered_bigrams().len(),
    );
    let all_four =
        ["FullAndPartialRemain", "OnlyPartialRemains", "OnlyFullRemains", "NothingRemains"]
            .iter()
            .all(|c| cases.iter().any(|s| s == c));
    // The guided families repeat every 8 seeds in synth mode and every 4 in
    // template mode, so any sweep at least that long must reach all four
    // Figure-7 cases.
    let coverage_window = if options.synth { 8 } else { 4 };
    if options.single_seed.is_none() && seeds.len() >= coverage_window && !all_four {
        eprintln!("coverage violation: not every Figure-7 failure case was reached");
        failed = true;
    }

    // Baseline engines under the same checker.
    if !options.skip_engines {
        match check_baseline_engines(42, Duration::from_millis(40)) {
            Ok(results) => {
                for (label, report) in results {
                    match &report.violation {
                        None => {
                            println!("engine {:<12} {:>6} txns serializable", label, report.txns)
                        }
                        Some(violation) => {
                            eprintln!("engine {label} FAILED: {violation}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("baseline engine check failed to start: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &options.json {
        let body: Vec<String> = outcomes.iter().map(|(o, s)| outcome_json(o, s.as_ref())).collect();
        let mode = if options.guided {
            "synth-guided"
        } else if options.synth {
            "synth"
        } else {
            "template"
        };
        let planted = match &options.inject_bug {
            Some(kind) => format!("\"{}\"", kind.name()),
            None => "null".to_string(),
        };
        // The walk parameters and format versions ride in the report so a
        // corpus entry (or a re-run months later) can detect that it was
        // produced by an incompatible schedule encoding instead of
        // replaying something subtly different.
        let json = format!(
            "{{\"format_version\":{CORPUS_FORMAT_VERSION},\
             \"schedule_format\":{SCHEDULE_FORMAT_VERSION},\
             \"synth_params\":{{\"mode\":\"{mode}\",\"planted\":{planted},\
             \"guided_candidates\":{GUIDED_CANDIDATES},\"determinism_checks\":{}}},\
             \"seeds\":{},\"synth\":{},\"failed\":{},\
             \"coverage\":{},\
             \"outcomes\":[\n{}\n]}}\n",
            options.determinism_checks,
            outcomes.len(),
            options.synth,
            failed,
            coverage.to_json(),
            body.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if failed {
        std::process::exit(1);
    }
    println!("chaos sweep passed");
}
