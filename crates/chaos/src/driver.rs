//! The chaos driver: executes one seeded, fault-scheduled run of the STAR
//! engine and verifies every safety property the paper claims survives
//! failures.
//!
//! A run is fully deterministic: the engine executes *stepped* phases
//! (fixed transaction counts, sequential workers — see
//! `StarEngine::run_partitioned_phase_stepped`), every RNG is derived from
//! the plan's seed, and all fault decisions come from the network's seeded
//! fault plane. Identical plan ⇒ identical committed history, byte for
//! byte — which is what lets a failing seed reproduce exactly.
//!
//! At the end of a run the driver checks, in order:
//!
//! 1. **serializability** — the committed history must be explained by a
//!    sequential oracle ([`crate::checker`]);
//! 2. **replica agreement** — every pair of healthy replicas agrees on the
//!    partitions they share;
//! 3. **oracle agreement** — every healthy replica's data matches the
//!    oracle's final state;
//! 4. **durability** (Case-4 plans) — a replica rebuilt from the captured
//!    checkpoint plus the on-disk WALs (skipping reverted epochs) must
//!    reproduce the oracle's final state exactly.

use crate::checker::{check_history, compare_with_database, CheckReport};
use crate::schedule::{FaultOp, FaultSchedule, InjectionPoint};
use star_common::{ClusterConfig, Epoch, NodeId, Result};
use star_core::history::HistoryRecorder;
use star_core::testing::KvWorkload;
use star_core::{FailureCase, StarEngine, Workload};
use star_replication::checkpoint::Checkpoint;
use star_replication::recovery::recover_from_checkpoint_and_logs;
use star_replication::{LogEntry, WalReader};
use star_storage::DatabaseBuilder;
use star_workloads::{YcsbConfig, YcsbWorkload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which workload a plan drives.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The miniature read-modify-write KV workload (`star_core::testing`).
    Kv {
        /// Rows loaded per partition.
        rows_per_partition: u64,
    },
    /// YCSB (10-operation multi-get/put transactions).
    Ycsb {
        /// Rows loaded per partition.
        rows_per_partition: u64,
    },
}

/// Everything needed to reproduce one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed every RNG in the run derives from.
    pub seed: u64,
    /// Human-readable scenario name.
    pub label: String,
    /// Cluster configuration (its `seed` field must equal `seed`).
    pub config: ClusterConfig,
    /// Workload to drive.
    pub workload: WorkloadSpec,
    /// Iterations of the phase-switching loop.
    pub iterations: usize,
    /// Transactions per partition per partitioned phase.
    pub partitioned_txns: u64,
    /// Transactions per master worker per single-master phase.
    pub single_master_txns: u64,
    /// The fault schedule.
    pub schedule: FaultSchedule,
    /// Whether the run is expected to end in Case 4 and recover from disk.
    pub expect_disk_recovery: bool,
}

/// Summary of a Case-4 disk recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRecoverySummary {
    /// Records restored from the checkpoint.
    pub checkpoint_records: usize,
    /// WAL entries replayed on top of it.
    pub log_entries_replayed: usize,
    /// WAL entries skipped because their epoch was reverted or never
    /// committed.
    pub log_entries_skipped: usize,
    /// Oracle records verified against the rebuilt replica.
    pub records_verified: usize,
}

/// The outcome of one chaos run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The plan's seed.
    pub seed: u64,
    /// The plan's scenario label.
    pub label: String,
    /// Transactions in the committed (client-visible) history.
    pub committed: usize,
    /// Distinct failure classifications observed after fences, in order.
    pub cases_seen: Vec<FailureCase>,
    /// FNV-1a fingerprint of the committed history (the determinism
    /// witness: same seed ⇒ same fingerprint).
    pub fingerprint: u64,
    /// Every safety violation found (empty ⇔ the run passed).
    pub violations: Vec<String>,
    /// Disk-recovery summary, for plans that exercise Case 4.
    pub disk_recovery: Option<DiskRecoverySummary>,
    /// The schedule that was executed (printed on failure for reproduction).
    pub schedule: FaultSchedule,
}

impl ChaosOutcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn build_workload(spec: &WorkloadSpec, partitions: usize) -> Arc<dyn Workload> {
    match spec {
        WorkloadSpec::Kv { rows_per_partition } => Arc::new(KvWorkload {
            partitions,
            rows_per_partition: *rows_per_partition,
            cross_partition_fraction: 0.3,
        }),
        WorkloadSpec::Ycsb { rows_per_partition } => Arc::new(YcsbWorkload::new(YcsbConfig {
            partitions,
            rows_per_partition: *rows_per_partition,
            ops_per_transaction: 4,
            read_fraction: 0.5,
            zipf_theta: 0.0,
            cross_partition_fraction: 0.3,
        })),
    }
}

fn apply_op(
    engine: &mut StarEngine,
    op: &FaultOp,
    checkpoints: &mut Vec<(NodeId, Checkpoint)>,
    violations: &mut Vec<String>,
) {
    match op {
        FaultOp::Crash(node) => engine.inject_failure(*node),
        FaultOp::Recover(node) => {
            if let Err(e) = engine.recover_node(*node) {
                violations.push(format!("scheduled recovery of node {node} failed: {e}"));
            }
        }
        FaultOp::RecoverInterrupted(node, fault) => {
            // The interruption itself is survivable (the node just stays
            // down); only a recovery that could not even *start* — no
            // healthy source — is reported, mirroring `Recover`.
            if let Err(e) = engine.recover_node_interrupted(*node, *fault) {
                violations.push(format!("scheduled recovery of node {node} failed: {e}"));
            }
        }
        FaultOp::CutLink(a, b) => engine.cluster().network().cut_link(*a, *b),
        FaultOp::HealLink(a, b) => engine.cluster().network().heal_link(*a, *b),
        FaultOp::SetLinkFaults(from, to, faults) => {
            engine.cluster().network().set_link_faults(*from, *to, *faults)
        }
        FaultOp::SetDefaultFaults(faults) => {
            engine.cluster().network().set_default_link_faults(*faults)
        }
        FaultOp::ClearFaults => engine.cluster().network().clear_link_faults(),
        FaultOp::Checkpoint => {
            let epoch = engine.last_committed_epoch();
            let failed = engine.failed_nodes();
            for (n, node) in engine.cluster().nodes().iter().enumerate() {
                if !failed.contains(&n) {
                    checkpoints.push((n, Checkpoint::capture(&node.db, epoch)));
                }
            }
        }
        FaultOp::TruncateWal(node, bytes) => {
            // A byzantine disk: the tail of the node's WAL silently
            // disappears. Disk recovery must detect the torn record — this
            // op only appears in planted-bug schedules, so a run carrying
            // it is expected red.
            let paths = engine.wal_paths();
            match paths.get(*node) {
                Some(path) => {
                    if let Err(e) = star_replication::truncate_wal_tail(path, *bytes) {
                        violations.push(format!("TruncateWal({node}) could not run: {e}"));
                    }
                }
                None => violations
                    .push(format!("TruncateWal({node}) scheduled without disk logging enabled")),
            }
        }
    }
}

/// Runs one chaos plan to completion and verifies it. See the module docs
/// for the checks performed.
pub fn run_plan(plan: &ChaosPlan) -> Result<ChaosOutcome> {
    debug_assert_eq!(plan.config.seed, plan.seed, "plan seed must drive the cluster RNGs");
    let workload = build_workload(&plan.workload, plan.config.partitions);
    let mut engine = StarEngine::new(plan.config.clone(), Arc::clone(&workload))?;
    let recorder = Arc::new(HistoryRecorder::new());
    engine.set_history_recorder(Arc::clone(&recorder));
    engine.cluster().network().seed_faults(plan.seed);

    let mut checkpoints: Vec<(NodeId, Checkpoint)> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut cases_seen: Vec<FailureCase> = Vec::new();

    let note_case = |engine: &StarEngine, cases_seen: &mut Vec<FailureCase>| {
        if let Ok(case) = engine.failure_case() {
            if !cases_seen.contains(&case) {
                cases_seen.push(case);
            }
        }
    };

    for iteration in 0..plan.iterations {
        use InjectionPoint::*;
        let first_half_p = plan.partitioned_txns / 2;
        let second_half_p = plan.partitioned_txns - first_half_p;
        let first_half_s = plan.single_master_txns / 2;
        let second_half_s = plan.single_master_txns - first_half_s;

        for op in plan.schedule.ops_at(iteration, PartitionedStart).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.run_partitioned_phase_stepped(first_half_p);
        for op in plan.schedule.ops_at(iteration, MidPartitioned).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.run_partitioned_phase_stepped(second_half_p);
        for op in plan.schedule.ops_at(iteration, BeforeFirstFence).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.fence();
        note_case(&engine, &mut cases_seen);

        for op in plan.schedule.ops_at(iteration, SingleMasterStart).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.run_single_master_phase_stepped(first_half_s);
        for op in plan.schedule.ops_at(iteration, MidSingleMaster).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.run_single_master_phase_stepped(second_half_s);
        for op in plan.schedule.ops_at(iteration, BeforeSecondFence).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
        engine.fence();
        note_case(&engine, &mut cases_seen);

        for op in plan.schedule.ops_at(iteration, IterationEnd).cloned().collect::<Vec<_>>() {
            apply_op(&mut engine, &op, &mut checkpoints, &mut violations);
        }
    }

    // 1. Serializability of the client-visible history.
    let history = recorder.committed();
    let report = check_history(&history);
    if let Some(violation) = &report.violation {
        violations.push(format!("serializability: {violation}"));
    }

    // 2. Healthy replicas must agree with each other.
    if let Err(e) = engine.verify_replica_consistency() {
        violations.push(format!("replica consistency: {e}"));
    }

    // 3. Healthy replicas must agree with the sequential oracle.
    if report.is_serializable() {
        let failed = engine.failed_nodes();
        for (n, node) in engine.cluster().nodes().iter().enumerate() {
            if failed.contains(&n) {
                continue;
            }
            if let Err(e) = compare_with_database(&node.db, &report.final_state) {
                violations.push(format!("oracle vs node {n}: {e}"));
            }
        }
    }

    // 4. Case-4 durability: rebuild from checkpoint + WAL and compare.
    let disk_recovery = if plan.expect_disk_recovery {
        Some(run_disk_recovery(&engine, &workload, &checkpoints, &report, &mut violations))
    } else {
        None
    };

    Ok(ChaosOutcome {
        seed: plan.seed,
        label: plan.label.clone(),
        committed: report.txns,
        cases_seen,
        fingerprint: recorder.fingerprint(),
        violations,
        disk_recovery,
        schedule: plan.schedule.clone(),
    })
}

fn run_disk_recovery(
    engine: &StarEngine,
    workload: &Arc<dyn Workload>,
    checkpoints: &[(NodeId, Checkpoint)],
    oracle: &CheckReport,
    violations: &mut Vec<String>,
) -> DiskRecoverySummary {
    let mut summary = DiskRecoverySummary {
        checkpoint_records: 0,
        log_entries_replayed: 0,
        log_entries_skipped: 0,
        records_verified: 0,
    };
    let config = engine.cluster().config();
    // Recovery needs a checkpoint of a full replica (it covers the whole
    // database; Section 4.5.1 checkpoints every replica, and rebuilding the
    // full replica is the Case-4 path that restores availability).
    // "disk recovery setup" (not "disk recovery") so the shrinker cannot
    // conflate a schedule that merely lost its Checkpoint op with one whose
    // disk recovery genuinely failed — e.g. on a torn WAL record.
    let Some((_, checkpoint)) = checkpoints.iter().find(|(n, _)| config.is_full_replica(*n)) else {
        violations.push("disk recovery setup: no full-replica checkpoint was captured".into());
        return summary;
    };
    if engine.wal_paths().is_empty() {
        violations.push("disk recovery setup: the plan did not enable disk logging".into());
        return summary;
    }

    // Read every node's WAL back from disk and keep only entries of epochs
    // that group-committed: reverted epochs were never released to clients
    // and must not be resurrected.
    let reverted: BTreeSet<Epoch> = engine.reverted_epochs().iter().copied().collect();
    let last_committed = engine.last_committed_epoch();
    let mut skipped = 0usize;
    let mut logs: Vec<Vec<LogEntry>> = Vec::new();
    for path in engine.wal_paths() {
        match WalReader::open(&path).and_then(|r| r.entries()) {
            Ok(entries) => {
                let before = entries.len();
                let kept: Vec<LogEntry> = entries
                    .into_iter()
                    .filter(|e| {
                        e.tid.epoch() <= last_committed && !reverted.contains(&e.tid.epoch())
                    })
                    .collect();
                skipped += before - kept.len();
                logs.push(kept);
            }
            Err(e) => {
                violations.push(format!("disk recovery: cannot read {}: {e}", path.display()));
                return summary;
            }
        }
    }

    let mut builder = DatabaseBuilder::new(config.partitions);
    for spec in workload.catalog() {
        builder = builder.table(spec);
    }
    let rebuilt = builder.build();
    match recover_from_checkpoint_and_logs(&rebuilt, checkpoint, &logs) {
        Ok(stats) => {
            summary.checkpoint_records = stats.checkpoint_records;
            summary.log_entries_replayed = stats.log_entries_replayed;
            summary.log_entries_skipped = skipped + stats.log_entries_skipped;
        }
        Err(e) => {
            violations.push(format!("disk recovery: replay failed: {e}"));
            return summary;
        }
    }
    if oracle.is_serializable() {
        match compare_with_database(&rebuilt, &oracle.final_state) {
            Ok(verified) => summary.records_verified = verified,
            Err(e) => violations.push(format!("disk recovery vs oracle: {e}")),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn base_plan(seed: u64) -> ChaosPlan {
        let config = ClusterConfig::builder()
            .nodes(4)
            .full_replicas(1)
            .workers_per_node(1)
            .partitions(4)
            // Factor 3 gives every partition a partial-partial backup
            // (`p0:{1} p1:{1,2} p2:{2,3} p3:{1,3}`), so nodes 2 and 3 are
            // redundant holders whose loss is Case 1.
            .replication_factor(3)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .seed(seed)
            .build()
            .unwrap();
        ChaosPlan {
            seed,
            label: "test".into(),
            config,
            workload: WorkloadSpec::Kv { rows_per_partition: 16 },
            iterations: 3,
            partitioned_txns: 12,
            single_master_txns: 16,
            schedule: FaultSchedule::new(),
            expect_disk_recovery: false,
        }
    }

    #[test]
    fn fault_free_run_is_serializable_and_deterministic() {
        let a = run_plan(&base_plan(11)).unwrap();
        let b = run_plan(&base_plan(11)).unwrap();
        assert!(a.passed(), "{:?}", a.violations);
        assert!(a.committed > 0);
        assert_eq!(a.fingerprint, b.fingerprint, "same seed must give the same history");
        assert_eq!(a.cases_seen, vec![FailureCase::NoFailure]);
        let c = run_plan(&base_plan(12)).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint, "different seeds must diverge");
    }

    #[test]
    fn crash_and_recovery_mid_run_stays_serializable() {
        let mut plan = base_plan(21);
        plan.iterations = 5;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(2));
        let outcome = run_plan(&plan).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert!(outcome.cases_seen.contains(&FailureCase::FullAndPartialRemain));
        assert!(outcome.committed > 0);
    }

    #[test]
    fn recovered_node_discards_replication_queued_while_it_was_dead() {
        // Regression test: a node that crashes mid-partitioned-phase still
        // has that (reverted) epoch's replication batches sitting in its
        // inbound queue. Recovery must discard them — the messages were
        // addressed to the dead process — or the first fence after rejoining
        // resurrects discarded writes on the recovered replica. A large
        // keyspace keeps most keys from being rewritten after recovery, so
        // a resurrected write cannot hide behind a newer version.
        let mut plan = base_plan(41);
        plan.workload = WorkloadSpec::Kv { rows_per_partition: 4096 };
        plan.iterations = 4;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(2));
        let outcome = run_plan(&plan).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
    }

    #[test]
    fn overlapping_crashes_with_interleaved_recoveries_stay_serializable() {
        // A majority of partition 1's replicas (nodes 1 and 2 of {0,1,2})
        // die in overlapping windows; their recoveries interleave with a
        // later crash of node 3. The committed history must stay
        // serializable and all replicas must converge.
        let mut plan = base_plan(61);
        plan.iterations = 6;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(1))
            .at(1, InjectionPoint::MidSingleMaster, FaultOp::Crash(2))
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(1))
            // Iteration 3 runs with only node 2 down — the fences there
            // observe Case 1 before the next crash lands in iteration 4.
            .at(4, InjectionPoint::MidPartitioned, FaultOp::Crash(3))
            .at(4, InjectionPoint::IterationEnd, FaultOp::Recover(2))
            .at(4, InjectionPoint::IterationEnd, FaultOp::Recover(3));
        let outcome = run_plan(&plan).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert!(outcome.committed > 0);
        // Node 1 is the sole partial holder of partition 0, so its crash is
        // Case 3; after it rejoins, only node 2 (a redundant holder) is
        // down, which a fence observes as Case 1.
        assert!(outcome.cases_seen.contains(&FailureCase::OnlyFullRemains));
        assert!(outcome.cases_seen.contains(&FailureCase::FullAndPartialRemain));
    }

    #[test]
    fn master_and_partial_crash_together_and_both_recover() {
        // Node 0 (the only full replica) and node 2 crash in the same
        // iteration: no full replica remains, but the partials still cover
        // the database (Case 2), so the run degrades to partitioned-only
        // execution until the staggered recoveries bring both back.
        let mut plan = base_plan(62);
        plan.iterations = 6;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(0))
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(2))
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(0));
        let outcome = run_plan(&plan).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.violations);
        assert!(outcome.cases_seen.contains(&FailureCase::OnlyPartialRemains));
        assert!(outcome.committed > 0);
    }

    #[test]
    fn infeasible_recovery_is_reported_not_silently_ignored() {
        // Nodes 0 and 1 are partition 0's only holders; recovering node 1
        // while node 0 is still down has no memory source and must surface
        // as a violation (the driver tolerates the attempt, the report
        // carries it).
        let mut plan = base_plan(63);
        plan.iterations = 4;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(0))
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(1))
            .at(2, InjectionPoint::IterationEnd, FaultOp::Recover(1));
        let outcome = run_plan(&plan).unwrap();
        assert!(!outcome.passed());
        assert!(
            outcome.violations.iter().any(|v| v.contains("recovery")),
            "expected a recovery violation, got {:?}",
            outcome.violations
        );
    }

    #[test]
    fn unforgiven_message_loss_is_caught_by_the_checker() {
        // A deliberately *unsafe* schedule: the link from partition 1's
        // primary to the master silently drops everything during a committed
        // epoch, with no crash to revert it. The master's replica of
        // partition 1 goes stale, later single-master transactions read the
        // stale versions and overwrite them — a lost update the
        // serializability checker must catch. This is the negative control
        // proving the harness detects real protocol violations.
        let mut plan = base_plan(31);
        plan.iterations = 4;
        plan.workload = WorkloadSpec::Kv { rows_per_partition: 4 };
        plan.partitioned_txns = 16;
        plan.single_master_txns = 32;
        plan.schedule = FaultSchedule::new()
            .at(1, InjectionPoint::PartitionedStart, FaultOp::CutLink(1, 0))
            .at(1, InjectionPoint::BeforeFirstFence, FaultOp::HealLink(1, 0));
        let outcome = run_plan(&plan).unwrap();
        assert!(!outcome.passed(), "silent message loss in a committed epoch must be detected");
    }
}
