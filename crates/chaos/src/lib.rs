//! Deterministic chaos harness for the STAR reproduction.
//!
//! The paper's headline claim is not only throughput but *correctness under
//! failure*: Section 4.5 argues that the phase-switching fence keeps the
//! committed history serializable through crashes, re-mastering and disk
//! recovery. This crate turns that argument into a FoundationDB-style
//! simulation harness:
//!
//! * [`schedule`] — a fault-schedule DSL: node crashes, recoveries, link
//!   partitions and per-link drop / delay / duplicate / reorder
//!   probabilities, pinned to injection points inside the phase-switching
//!   loop (mid-phase, at the fence, around checkpoints);
//! * [`driver`] — executes one seeded plan against the engine's
//!   deterministic *stepped* execution mode and verifies serializability,
//!   replica agreement, oracle agreement and (for Case 4) recovery from
//!   checkpoint + WAL;
//! * [`checker`] — the offline serializability checker: builds the direct
//!   serialization graph from recorded read versions and installed writes,
//!   topologically sorts it and replays the witness order through a
//!   sequential oracle;
//! * [`runner`] — maps seeds to scenarios (the four Figure-7 failure cases,
//!   round-robin) and sweeps seed ranges; identical seed ⇒ identical
//!   schedule, committed history and checker verdict, so any red seed
//!   reproduces with `star-chaos --seed N`.
//!
//! The [`engines`] module additionally records and checks histories of the
//! four baseline engines (PB. OCC, Dist. OCC, Dist. S2PL, Calvin), so the
//! serializability checker covers all five engines in the repository.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod driver;
pub mod engines;
pub mod runner;
pub mod schedule;

pub use checker::{check_history, CheckReport, Violation};
pub use driver::{run_plan, ChaosOutcome, ChaosPlan, WorkloadSpec};
pub use runner::{plan_for_seed, run_seed, sweep, ScenarioKind, SweepSummary};
pub use schedule::{FaultOp, FaultSchedule, InjectionPoint};
