//! Deterministic chaos harness for the STAR reproduction.
//!
//! The paper's headline claim is not only throughput but *correctness under
//! failure*: Section 4.5 argues that the phase-switching fence keeps the
//! committed history serializable through crashes, re-mastering and disk
//! recovery. This crate turns that argument into a FoundationDB-style
//! simulation harness:
//!
//! * [`schedule`] — a fault-schedule DSL: node crashes, recoveries, link
//!   partitions and per-link drop / delay / duplicate / reorder
//!   probabilities, pinned to injection points inside the phase-switching
//!   loop (mid-phase, at the fence, around checkpoints);
//! * [`driver`] — executes one seeded plan against the engine's
//!   deterministic *stepped* execution mode and verifies serializability,
//!   replica agreement, oracle agreement and (for Case 4) recovery from
//!   checkpoint + WAL;
//! * [`checker`] — the offline serializability checker: builds the direct
//!   serialization graph from recorded read versions and installed writes,
//!   topologically sorts it and replays the witness order through a
//!   sequential oracle;
//! * [`runner`] — the guided generators: maps seeds to the four Figure-7
//!   scenario families and sweeps seed ranges; identical seed ⇒ identical
//!   schedule, committed history and checker verdict, so any red seed
//!   reproduces with `star-chaos --seed N`;
//! * [`synth`] — the schedule synthesizer: a biased random walk over the
//!   fault DSL that generates arbitrary well-formed multi-fault schedules
//!   (overlapping multi-node crashes with interleaved recoveries,
//!   cut-then-heal link storms inside doomed epochs, mid-phase fault
//!   retuning, planned total-loss events), keeping the guided families for
//!   half the seed space so Figure-7 coverage never regresses
//!   (`star-chaos --synth`);
//! * [`shrink`] — the failure reporter's minimizer: a red schedule is
//!   delta-debugged down to a minimal op list that still fails with the
//!   same violation category, and the result is embedded next to the seed
//!   in the JSON report;
//! * [`coverage`] — schedule-space coverage maps: which op bigrams,
//!   injection points and engine-phase × fault combinations a sweep
//!   actually exercised, merged across seeds and emitted in the report.
//!   `star-chaos --synth-guided` uses the merged map to bias the walk
//!   toward uncovered territory;
//! * [`corpus`] — the regression corpus: shrunk red schedules serialize to
//!   versioned JSON under `tests/chaos_corpus/`, and
//!   `star-chaos --replay-corpus` re-runs every committed counterexample
//!   as a regression seed (stale format versions are rejected with a clear
//!   error).
//!
//! The [`engines`] module additionally records and checks histories of the
//! four baseline engines (PB. OCC, Dist. OCC, Dist. S2PL, Calvin), whose
//! replication paths run through the same fault plane
//! (`star_baselines::ReplicaLink`), so the serializability checker covers
//! all five engines in the repository — under replication faults too.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod corpus;
pub mod coverage;
pub mod driver;
pub mod engines;
pub mod runner;
pub mod schedule;
pub mod shrink;
pub mod synth;

pub use checker::{check_history, CheckReport, Violation};
pub use corpus::{load_corpus, plan_from_json, plan_to_json, CorpusEntry, CORPUS_FORMAT_VERSION};
pub use coverage::{CoverageMap, EnginePhase, OpKind};
pub use driver::{run_plan, ChaosOutcome, ChaosPlan, WorkloadSpec};
pub use runner::{
    canonical_config, family_plan, plan_for_seed, run_seed, sweep, ScenarioKind, SweepSummary,
};
pub use schedule::{FaultOp, FaultSchedule, InjectionPoint, SCHEDULE_FORMAT_VERSION};
pub use shrink::{shrink_plan, ShrunkPlan};
pub use synth::{
    run_synth_seed, synth_plan, synth_plan_for_seed, GuidedSynth, PlantedBug, SynthOptions,
};
