//! Offline serializability checker for committed transaction histories.
//!
//! The checker validates a [`CommittedTxn`] history (recorded by
//! `star_core::history`) against a **sequential oracle**: it proves that some
//! serial execution of exactly the committed transactions explains every
//! observed read, or produces a concrete counterexample.
//!
//! The construction is the classical conflict-serializability argument,
//! made checkable by two properties the engines guarantee:
//!
//! 1. every installed version is tagged with its writer's TID, and per
//!    record TIDs are strictly increasing (Silo TID rules + Thomas write
//!    rule), so the **version order of each record is the TID order**;
//! 2. every recorded read carries the TID of the version it observed (the
//!    version OCC validated, or that a lock protected).
//!
//! From these the checker builds the direct serialization graph — wr edges
//! (writer → reader), ww edges (version order), and rw anti-dependency
//! edges (reader → overwriting writer) — and topologically sorts it. A
//! cycle is a serializability violation. The topological order is then
//! **replayed** through a model key-value store, asserting that every read
//! observes exactly the version the history recorded — a second,
//! independent proof that the serial order explains the history, which also
//! yields the oracle's final database state for comparison against replicas
//! and disk recovery.

use star_common::{Key, PartitionId, Row, TableId, Tid};
use star_core::history::CommittedTxn;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one record across the whole database.
pub type RecordId = (TableId, PartitionId, Key);

/// A concrete serializability violation found by the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A committed transaction read a version that no committed transaction
    /// wrote (and that is not the initial load, [`Tid::ZERO`]). This is what
    /// reading reverted / never-group-committed data looks like.
    DanglingRead {
        /// Index of the reading transaction in the history.
        txn: usize,
        /// The record that was read.
        record: RecordId,
        /// The phantom version it observed.
        observed: Tid,
    },
    /// Two committed transactions installed the same version of the same
    /// record — the engines' per-record TID uniqueness was broken.
    DuplicateVersion {
        /// The record.
        record: RecordId,
        /// The colliding version.
        tid: Tid,
        /// Indices of the two writers.
        writers: (usize, usize),
    },
    /// The serialization graph has a cycle: no serial order explains the
    /// history.
    Cycle {
        /// Indices of the transactions involved in (some) cycle.
        involved: Vec<usize>,
    },
    /// Replay of the serial order disagreed with an observed read (defense
    /// in depth; unreachable if the graph construction is correct).
    ReadMismatch {
        /// Index of the reading transaction in the serial order replay.
        txn: usize,
        /// The record that was read.
        record: RecordId,
        /// The version the history recorded.
        observed: Tid,
        /// The version the oracle's replay produced at that point.
        expected: Tid,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingRead { txn, record, observed } => write!(
                f,
                "txn #{txn} read version {observed} of record {record:?}, which no committed \
                 transaction wrote"
            ),
            Violation::DuplicateVersion { record, tid, writers } => write!(
                f,
                "txns #{} and #{} both installed version {tid} of record {record:?}",
                writers.0, writers.1
            ),
            Violation::Cycle { involved } => write!(
                f,
                "serialization graph has a cycle among {} transaction(s): {:?}{}",
                involved.len(),
                &involved[..involved.len().min(8)],
                if involved.len() > 8 { " …" } else { "" }
            ),
            Violation::ReadMismatch { txn, record, observed, expected } => write!(
                f,
                "replay mismatch at txn #{txn}: record {record:?} observed {observed} but the \
                 serial oracle produced {expected}"
            ),
        }
    }
}

/// Result of checking one history.
#[derive(Debug)]
pub struct CheckReport {
    /// Number of transactions checked.
    pub txns: usize,
    /// The first violation found, or `None` if the history is serializable.
    pub violation: Option<Violation>,
    /// A witness serial order (indices into the history); valid when there
    /// is no violation.
    pub serial_order: Vec<usize>,
    /// The oracle's final database state — the last installed version of
    /// every record any committed transaction wrote. Valid when there is no
    /// violation.
    pub final_state: BTreeMap<RecordId, (Tid, Row)>,
}

impl CheckReport {
    /// Whether the history is serializable.
    pub fn is_serializable(&self) -> bool {
        self.violation.is_none()
    }
}

fn failed(txns: usize, violation: Violation) -> CheckReport {
    CheckReport {
        txns,
        violation: Some(violation),
        serial_order: Vec::new(),
        final_state: BTreeMap::new(),
    }
}

/// Checks a committed history for serializability. See the module docs for
/// the construction.
pub fn check_history(history: &[CommittedTxn]) -> CheckReport {
    let n = history.len();

    // Final write of each transaction per record (last write wins, matching
    // the engines' install semantics), plus the global writer index and the
    // per-record version lists.
    let mut txn_writes: Vec<BTreeMap<RecordId, &Row>> = Vec::with_capacity(n);
    let mut writer_of: BTreeMap<(RecordId, Tid), usize> = BTreeMap::new();
    let mut versions: BTreeMap<RecordId, Vec<Tid>> = BTreeMap::new();
    for (i, txn) in history.iter().enumerate() {
        let mut writes: BTreeMap<RecordId, &Row> = BTreeMap::new();
        for w in &txn.writes {
            writes.insert((w.table, w.partition, w.key), &w.row);
        }
        for record in writes.keys() {
            if let Some(&other) = writer_of.get(&(*record, txn.tid)) {
                return failed(
                    n,
                    Violation::DuplicateVersion {
                        record: *record,
                        tid: txn.tid,
                        writers: (other, i),
                    },
                );
            }
            writer_of.insert((*record, txn.tid), i);
            versions.entry(*record).or_default().push(txn.tid);
        }
        txn_writes.push(writes);
    }
    for tids in versions.values_mut() {
        tids.sort_unstable();
    }

    // Serialization graph: wr, ww and rw edges. Duplicate edges are fine
    // (in-degrees are incremented and decremented symmetrically).
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_degree: Vec<usize> = vec![0; n];
    let add_edge =
        |successors: &mut Vec<Vec<usize>>, in_degree: &mut Vec<usize>, from: usize, to: usize| {
            if from != to {
                successors[from].push(to);
                in_degree[to] += 1;
            }
        };

    // ww: version order per record.
    for (record, tids) in &versions {
        for pair in tids.windows(2) {
            let a = writer_of[&(*record, pair[0])];
            let b = writer_of[&(*record, pair[1])];
            add_edge(&mut successors, &mut in_degree, a, b);
        }
    }
    // wr and rw per observed read.
    for (i, txn) in history.iter().enumerate() {
        for r in &txn.reads {
            let record: RecordId = (r.table, r.partition, r.key);
            if r.tid != Tid::ZERO {
                let Some(&writer) = writer_of.get(&(record, r.tid)) else {
                    return failed(n, Violation::DanglingRead { txn: i, record, observed: r.tid });
                };
                add_edge(&mut successors, &mut in_degree, writer, i);
            }
            // rw: the reader precedes the writer of the next version.
            if let Some(tids) = versions.get(&record) {
                let next = match tids.binary_search(&r.tid) {
                    Ok(pos) => tids.get(pos + 1),
                    Err(pos) => tids.get(pos),
                };
                if let Some(next_tid) = next {
                    let overwriter = writer_of[&(record, *next_tid)];
                    add_edge(&mut successors, &mut in_degree, i, overwriter);
                }
            }
        }
    }

    // Kahn's algorithm, smallest index first so the witness order (and any
    // diagnostics) are deterministic.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        (0..n).filter(|&i| in_degree[i] == 0).map(std::cmp::Reverse).collect();
    let mut serial_order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        serial_order.push(i);
        for &next in &successors[i] {
            in_degree[next] -= 1;
            if in_degree[next] == 0 {
                ready.push(std::cmp::Reverse(next));
            }
        }
    }
    if serial_order.len() < n {
        let involved: Vec<usize> = (0..n).filter(|&i| in_degree[i] > 0).collect();
        return failed(n, Violation::Cycle { involved });
    }

    // Sequential-oracle replay of the witness order.
    let mut model: BTreeMap<RecordId, (Tid, Row)> = BTreeMap::new();
    for &i in &serial_order {
        let txn = &history[i];
        for r in &txn.reads {
            let record: RecordId = (r.table, r.partition, r.key);
            let current = model.get(&record).map(|(tid, _)| *tid).unwrap_or(Tid::ZERO);
            if current != r.tid {
                return failed(
                    n,
                    Violation::ReadMismatch { txn: i, record, observed: r.tid, expected: current },
                );
            }
        }
        for (record, row) in &txn_writes[i] {
            model.insert(*record, (txn.tid, (*row).clone()));
        }
    }

    CheckReport { txns: n, violation: None, serial_order, final_state: model }
}

/// Compares the oracle's final state against a replica database. Only
/// records of partitions the replica holds are compared; a missing record or
/// a TID/row mismatch is a divergence.
pub fn compare_with_database(
    db: &star_storage::Database,
    final_state: &BTreeMap<RecordId, (Tid, Row)>,
) -> Result<usize, String> {
    let mut compared = 0;
    for ((table, partition, key), (tid, row)) in final_state {
        if !db.holds(*partition) {
            continue;
        }
        match db.try_get(*table, *partition, *key) {
            Ok(Some(rec)) => {
                let read = rec.read();
                if read.tid != *tid {
                    return Err(format!(
                        "record ({table},{partition},{key}): replica has version {} but the \
                         oracle expects {tid}",
                        read.tid
                    ));
                }
                if read.row != *row {
                    return Err(format!(
                        "record ({table},{partition},{key}): replica row diverges from the \
                         oracle at version {tid}"
                    ));
                }
                compared += 1;
            }
            _ => {
                return Err(format!(
                    "record ({table},{partition},{key}): missing on the replica but the oracle \
                     expects version {tid}"
                ))
            }
        }
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;
    use star_core::history::{RecordedRead, RecordedWrite};
    use star_replication::ExecutionPhase;

    fn rmw(key: Key, observed: Tid, tid: Tid, value: u64) -> CommittedTxn {
        CommittedTxn {
            epoch: tid.epoch(),
            phase: ExecutionPhase::Partitioned,
            executor: 0,
            tid,
            reads: vec![RecordedRead { table: 0, partition: 0, key, tid: observed }],
            writes: vec![RecordedWrite {
                table: 0,
                partition: 0,
                key,
                row: row([FieldValue::U64(value)]),
            }],
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        let report = check_history(&[]);
        assert!(report.is_serializable());
        assert!(report.final_state.is_empty());
    }

    #[test]
    fn a_clean_rmw_chain_is_serializable() {
        let t1 = Tid::new(1, 1);
        let t2 = Tid::new(1, 2);
        let t3 = Tid::new(2, 1);
        let history = vec![rmw(7, Tid::ZERO, t1, 1), rmw(7, t1, t2, 2), rmw(7, t2, t3, 3)];
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violation);
        assert_eq!(report.serial_order, vec![0, 1, 2]);
        assert_eq!(report.final_state[&(0, 0, 7)], (t3, row([FieldValue::U64(3)])));
    }

    #[test]
    fn dangling_read_is_detected() {
        // The observed version Tid(1, 9) was never written by anyone in the
        // committed history — e.g. it belonged to a reverted epoch.
        let history = vec![rmw(7, Tid::new(1, 9), Tid::new(2, 1), 5)];
        let report = check_history(&history);
        assert!(matches!(
            report.violation,
            Some(Violation::DanglingRead { txn: 0, observed, .. }) if observed == Tid::new(1, 9)
        ));
    }

    #[test]
    fn lost_update_cycle_is_detected() {
        // Two transactions both read the initial version of key 7 and both
        // overwrite it: each must precede the other (rw), a cycle.
        let history =
            vec![rmw(7, Tid::ZERO, Tid::new(1, 1), 1), rmw(7, Tid::ZERO, Tid::new(1, 2), 2)];
        let report = check_history(&history);
        assert!(
            matches!(&report.violation, Some(Violation::Cycle { involved }) if involved.len() == 2),
            "{:?}",
            report.violation
        );
    }

    #[test]
    fn stale_read_across_records_is_a_cycle() {
        // W2 overwrites key 7 (version t1 → t2); T then reads the *old*
        // version of 7 but also reads-and-overwrites key 8 that W2 read
        // first… modelled minimally: T reads v1 of key 7 and writes key 7
        // again with a TID above t2 — serial position after W2 — while the
        // rw edge forces T before W2.
        let t1 = Tid::new(1, 1);
        let t2 = Tid::new(2, 1);
        let t3 = Tid::new(3, 1);
        let history = vec![
            rmw(7, Tid::ZERO, t1, 1), // W1
            rmw(7, t1, t2, 2),        // W2
            rmw(7, t1, t3, 3),        // T: stale read of v1, writes v3
        ];
        let report = check_history(&history);
        assert!(!report.is_serializable());
    }

    #[test]
    fn duplicate_version_is_detected() {
        let t = Tid::new(1, 1);
        let history = vec![rmw(7, Tid::ZERO, t, 1), rmw(8, Tid::ZERO, t, 2), rmw(7, t, t, 3)];
        let report = check_history(&history);
        assert!(matches!(report.violation, Some(Violation::DuplicateVersion { .. })));
    }

    #[test]
    fn interleaved_keys_get_a_consistent_serial_order() {
        // Two independent chains on two keys plus one transaction touching
        // both; the checker must find the order that interleaves them.
        let a1 = Tid::new(1, 1);
        let b1 = Tid::new(1, 2);
        let c = Tid::new(2, 5);
        let history = vec![
            rmw(1, Tid::ZERO, a1, 10),
            rmw(2, Tid::ZERO, b1, 20),
            CommittedTxn {
                epoch: 2,
                phase: ExecutionPhase::SingleMaster,
                executor: 0,
                tid: c,
                reads: vec![
                    RecordedRead { table: 0, partition: 0, key: 1, tid: a1 },
                    RecordedRead { table: 0, partition: 0, key: 2, tid: b1 },
                ],
                writes: vec![
                    RecordedWrite {
                        table: 0,
                        partition: 0,
                        key: 1,
                        row: row([FieldValue::U64(11)]),
                    },
                    RecordedWrite {
                        table: 0,
                        partition: 0,
                        key: 2,
                        row: row([FieldValue::U64(21)]),
                    },
                ],
            },
        ];
        let report = check_history(&history);
        assert!(report.is_serializable(), "{:?}", report.violation);
        assert_eq!(report.final_state[&(0, 0, 1)].0, c);
        assert_eq!(report.final_state[&(0, 0, 2)].0, c);
    }
}
