//! Fixtures for the dynamic lock-order witness (`--features lock-witness`).
//!
//! The witness records per-thread acquisition chains into a process-global
//! lock graph; a cycle in that graph is a potential deadlock even when the
//! actual run never hung. Both fixtures below serialize their threads with
//! joins, so the inversion fixture can never deadlock for real — the point
//! is that the witness must flag it anyway.
//!
//! The witness state is process-global, so both fixtures live in one test
//! function: `cargo test` runs `#[test]`s of one binary concurrently, and a
//! second test's acquisitions would race with `witness::reset()`.
#![cfg(feature = "lock-witness")]

use parking_lot::{witness, Mutex};
use std::sync::Arc;
use std::thread;

fn spawn_ordered(first: &Arc<Mutex<u32>>, second: &Arc<Mutex<u32>>) {
    let (first, second) = (Arc::clone(first), Arc::clone(second));
    thread::spawn(move || {
        let mut a = first.lock();
        let mut b = second.lock();
        *a += 1;
        *b += 1;
    })
    .join()
    .expect("fixture thread panicked");
}

#[test]
fn witness_passes_clean_ordering_and_reports_inversion() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Clean fixture: every thread acquires a before b. The graph has a
    // single a -> b edge and no cycle.
    witness::reset();
    witness::set_name(&*a, "fixture.a");
    witness::set_name(&*b, "fixture.b");
    spawn_ordered(&a, &b);
    spawn_ordered(&a, &b);
    assert!(witness::edge_count() > 0, "clean fixture recorded no acquisitions");
    let clean = witness::potential_deadlocks();
    assert!(clean.is_empty(), "clean ordering misreported as a deadlock: {clean:?}");
    assert!(witness::format_report().contains("no lock-order cycles"));

    // Inversion fixture: one thread acquires a -> b, the next b -> a. The
    // joins serialize them, so the run cannot hang — but the two orderings
    // form a cycle in the lock graph and the witness must report it.
    witness::reset();
    witness::set_name(&*a, "fixture.a");
    witness::set_name(&*b, "fixture.b");
    spawn_ordered(&a, &b);
    spawn_ordered(&b, &a);
    let cycles = witness::potential_deadlocks();
    assert_eq!(cycles.len(), 1, "expected exactly one cycle, got {cycles:?}");
    assert_eq!(cycles[0], vec!["fixture.a".to_string(), "fixture.b".to_string()]);
    let report = witness::format_report();
    assert!(report.contains("potential deadlock"), "report missing cycle: {report}");
    assert!(report.contains("fixture.a") && report.contains("fixture.b"), "{report}");
}
