//! Adversarial corpus for the serializability checker.
//!
//! The checker is the harness's oracle: if it silently accepted a broken
//! history, every chaos sweep would be meaningless. This corpus feeds it a
//! table of hand-crafted *non-serializable* histories — the classical
//! anomaly zoo (lost update, write skew, wr/ww/rw cycles, stale reads,
//! phantom versions from reverted epochs) — and asserts each one is
//! rejected with the right violation class, plus positive controls proving
//! the corpus is not trivially red.

use star_chaos::checker::{check_history, Violation};
use star_common::row::row;
use star_common::{FieldValue, Key, Tid};
use star_core::history::{CommittedTxn, RecordedRead, RecordedWrite};
use star_replication::ExecutionPhase;

fn txn(tid: Tid, reads: Vec<(Key, Tid)>, writes: Vec<(Key, u64)>) -> CommittedTxn {
    CommittedTxn {
        epoch: tid.epoch(),
        phase: ExecutionPhase::Partitioned,
        executor: 0,
        tid,
        reads: reads
            .into_iter()
            .map(|(key, observed)| RecordedRead { table: 0, partition: 0, key, tid: observed })
            .collect(),
        writes: writes
            .into_iter()
            .map(|(key, value)| RecordedWrite {
                table: 0,
                partition: 0,
                key,
                row: row([FieldValue::U64(value)]),
            })
            .collect(),
    }
}

/// What the checker must decide for a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    Serializable,
    Cycle,
    DanglingRead,
    DuplicateVersion,
}

fn corpus() -> Vec<(&'static str, Vec<CommittedTxn>, Expected)> {
    let t = |epoch: u32, seq: u64| Tid::new(epoch, seq);
    vec![
        // ---- positive controls -------------------------------------------------
        (
            "clean read-modify-write chain",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(1, 2), vec![(7, t(1, 1))], vec![(7, 2)]),
                txn(t(2, 1), vec![(7, t(1, 2))], vec![(7, 3)]),
            ],
            Expected::Serializable,
        ),
        (
            "blind writes in TID order",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                txn(t(1, 2), vec![], vec![(1, 20)]),
                txn(t(2, 1), vec![], vec![(2, 30)]),
            ],
            Expected::Serializable,
        ),
        (
            "read-only transaction against a settled record",
            vec![
                txn(t(1, 1), vec![(4, Tid::ZERO)], vec![(4, 1)]),
                txn(t(2, 1), vec![(4, t(1, 1))], vec![]),
            ],
            Expected::Serializable,
        ),
        // ---- rw/rw: the classical lost update ---------------------------------
        (
            "lost update: both read the initial version, both overwrite",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(1, 2), vec![(7, Tid::ZERO)], vec![(7, 2)]),
            ],
            Expected::Cycle,
        ),
        // ---- rw/rw across two records: write skew ------------------------------
        (
            "write skew: each reads both records, each writes the other one",
            vec![
                txn(t(1, 1), vec![(1, Tid::ZERO), (2, Tid::ZERO)], vec![(1, 10)]),
                txn(t(1, 2), vec![(1, Tid::ZERO), (2, Tid::ZERO)], vec![(2, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- wr/wr: mutual observation ----------------------------------------
        (
            "wr cycle: each transaction reads the other's write",
            vec![
                txn(t(1, 1), vec![(2, t(1, 2))], vec![(1, 10)]),
                txn(t(1, 2), vec![(1, t(1, 1))], vec![(2, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- ww/rw: version order against an anti-dependency -------------------
        (
            "ww-rw cycle: overwriter of A read B before A's first writer wrote it",
            vec![
                // T1 (t1) writes A and B; T2 (t2) overwrites A but read B@0.
                // ww A: T1 → T2; rw B: T2 → T1.
                txn(t(1, 1), vec![], vec![(1, 10), (2, 11)]),
                txn(t(1, 2), vec![(2, Tid::ZERO)], vec![(1, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- three-transaction mixed cycle ------------------------------------
        (
            "wr chain closed by a high-TID read: T1→T2→T3→T1",
            vec![
                // T1 reads C@t3 (wr T3→T1), T2 reads A@t1 (wr T1→T2),
                // T3 reads B@t2 (wr T2→T3).
                txn(t(1, 1), vec![(3, t(3, 1))], vec![(1, 10)]),
                txn(t(2, 1), vec![(1, t(1, 1))], vec![(2, 20)]),
                txn(t(3, 1), vec![(2, t(2, 1))], vec![(3, 30)]),
            ],
            Expected::Cycle,
        ),
        // ---- stale read overwritten (fractured read) ---------------------------
        (
            "stale read: observes v1 after v2 installed, then overwrites",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(2, 1), vec![(7, t(1, 1))], vec![(7, 2)]),
                txn(t(3, 1), vec![(7, t(1, 1))], vec![(7, 3)]),
            ],
            Expected::Cycle,
        ),
        // ---- phantom versions ---------------------------------------------------
        (
            "stale read after revert: observed version was never committed",
            vec![
                // Epoch 2 was reverted; its writes vanished from the
                // history, but a later transaction still saw one.
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(3, 1), vec![(7, t(2, 5))], vec![(7, 2)]),
            ],
            Expected::DanglingRead,
        ),
        (
            "read of a version from a transaction that never wrote that key",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                // t(1,1) wrote key 1, not key 2 — observing it on key 2 is
                // reading a version nobody installed there.
                txn(t(2, 1), vec![(2, t(1, 1))], vec![(2, 20)]),
            ],
            Expected::DanglingRead,
        ),
        // ---- TID uniqueness -----------------------------------------------------
        (
            "duplicate version: two transactions install the same TID",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                txn(t(1, 2), vec![], vec![(2, 20)]),
                txn(t(1, 1), vec![], vec![(1, 30)]),
            ],
            Expected::DuplicateVersion,
        ),
    ]
}

#[test]
fn corpus_verdicts_match() {
    for (name, history, expected) in corpus() {
        let report = check_history(&history);
        match expected {
            Expected::Serializable => {
                assert!(
                    report.is_serializable(),
                    "{name}: expected serializable, got {:?}",
                    report.violation
                );
                assert_eq!(report.serial_order.len(), history.len(), "{name}");
            }
            Expected::Cycle => {
                assert!(
                    matches!(report.violation, Some(Violation::Cycle { .. })),
                    "{name}: expected a cycle, got {:?}",
                    report.violation
                );
            }
            Expected::DanglingRead => {
                assert!(
                    matches!(report.violation, Some(Violation::DanglingRead { .. })),
                    "{name}: expected a dangling read, got {:?}",
                    report.violation
                );
            }
            Expected::DuplicateVersion => {
                assert!(
                    matches!(report.violation, Some(Violation::DuplicateVersion { .. })),
                    "{name}: expected a duplicate version, got {:?}",
                    report.violation
                );
            }
        }
    }
}

#[test]
fn cycle_diagnostics_name_the_involved_transactions() {
    // The lost-update entry involves exactly the two racing transactions;
    // the reporter prints their indices so a red seed is debuggable.
    let history = vec![
        txn(Tid::new(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
        txn(Tid::new(1, 2), vec![(7, Tid::ZERO)], vec![(7, 2)]),
    ];
    let report = check_history(&history);
    let Some(Violation::Cycle { involved }) = &report.violation else {
        panic!("expected a cycle, got {:?}", report.violation);
    };
    assert_eq!(involved.as_slice(), &[0, 1]);
    let printed = report.violation.as_ref().unwrap().to_string();
    assert!(printed.contains("cycle"), "{printed}");
}

#[test]
fn every_non_serializable_entry_survives_shuffling() {
    // Violations are properties of the history *set*, not the recording
    // order: rotating each red corpus entry must not change the verdict
    // (the checker derives version order from TIDs, not positions).
    for (name, history, expected) in corpus() {
        if expected == Expected::Serializable || history.len() < 2 {
            continue;
        }
        for rotation in 1..history.len() {
            let mut rotated = history.clone();
            rotated.rotate_left(rotation);
            let report = check_history(&rotated);
            assert!(!report.is_serializable(), "{name}: rotation {rotation} was accepted");
        }
    }
}
